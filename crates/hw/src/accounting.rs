//! Per-component load accounting: the data behind Figs. 9 and 10.
//!
//! §5.3's methodology: for each component, plot the measured per-packet
//! load against the input packet rate, next to two upper bounds — the
//! nominal rating and an empirically benchmarked capacity, both divided
//! by the rate. The measured loads are flat (constant per-packet cost);
//! the bound curves decay as `capacity / rate`; the component whose
//! measured load first touches its bound is the bottleneck.
//!
//! The CPU series also reproduces the empty-poll correction: Click polls
//! at 100 % CPU regardless of load, so the true per-packet cycles are
//! `(total_cycles − ce·Er) / r` where `ce` is the cost of an empty poll
//! and `Er` the empty-poll rate.

use crate::analytic::ServerModel;
use crate::cost::CostModel;
use crate::spec::Component;

/// Cycles consumed by one empty poll (a doorbell read finding no work).
/// Order-of-magnitude from the paper's polling discussion; only the
/// correction *methodology* depends on it, not any reported result.
pub const EMPTY_POLL_CYCLES: f64 = 120.0;

/// One point of a Fig. 9/10 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Input packet rate (packets/second).
    pub rate_pps: f64,
    /// Measured per-packet load (cycles for the CPU, bytes for buses).
    pub measured: f64,
    /// Nominal-capacity upper bound at this rate.
    pub nominal_bound: f64,
    /// Empirical-capacity upper bound at this rate (equals nominal when
    /// no benchmark exists, e.g. the CPU row of Table 2).
    pub empirical_bound: f64,
}

/// A full series for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSeries {
    /// The component.
    pub component: Component,
    /// Points at increasing input rate.
    pub points: Vec<LoadPoint>,
}

impl LoadSeries {
    /// Returns `true` when the measured load stays below the empirical
    /// bound at every sampled rate (i.e. the component never bottlenecks
    /// in the sampled range).
    pub fn never_saturates(&self) -> bool {
        self.points.iter().all(|p| p.measured < p.empirical_bound)
    }

    /// The rate at which the measured load crosses the empirical bound
    /// (linear in `capacity/measured`), if within the sampled range.
    pub fn saturation_pps(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.measured >= p.empirical_bound)
            .map(|p| p.rate_pps)
    }
}

/// Computes the load series for `component` over `rates`.
pub fn load_series(
    model: &ServerModel,
    cost: &CostModel,
    component: Component,
    size: usize,
    rates_pps: &[f64],
) -> LoadSeries {
    let (measured, nominal_cap, empirical_cap) = match component {
        Component::Cpu => (
            cost.cpu_cycles(size) + model.queue_lock_penalty(),
            model.spec.cycle_budget(),
            model.spec.cycle_budget(),
        ),
        Component::Memory => (
            cost.bus_bytes(component, size),
            model.spec.memory.nominal_bps / 8.0,
            model.spec.memory.empirical_bps / 8.0,
        ),
        Component::IoLink => (
            cost.bus_bytes(component, size),
            model.spec.io_link.nominal_bps / 8.0,
            model.spec.io_link.empirical_bps / 8.0,
        ),
        Component::InterSocket => (
            cost.bus_bytes(component, size),
            model.spec.inter_socket.nominal_bps / 8.0,
            model.spec.inter_socket.empirical_bps / 8.0,
        ),
        Component::Pcie => (
            cost.bus_bytes(component, size),
            model.spec.pcie.nominal_bps / 8.0,
            model.spec.pcie.empirical_bps / 8.0,
        ),
        Component::FrontSideBus | Component::Nic => (
            cost.bus_bytes(component, size),
            model.spec.empirical_capacity(component) / 8.0,
            model.spec.empirical_capacity(component) / 8.0,
        ),
    };
    let points = rates_pps
        .iter()
        .map(|&rate_pps| LoadPoint {
            rate_pps,
            measured,
            nominal_bound: nominal_cap / rate_pps,
            empirical_bound: empirical_cap / rate_pps,
        })
        .collect();
    LoadSeries { component, points }
}

/// The §5.3 empty-poll correction: recovers true per-packet cycles from a
/// fully-busy CPU observation.
///
/// `total_cycles_per_sec` is the (always ~100 %) observed CPU consumption;
/// `empty_polls_per_sec` the counted empty polls; `rate_pps` the packet
/// rate. Matches `CostModel::cpu_cycles` when fed consistent inputs.
pub fn true_cycles_per_packet(
    total_cycles_per_sec: f64,
    empty_polls_per_sec: f64,
    rate_pps: f64,
) -> f64 {
    (total_cycles_per_sec - EMPTY_POLL_CYCLES * empty_polls_per_sec) / rate_pps
}

/// Simulates the busy-CPU observation for a given offered rate, for
/// round-trip tests of the correction: returns
/// `(total_cycles_per_sec, empty_polls_per_sec)`.
pub fn observed_cpu(
    model: &ServerModel,
    cost: &CostModel,
    size: usize,
    rate_pps: f64,
) -> (f64, f64) {
    let budget = model.spec.cycle_budget();
    let useful = cost.cpu_cycles(size) * rate_pps;
    let idle = (budget - useful).max(0.0);
    (budget, idle / EMPTY_POLL_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Application;

    fn rates() -> Vec<f64> {
        (1..=20).map(|m| m as f64 * 1e6).collect()
    }

    #[test]
    fn measured_loads_are_flat_in_rate() {
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::MinimalForwarding);
        for component in [Component::Cpu, Component::Memory, Component::Pcie] {
            let s = load_series(&model, &cost, component, 64, &rates());
            let first = s.points[0].measured;
            assert!(s.points.iter().all(|p| p.measured == first));
        }
    }

    #[test]
    fn bounds_decay_inversely_with_rate() {
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::MinimalForwarding);
        let s = load_series(&model, &cost, Component::Memory, 64, &rates());
        for w in s.points.windows(2) {
            assert!(w[1].nominal_bound < w[0].nominal_bound);
            assert!(w[1].empirical_bound <= w[1].nominal_bound);
        }
    }

    #[test]
    fn only_cpu_saturates_in_fig9_10_range() {
        // The paper's headline: CPU hits its bound near 18.96 Mpps while
        // memory, I/O, PCIe and QPI stay clear.
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::MinimalForwarding);
        let cpu = load_series(&model, &cost, Component::Cpu, 64, &rates());
        assert!(!cpu.never_saturates());
        let cross = cpu.saturation_pps().unwrap();
        assert!(
            (18e6..20e6).contains(&cross),
            "CPU saturates at {cross:.3e}"
        );
        for component in [
            Component::Memory,
            Component::IoLink,
            Component::InterSocket,
            Component::Pcie,
        ] {
            let s = load_series(&model, &cost, component, 64, &rates());
            assert!(s.never_saturates(), "{component} saturated unexpectedly");
        }
    }

    #[test]
    fn empty_poll_correction_round_trips() {
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::IpRouting);
        for rate in [1e6, 5e6, 10e6] {
            let (total, empties) = observed_cpu(&model, &cost, 64, rate);
            let recovered = true_cycles_per_packet(total, empties, rate);
            let actual = cost.cpu_cycles(64);
            assert!(
                (recovered - actual).abs() < 1.0,
                "rate {rate:.0}: {recovered:.1} vs {actual:.1}"
            );
        }
    }

    #[test]
    fn ipsec_cpu_saturates_much_earlier() {
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::Ipsec);
        let cpu = load_series(&model, &cost, Component::Cpu, 64, &rates());
        let cross = cpu.saturation_pps().unwrap();
        assert!(cross <= 3e6, "IPsec saturates at {cross:.3e}");
    }
}
