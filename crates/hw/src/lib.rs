//! Calibrated server hardware model for the RouteBricks evaluation.
//!
//! The paper's single-server results (Tables 1–3, Figs. 6–10) were
//! measured on a pre-release dual-socket Nehalem with two dual-port
//! 10 GbE NICs. That testbed is not reproducible here, so this crate
//! substitutes a **capacity/load model plus a discrete-event simulator**,
//! both calibrated against the paper's own published numbers (see
//! DESIGN.md §2 and the constants in [`cost`]):
//!
//! * [`spec`] — component capacities per server generation (shared-bus
//!   Xeon, Nehalem prototype, projected 4-socket Nehalem), nominal and
//!   empirical, straight from Table 2.
//! * [`cost`] — per-packet cost vectors: CPU cycles (with the `kp`/`kn`
//!   batching terms of Table 1) and per-bus byte loads, as affine
//!   functions of packet size fitted to §5.3's observations.
//! * [`analytic`] — the closed-form bottleneck model: offered workload →
//!   per-component loads → achievable loss-free rate and which component
//!   saturates first. Regenerates Figs. 7–10 and the §5.3 projections.
//! * [`scenarios`] — the Fig. 6 toy scenarios (parallel vs pipelined
//!   forwarding paths, with and without multi-queue NICs).
//! * [`numa`] — the §4.2 data-placement experiment (placement-
//!   insensitive forwarding rate, ≈23% remote accesses).
//! * [`sim`] — a discrete-event simulation of the same server (NIC rings,
//!   DMA batching, polling cores) that produces *emergent* throughput,
//!   latency and batching behaviour to validate the analytic model.
//!
//! The model is calibrated, not fitted blindly: every constant is derived
//! in its doc comment from a specific number in the paper.

pub mod accounting;
pub mod analytic;
pub mod cost;
pub mod numa;
pub mod scenarios;
pub mod sim;
pub mod spec;

pub use analytic::{RateReport, ServerModel};
pub use cost::{Application, BatchingConfig, CostModel};
pub use spec::{Component, ServerSpec};
