//! Per-packet cost vectors, calibrated against the paper.
//!
//! # CPU cycles
//!
//! The Table 1 batching experiment pins three points for 64 B minimal
//! forwarding on the 22.4 Gcycle/s prototype:
//!
//! | (kp, kn)   | rate      | cycles/pkt |
//! |------------|-----------|------------|
//! | (1, 1)     | 1.46 Gbps | 7,854      |
//! | (32, 1)    | 4.97 Gbps | 2,307      |
//! | (32, 16)   | 9.77→9.7 Gbps | 1,181  |
//!
//! Solving `cycles = C_BASE + C_POLL/kp + C_PCIE/kn` gives `C_POLL ≈
//! 5,726`, `C_PCIE ≈ 1,201`, `C_BASE ≈ 927`. (Table 3's 1,033 ipp ×
//! 1.19 CPI = 1,229 cycles agrees with the 1,181 within 4% — the paper's
//! own numbers carry that much noise.)
//!
//! Packet-size scaling follows §5.3's measurement that a 1024 B packet
//! costs only 1.6× the CPU cycles of a 64 B one: slope ≈ 0.768 cyc/B on
//! the base term.
//!
//! Per-application extras (64 B, all-batching):
//! * IP routing: 6.35 Gbps → 12.4 Mpps → 1,806 cyc ⇒ +625 cyc
//!   (D-lookup + checksum + header update).
//! * IPsec: 1.4 Gbps → 2.73 Mpps → 8,192 cyc ⇒ +7,011 cyc at 64 B, with
//!   a per-byte slope of 31.4 cyc/B fitted to the 4.45 Gbps Abilene
//!   result (AES-128 software encryption is per-byte work).
//!
//! # Bus loads
//!
//! §5.3: 1024 B packets load the memory buses, I/O links and CPU only
//! 6×, 11× and 1.6× more than 64 B packets — book-keeping bytes are
//! size-independent. Affine models reproducing those ratios exactly:
//!
//! * memory: `3·size + 384` bytes/packet (+1,108 B for IP routing's
//!   lookup-table traffic, which also makes the §5.3 next-generation
//!   routing projection land on the paper's 19.9 Gbps),
//! * socket–I/O: `2·size + 64`,
//! * PCIe: `2·size + 32 + 192/kn` (descriptors and transaction overhead
//!   amortised by NIC-driven batching),
//! * inter-socket: 25 % of the memory load (§4.2 measured ≈23 % remote
//!   accesses).

use crate::spec::Component;

/// The three packet-processing applications of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// Blind forwarding between predetermined ports.
    MinimalForwarding,
    /// Full IP routing: checksum, TTL, 256K-entry LPM lookup.
    IpRouting,
    /// AES-128 ESP encryption of every packet.
    Ipsec,
}

impl core::fmt::Display for Application {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Application::MinimalForwarding => "minimal forwarding",
            Application::IpRouting => "IP routing",
            Application::Ipsec => "IPsec",
        })
    }
}

/// Poll-driven (`kp`) and NIC-driven (`kn`) batching factors (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchingConfig {
    /// Packets per Click poll operation.
    pub kp: u32,
    /// Descriptors per NIC DMA transaction.
    pub kn: u32,
}

impl BatchingConfig {
    /// The tuned configuration the paper settles on (kp=32, kn=16).
    pub fn tuned() -> BatchingConfig {
        BatchingConfig { kp: 32, kn: 16 }
    }

    /// Poll-driven batching only (Click default; kp=32, kn=1).
    pub fn poll_only() -> BatchingConfig {
        BatchingConfig { kp: 32, kn: 1 }
    }

    /// No batching at all (kp=1, kn=1).
    pub fn none() -> BatchingConfig {
        BatchingConfig { kp: 1, kn: 1 }
    }
}

/// Calibration constants (see module docs for derivations).
mod consts {
    /// Base per-packet CPU work for minimal forwarding at 64 B, all
    /// batching overhead excluded.
    pub const C_BASE_64: f64 = 927.4;
    /// Poll book-keeping cycles, amortised by `kp`.
    pub const C_POLL: f64 = 5_725.6;
    /// Descriptor/DMA management cycles, amortised by `kn`.
    pub const C_PCIE: f64 = 1_201.0;
    /// Extra base cycles per packet byte beyond 64 B.
    pub const C_PER_BYTE: f64 = 0.768;
    /// IP routing extra (lookup, checksum, header update).
    pub const C_ROUTING_EXTRA: f64 = 625.0;
    /// IPsec extra at 64 B (key schedule reuse, ESP framing, small AES).
    pub const C_IPSEC_EXTRA_64: f64 = 7_011.0;
    /// IPsec per-byte encryption slope.
    pub const C_IPSEC_PER_BYTE: f64 = 31.43;

    /// Memory bytes/packet = MEM_SLOPE·size + MEM_BASE. The slope/base
    /// pair is pinned by two paper observations: the 6x load ratio
    /// between 1024 B and 64 B packets (any pair with BASE = 6·SLOPE·64
    /// − SLOPE·1024 works) and the §5.3 ~70 Gbps unconstrained-NIC
    /// Abilene estimate, which rules out slopes ≥ 4.
    pub const MEM_SLOPE: f64 = 3.0;
    /// Size-independent memory bytes (descriptors, ring book-keeping).
    pub const MEM_BASE: f64 = 384.0;
    /// Additional memory traffic per routed packet (D-lookup tables);
    /// pinned by the §5.3 next-generation routing projection (19.9 Gbps
    /// = 38.9 Mpps against the doubled 524 Gbps memory system).
    pub const MEM_ROUTING_EXTRA: f64 = 1_108.0;
    /// Socket–I/O bytes/packet = IO_SLOPE·size + IO_BASE.
    pub const IO_SLOPE: f64 = 2.0;
    /// Size-independent socket–I/O bytes.
    pub const IO_BASE: f64 = 64.0;
    /// PCIe bytes/packet before descriptor amortisation.
    pub const PCIE_SLOPE: f64 = 2.0;
    /// Per-packet descriptor bytes on PCIe.
    pub const PCIE_DESC: f64 = 32.0;
    /// Transaction overhead amortised by `kn`.
    pub const PCIE_TXN: f64 = 192.0;
    /// Fraction of memory traffic crossing the inter-socket link.
    pub const INTER_SOCKET_FRACTION: f64 = 0.25;
}

/// The calibrated per-packet cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Application being run.
    pub app: Application,
    /// Batching configuration.
    pub batching: BatchingConfig,
}

impl CostModel {
    /// Model for an application under the tuned batching configuration.
    pub fn tuned(app: Application) -> CostModel {
        CostModel {
            app,
            batching: BatchingConfig::tuned(),
        }
    }

    /// CPU cycles consumed per packet of `size` bytes.
    pub fn cpu_cycles(&self, size: usize) -> f64 {
        use consts::*;
        let size = size as f64;
        let base = C_BASE_64 + C_PER_BYTE * (size - 64.0).max(0.0);
        let batch = C_POLL / f64::from(self.batching.kp) + C_PCIE / f64::from(self.batching.kn);
        let app = match self.app {
            Application::MinimalForwarding => 0.0,
            Application::IpRouting => C_ROUTING_EXTRA,
            Application::Ipsec => C_IPSEC_EXTRA_64 + C_IPSEC_PER_BYTE * (size - 64.0).max(0.0),
        };
        base + batch + app
    }

    /// The device-boundary term of [`CostModel::cpu_cycles`]: descriptor
    /// and DMA management cycles per packet after `kn` amortisation
    /// (`C_PCIE / kn`). This is the component the NIC-driven batching
    /// axis removes — compare it against the measured per-packet cost of
    /// the device elements to check the simulated rings against Table 1.
    pub fn pcie_cycles(&self) -> f64 {
        consts::C_PCIE / f64::from(self.batching.kn)
    }

    /// The paper's Table 3 instruction counts per packet (64 B).
    pub fn instructions_per_packet(&self) -> f64 {
        match self.app {
            Application::MinimalForwarding => 1_033.0,
            Application::IpRouting => 1_512.0,
            Application::Ipsec => 14_221.0,
        }
    }

    /// Cycles-per-instruction implied by the model at 64 B (compare with
    /// Table 3's 1.19 / 1.23 / 0.55).
    pub fn cpi(&self) -> f64 {
        self.cpu_cycles(64) / self.instructions_per_packet()
    }

    /// Frame-byte throughput budget of the PCIe bus in bytes/second:
    /// the link's empirical capacity ([`crate::spec::Capacity`]
    /// `empirical_bps`, bits/s) derated by the model's per-frame bus
    /// overhead — descriptor bytes plus the transaction overhead `kn`
    /// amortises ([`CostModel::bus_bytes`] for [`Component::Pcie`]). A
    /// run whose measured `nic_dma_bytes / seconds` exceeds this is
    /// bus-bound regardless of core count (§4.1's I/O wall).
    pub fn pcie_frame_budget_bps(&self, spec: &crate::spec::ServerSpec, size: usize) -> f64 {
        let per_frame_bus = self.bus_bytes(Component::Pcie, size);
        if per_frame_bus <= 0.0 {
            return f64::INFINITY;
        }
        (spec.pcie.empirical_bps / 8.0) * (size as f64 / per_frame_bus)
    }

    /// Bytes/packet a component carries for a `size`-byte packet.
    ///
    /// Returns 0 for the CPU and NIC pseudo-components — use
    /// [`CostModel::cpu_cycles`] and the packet size for those.
    pub fn bus_bytes(&self, component: Component, size: usize) -> f64 {
        use consts::*;
        let size = size as f64;
        match component {
            Component::Memory => {
                let extra = if self.app == Application::IpRouting {
                    MEM_ROUTING_EXTRA
                } else {
                    0.0
                };
                MEM_SLOPE * size + MEM_BASE + extra
            }
            Component::IoLink => IO_SLOPE * size + IO_BASE,
            Component::Pcie => {
                PCIE_SLOPE * size + PCIE_DESC + PCIE_TXN / f64::from(self.batching.kn)
            }
            Component::InterSocket => {
                INTER_SOCKET_FRACTION * self.bus_bytes(Component::Memory, size as usize)
            }
            Component::FrontSideBus => {
                // Everything that touches memory or I/O crosses the FSB on
                // a shared-bus machine.
                self.bus_bytes(Component::Memory, size as usize)
                    + self.bus_bytes(Component::IoLink, size as usize)
            }
            Component::Cpu | Component::Nic => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: f64 = 22.4e9;

    fn gbps(cycles: f64, size: f64) -> f64 {
        BUDGET / cycles * size * 8.0 / 1e9
    }

    #[test]
    fn pcie_frame_budget_derates_capacity_and_rewards_kn() {
        let spec = crate::spec::ServerSpec::nehalem();
        let untuned = CostModel {
            app: Application::MinimalForwarding,
            batching: BatchingConfig::none(),
        };
        let tuned = CostModel::tuned(Application::MinimalForwarding);
        let raw = spec.pcie.empirical_bps / 8.0;
        let b_untuned = untuned.pcie_frame_budget_bps(&spec, 64);
        let b_tuned = tuned.pcie_frame_budget_bps(&spec, 64);
        // Descriptor + transaction overhead always costs something...
        assert!(b_untuned < raw && b_tuned < raw);
        // ...and kn amortises the transaction share, so the tuned
        // configuration moves more frame bytes through the same link.
        assert!(b_tuned > b_untuned);
        // Large frames amortise the fixed per-frame bytes further.
        assert!(tuned.pcie_frame_budget_bps(&spec, 1024) > b_tuned);
    }

    #[test]
    fn table1_batching_points_reproduce() {
        let fwd = |b: BatchingConfig| CostModel {
            app: Application::MinimalForwarding,
            batching: b,
        };
        let none = gbps(fwd(BatchingConfig::none()).cpu_cycles(64), 64.0);
        let poll = gbps(fwd(BatchingConfig::poll_only()).cpu_cycles(64), 64.0);
        let tuned = gbps(fwd(BatchingConfig::tuned()).cpu_cycles(64), 64.0);
        assert!((none - 1.46).abs() < 0.02, "no batching: {none:.2} Gbps");
        assert!((poll - 4.97).abs() < 0.05, "poll-driven: {poll:.2} Gbps");
        assert!((tuned - 9.7).abs() < 0.1, "tuned: {tuned:.2} Gbps");
    }

    #[test]
    fn per_application_64b_rates_reproduce() {
        let rate = |app| gbps(CostModel::tuned(app).cpu_cycles(64), 64.0);
        assert!((rate(Application::MinimalForwarding) - 9.7).abs() < 0.1);
        assert!((rate(Application::IpRouting) - 6.35).abs() < 0.1);
        assert!((rate(Application::Ipsec) - 1.4).abs() < 0.05);
    }

    #[test]
    fn size_scaling_matches_observed_ratios() {
        let m = CostModel::tuned(Application::MinimalForwarding);
        let cpu_ratio = m.cpu_cycles(1024) / m.cpu_cycles(64);
        assert!((cpu_ratio - 1.6).abs() < 0.05, "CPU ratio {cpu_ratio:.2}");
        let mem_ratio = m.bus_bytes(Component::Memory, 1024) / m.bus_bytes(Component::Memory, 64);
        assert!(
            (mem_ratio - 6.0).abs() < 0.05,
            "memory ratio {mem_ratio:.2}"
        );
        let io_ratio = m.bus_bytes(Component::IoLink, 1024) / m.bus_bytes(Component::IoLink, 64);
        assert!((io_ratio - 11.0).abs() < 0.05, "I/O ratio {io_ratio:.2}");
    }

    #[test]
    fn ipsec_abilene_rate_reproduces() {
        // Abilene-like mean ≈ 760 B → 4.45 Gbps (§5.2).
        let m = CostModel::tuned(Application::Ipsec);
        let mean = rb_workload::SizeDist::abilene().mean();
        let rate = gbps(m.cpu_cycles(mean as usize), mean);
        assert!((rate - 4.45).abs() < 0.25, "IPsec Abilene: {rate:.2} Gbps");
    }

    #[test]
    fn cpi_is_near_table3() {
        let fwd = CostModel::tuned(Application::MinimalForwarding);
        assert!((fwd.cpi() - 1.19).abs() < 0.08, "fwd CPI {:.3}", fwd.cpi());
        let rtr = CostModel::tuned(Application::IpRouting);
        assert!((rtr.cpi() - 1.23).abs() < 0.08, "rtr CPI {:.3}", rtr.cpi());
        let ipsec = CostModel::tuned(Application::Ipsec);
        assert!(
            (ipsec.cpi() - 0.55).abs() < 0.05,
            "ipsec CPI {:.3}",
            ipsec.cpi()
        );
    }

    #[test]
    fn batching_monotonically_reduces_cycles() {
        let m = |kp, kn| {
            CostModel {
                app: Application::MinimalForwarding,
                batching: BatchingConfig { kp, kn },
            }
            .cpu_cycles(64)
        };
        assert!(m(1, 1) > m(2, 1));
        assert!(m(32, 1) > m(32, 2));
        assert!(m(32, 16) < m(32, 1));
        assert!(m(64, 32) < m(32, 16));
    }

    #[test]
    fn fsb_load_is_memory_plus_io() {
        let m = CostModel::tuned(Application::MinimalForwarding);
        let fsb = m.bus_bytes(Component::FrontSideBus, 64);
        let sum = m.bus_bytes(Component::Memory, 64) + m.bus_bytes(Component::IoLink, 64);
        assert_eq!(fsb, sum);
    }

    #[test]
    fn routing_loads_memory_harder_than_forwarding() {
        let fwd = CostModel::tuned(Application::MinimalForwarding);
        let rtr = CostModel::tuned(Application::IpRouting);
        assert!(rtr.bus_bytes(Component::Memory, 64) > fwd.bus_bytes(Component::Memory, 64));
        // But I/O loads are the same: routing adds no wire bytes.
        assert_eq!(
            rtr.bus_bytes(Component::IoLink, 64),
            fwd.bus_bytes(Component::IoLink, 64)
        );
    }
}
