//! The §4.2 NUMA data-placement experiment.
//!
//! "We disable the cores on socket-1 and measure the maximum forwarding
//! rate achieved by the 4 cores on socket-0; in this case, both packets
//! and socket-buffer descriptors are ideally placed … We then repeat the
//! experiment … us[ing] only the 4 cores in socket-1; in this case …
//! approximately 23% of memory accesses are to remote memory,
//! nonetheless, we get a forwarding rate of 6.3 Gbps" — i.e. *the same*
//! rate. The reason falls out of the bottleneck model: remote descriptor
//! accesses add inter-socket (QPI) traffic, and QPI is nowhere near
//! saturation, so the CPU-bound rate is unchanged.

use crate::analytic::{RateReport, ServerModel};
use crate::cost::{Application, CostModel};
use crate::spec::{Component, ServerSpec};

/// Outcome of the placement experiment.
#[derive(Debug, Clone)]
pub struct NumaExperiment {
    /// Rate with packets and descriptors local to the active socket.
    pub local: RateReport,
    /// Rate with descriptors on the remote socket.
    pub remote: RateReport,
    /// Fraction of memory accesses that went remote in the second setup.
    pub remote_access_fraction: f64,
}

impl NumaExperiment {
    /// Ratio of the two rates (1.0 = placement made no difference).
    pub fn rate_ratio(&self) -> f64 {
        self.remote.pps / self.local.pps
    }
}

/// Halves the prototype to one active socket (4 cores, its own memory
/// controller and I/O link share).
fn single_socket_spec() -> ServerSpec {
    let base = ServerSpec::nehalem();
    ServerSpec {
        name: "Nehalem prototype, one socket active",
        sockets: 1,
        memory: crate::spec::Capacity {
            nominal_bps: base.memory.nominal_bps / 2.0,
            empirical_bps: base.memory.empirical_bps / 2.0,
        },
        io_link: crate::spec::Capacity {
            nominal_bps: base.io_link.nominal_bps / 2.0,
            empirical_bps: base.io_link.empirical_bps / 2.0,
        },
        ..base
    }
}

/// Runs the placement experiment for 64 B minimal forwarding.
///
/// The remote setup reroutes the descriptor share of memory traffic
/// (the size-independent `MEM_BASE` component — descriptors are pinned
/// to socket-0 by Linux, §4.2) across the inter-socket link.
pub fn run() -> NumaExperiment {
    let spec = single_socket_spec();
    let cost = CostModel::tuned(Application::MinimalForwarding);
    let model = ServerModel::new(spec);

    let local = model.max_rate(&cost, 64.0);

    // Remote case: only the socket-buffer *descriptors* go remote
    // (Linux pins them to socket-0, §4.2) — packets stay local. Two
    // 16-byte descriptors crossing four times ≈ 132 B/packet, which is
    // what makes the measured remote-access share land on the paper's
    // ≈23% of the 576 B/packet memory load.
    let descriptor_remote_bytes = 132.0;

    let mut remote = model.max_rate(&cost, 64.0);
    let qpi_cap = model.spec.empirical_capacity(Component::InterSocket);
    let extra_qpi_bytes = descriptor_remote_bytes;
    for (component, pps) in &mut remote.per_component_pps {
        if *component == Component::InterSocket {
            let existing = cost.bus_bytes(Component::InterSocket, 64);
            *pps = qpi_cap / ((existing + extra_qpi_bytes) * 8.0);
        }
    }
    let (bottleneck, pps) = remote
        .per_component_pps
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("components exist");
    remote.bottleneck = bottleneck;
    remote.pps = pps;
    remote.bps = pps * 64.0 * 8.0;

    let total_mem = cost.bus_bytes(Component::Memory, 64);
    NumaExperiment {
        local,
        remote,
        remote_access_fraction: descriptor_remote_bytes / total_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_makes_no_difference() {
        // The paper's 6.3 vs 6.3 Gbps result: identical rates.
        let e = run();
        assert!(
            (e.rate_ratio() - 1.0).abs() < 1e-9,
            "ratio {:.4}",
            e.rate_ratio()
        );
        assert_eq!(e.local.bottleneck, Component::Cpu);
        assert_eq!(e.remote.bottleneck, Component::Cpu);
    }

    #[test]
    fn remote_fraction_matches_papers_23_percent() {
        let e = run();
        assert!(
            (0.15..0.35).contains(&e.remote_access_fraction),
            "remote access fraction {:.2}",
            e.remote_access_fraction
        );
    }

    #[test]
    fn half_server_runs_at_half_the_cpu_rate() {
        let e = run();
        let full = ServerModel::prototype().rate(Application::MinimalForwarding, 64.0);
        let ratio = e.local.pps / full.pps;
        assert!((ratio - 0.5).abs() < 0.02, "half-server ratio {ratio:.3}");
    }
}
