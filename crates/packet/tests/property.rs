//! Property-based tests for wire formats and buffer operations.

use proptest::prelude::*;
use rb_packet::buf::PacketBuf;
use rb_packet::checksum::{checksum, sum_words, update16};
use rb_packet::ethernet::{EtherType, EthernetHeader};
use rb_packet::flow::FiveTuple;
use rb_packet::ipv4::{IpProto, Ipv4Header};
use rb_packet::mac::MacAddr;
use rb_packet::rss::ToeplitzHasher;
use rb_packet::tcp::{TcpFlags, TcpHeader};
use rb_packet::udp::UdpHeader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any IPv4 header we can emit parses back identically, and its
    /// emitted checksum verifies.
    #[test]
    fn ipv4_emit_parse_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in any::<u8>(),
        proto in any::<u8>(),
        dscp in any::<u8>(),
        ident in any::<u16>(),
        payload_len in 0usize..1400,
        n_option_words in 0usize..10,
    ) {
        let mut hdr = Ipv4Header::new(src.into(), dst.into(), IpProto::from_u8(proto), payload_len);
        hdr.ttl = ttl;
        hdr.dscp_ecn = dscp;
        hdr.ident = ident;
        hdr.options = vec![0x01; n_option_words * 4]; // NOP options.
        hdr.total_len = (hdr.header_len() + payload_len) as u16;
        let mut buf = vec![0u8; hdr.header_len()];
        hdr.emit(&mut buf).unwrap();
        let parsed = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
    }

    /// Single-bit corruption of an emitted IPv4 header is always caught
    /// by the checksum (any bit outside the checksum field itself).
    #[test]
    fn ipv4_checksum_catches_any_bit_flip(
        src in any::<u32>(),
        dst in any::<u32>(),
        bit in 0usize..(20 * 8),
    ) {
        let hdr = Ipv4Header::new(src.into(), dst.into(), IpProto::Udp, 64);
        let mut buf = vec![0u8; 20];
        hdr.emit(&mut buf).unwrap();
        let byte = bit / 8;
        prop_assume!(!(10..12).contains(&byte)); // Not the checksum field.
        buf[byte] ^= 1 << (bit % 8);
        // Either the parse fails structurally or the checksum trips.
        prop_assert!(Ipv4Header::parse(&buf).is_err());
    }

    /// TCP and UDP headers round-trip.
    #[test]
    fn l4_headers_roundtrip(
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        window in any::<u16>(), flags in any::<u8>(),
        len in 8u16..2000,
    ) {
        let mut tcp = TcpHeader::new(sp, dp, seq);
        tcp.ack = ack;
        tcp.window = window;
        tcp.flags = TcpFlags(flags);
        let mut buf = vec![0u8; tcp.header_len()];
        tcp.emit(&mut buf).unwrap();
        prop_assert_eq!(TcpHeader::parse(&buf).unwrap(), tcp);

        let udp = UdpHeader { src_port: sp, dst_port: dp, length: len, checksum: 0 };
        let mut buf = [0u8; 8];
        udp.emit(&mut buf).unwrap();
        prop_assert_eq!(UdpHeader::parse(&buf).unwrap(), udp);
    }

    /// RFC 1624 incremental update equals full recomputation for any
    /// word change at any position.
    #[test]
    fn incremental_checksum_equals_full(
        mut data in prop::collection::vec(any::<u8>(), 2..256),
        word_idx in any::<prop::sample::Index>(),
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let idx = (word_idx.index(data.len() / 2)) * 2;
        let before = checksum(&data);
        let old = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        prop_assert_eq!(update16(before, old, new_word), checksum(&data));
    }

    /// The ones-complement sum is order-independent across splits.
    #[test]
    fn checksum_is_split_invariant(
        data in prop::collection::vec(any::<u8>(), 0..512),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut cut = cut.index(data.len() + 1);
        if cut % 2 == 1 {
            cut -= 1; // Word-aligned split.
        }
        let whole = sum_words(&data, 0);
        let split = sum_words(&data[cut..], sum_words(&data[..cut], 0));
        // Fold both before comparing (accumulators may differ in carries).
        prop_assert_eq!(
            rb_packet::checksum::fold(whole),
            rb_packet::checksum::fold(split)
        );
    }

    /// MAC addresses round-trip through their display form.
    #[test]
    fn mac_display_roundtrip(bytes in any::<[u8; 6]>()) {
        let mac = MacAddr(bytes);
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }

    /// Ethernet headers round-trip for any addresses and ethertype.
    #[test]
    fn ethernet_roundtrip(dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(), et in any::<u16>()) {
        let hdr = EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_u16(et),
        };
        let mut buf = [0u8; 14];
        hdr.emit(&mut buf).unwrap();
        prop_assert_eq!(EthernetHeader::parse(&buf).unwrap(), hdr);
    }

    /// PacketBuf push/pull and put/trim are inverses and the live bytes
    /// always match a reference model.
    #[test]
    fn packetbuf_ops_match_reference(
        initial in prop::collection::vec(any::<u8>(), 0..64),
        ops in prop::collection::vec((0u8..4, 1usize..16), 0..24),
    ) {
        let mut buf = PacketBuf::with_room(&initial, 256, 256);
        let mut model = initial.clone();
        let mut counter = 0u8;
        for (op, n) in ops {
            match op {
                0 => {
                    if let Ok(space) = buf.push(n) {
                        for b in space.iter_mut() {
                            counter = counter.wrapping_add(1);
                            *b = counter;
                        }
                        let added: Vec<u8> = buf.data()[..n].to_vec();
                        model.splice(0..0, added);
                    }
                }
                1 => {
                    if buf.pull(n).is_ok() {
                        model.drain(..n);
                    }
                }
                2 => {
                    if let Ok(space) = buf.put(n) {
                        for b in space.iter_mut() {
                            counter = counter.wrapping_add(1);
                            *b = counter;
                        }
                        let start = buf.len() - n;
                        let added: Vec<u8> = buf.data()[start..].to_vec();
                        model.extend(added);
                    }
                }
                _ => {
                    if buf.trim(n).is_ok() {
                        model.truncate(model.len() - n);
                    }
                }
            }
            prop_assert_eq!(buf.data(), &model[..]);
        }
    }

    /// Toeplitz hashing is symmetric under the "source/destination swap
    /// with key symmetry" property? No — but it IS deterministic and
    /// queue assignment is stable and in range for any tuple.
    #[test]
    fn rss_queue_assignment_stable(
        src_ip in any::<u32>(), dst_ip in any::<u32>(),
        sp in any::<u16>(), dp in any::<u16>(), proto in any::<u8>(),
        queues in 1usize..64,
    ) {
        let flow = FiveTuple { src_ip, dst_ip, src_port: sp, dst_port: dp, proto };
        let h = ToeplitzHasher::default();
        let q = h.queue_for(&flow, queues);
        prop_assert!(q < queues);
        prop_assert_eq!(q, h.queue_for(&flow, queues));
        // Canonicalisation is involutive and direction-insensitive.
        prop_assert_eq!(flow.canonical(), flow.reversed().canonical());
    }
}
