//! Packet representation and protocol headers for the RouteBricks dataplane.
//!
//! This crate provides the foundational types every other RouteBricks crate
//! builds on:
//!
//! * [`PacketBuf`] — an owned byte buffer with headroom/tailroom management,
//!   modelled after the kernel `sk_buff` / Click `Packet` conventions the
//!   paper's dataplane relies on.
//! * [`Packet`] — a buffer plus the per-packet annotations (input port and
//!   queue, timestamps, VLB phase, paint) that the RouteBricks forwarding
//!   path threads through the cluster.
//! * Zero-copy header views for Ethernet ([`ethernet`]), IPv4 ([`ipv4`]),
//!   TCP ([`tcp`]) and UDP ([`udp`]).
//! * Internet checksums ([`checksum`]), including RFC 1624 incremental
//!   updates used on the TTL-decrement fast path.
//! * Flow identification ([`flow`]) and the Toeplitz receive-side-scaling
//!   hash ([`rss`]) that multi-queue NICs use to pin flows to queues —
//!   the mechanism behind the paper's "one core per queue" rule.
//! * A simulated multi-queue NIC ([`nic`]): fixed-depth descriptor rings
//!   with `kn`-batched writeback/doorbell cost — the NIC-driven batching
//!   axis of the paper's Table 1.
//!
//! # Examples
//!
//! ```
//! use rb_packet::{builder::PacketSpec, flow::FiveTuple};
//!
//! let pkt = PacketSpec::udp()
//!     .src("10.0.0.1:5000").unwrap()
//!     .dst("10.0.0.2:53").unwrap()
//!     .frame_len(64)
//!     .build();
//! let tuple = FiveTuple::of_ethernet_frame(pkt.data()).unwrap();
//! assert_eq!(tuple.src_port, 5000);
//! ```

pub mod buf;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod mac;
pub mod nic;
pub mod packet;
pub mod pool;
pub mod rss;
pub mod tcp;
pub mod udp;

pub use buf::PacketBuf;
pub use ethernet::{EtherType, EthernetHeader};
pub use flow::FiveTuple;
pub use ipv4::{IpProto, Ipv4Header};
pub use mac::MacAddr;
pub use nic::{DescRing, NicPort, NicQueue, NicStats};
pub use packet::{Packet, PacketMeta};
pub use pool::{FreeBatch, PacketPool, PoolSlot, PoolStats};
pub use rss::ToeplitzHasher;

/// Errors produced when parsing or mutating packet contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is shorter than the header that was asked for.
    Truncated {
        /// Bytes required by the header.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A header field holds a value the protocol forbids.
    BadField(&'static str),
    /// A checksum did not verify.
    BadChecksum {
        /// The checksum carried by the packet.
        stored: u16,
        /// The checksum we computed over the packet contents.
        computed: u16,
    },
    /// The parser was asked for a protocol the packet does not carry.
    WrongProtocol(&'static str),
    /// Not enough headroom/tailroom to grow the packet in place.
    NoRoom {
        /// Bytes of room requested.
        needed: usize,
        /// Bytes of room available.
        available: usize,
    },
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            PacketError::Truncated { needed, available } => {
                write!(f, "truncated packet: need {needed} bytes, have {available}")
            }
            PacketError::BadField(field) => write!(f, "invalid header field: {field}"),
            PacketError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "bad checksum: stored {stored:#06x}, computed {computed:#06x}"
                )
            }
            PacketError::WrongProtocol(wanted) => {
                write!(f, "packet does not carry expected protocol {wanted}")
            }
            PacketError::NoRoom { needed, available } => {
                write!(
                    f,
                    "no room to grow packet: need {needed} bytes, have {available}"
                )
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, PacketError>;
