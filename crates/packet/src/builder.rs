//! Convenience construction of well-formed test/workload packets.
//!
//! Workload generators need millions of syntactically valid Ethernet+IPv4
//! frames; [`PacketSpec`] builds them with correct lengths and checksums.

use crate::ethernet::{self, EtherType, EthernetHeader};
use crate::ipv4::{IpProto, Ipv4Header, MIN_HEADER_LEN as IP_HDR};
use crate::mac::MacAddr;
use crate::packet::Packet;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::{PacketError, Result};
use std::net::{Ipv4Addr, SocketAddrV4};

/// Transport selected for a generated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    Udp,
    Tcp { seq: u32 },
}

/// A declarative spec for one synthetic packet.
///
/// # Examples
///
/// ```
/// use rb_packet::builder::PacketSpec;
///
/// let pkt = PacketSpec::tcp(42)
///     .src("192.168.0.1:4000").unwrap()
///     .dst("10.0.0.1:80").unwrap()
///     .frame_len(128)
///     .build();
/// assert_eq!(pkt.len(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct PacketSpec {
    src: SocketAddrV4,
    dst: SocketAddrV4,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    transport: Transport,
    frame_len: usize,
    ttl: u8,
    fill: u8,
}

impl PacketSpec {
    /// Starts a UDP packet spec with placeholder addresses.
    pub fn udp() -> PacketSpec {
        PacketSpec {
            src: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 1), 1000),
            dst: SocketAddrV4::new(Ipv4Addr::new(10, 0, 0, 2), 2000),
            src_mac: MacAddr([0x02, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr([0x02, 0, 0, 0, 0, 2]),
            transport: Transport::Udp,
            frame_len: 64,
            ttl: 64,
            fill: 0,
        }
    }

    /// Starts a TCP packet spec with the given sequence number.
    pub fn tcp(seq: u32) -> PacketSpec {
        PacketSpec {
            transport: Transport::Tcp { seq },
            ..PacketSpec::udp()
        }
    }

    /// Sets the source socket address (parses `"a.b.c.d:port"`).
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BadField`] on malformed input.
    pub fn src(mut self, addr: &str) -> Result<PacketSpec> {
        self.src = addr
            .parse()
            .map_err(|_| PacketError::BadField("source socket address"))?;
        Ok(self)
    }

    /// Sets the destination socket address (parses `"a.b.c.d:port"`).
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BadField`] on malformed input.
    pub fn dst(mut self, addr: &str) -> Result<PacketSpec> {
        self.dst = addr
            .parse()
            .map_err(|_| PacketError::BadField("destination socket address"))?;
        Ok(self)
    }

    /// Sets source/destination socket addresses from parsed values.
    pub fn endpoints(mut self, src: SocketAddrV4, dst: SocketAddrV4) -> PacketSpec {
        self.src = src;
        self.dst = dst;
        self
    }

    /// Sets the Ethernet source and destination MACs.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> PacketSpec {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets the total Ethernet frame length in bytes (clamped to the
    /// minimum that fits the headers).
    pub fn frame_len(mut self, len: usize) -> PacketSpec {
        self.frame_len = len;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> PacketSpec {
        self.ttl = ttl;
        self
    }

    /// Sets the payload fill byte (useful to make packets distinguishable).
    pub fn fill(mut self, byte: u8) -> PacketSpec {
        self.fill = byte;
        self
    }

    /// Returns the minimum frame length this spec requires.
    pub fn min_frame_len(&self) -> usize {
        let l4 = match self.transport {
            Transport::Udp => crate::udp::HEADER_LEN,
            Transport::Tcp { .. } => crate::tcp::MIN_HEADER_LEN,
        };
        ethernet::HEADER_LEN + IP_HDR + l4
    }

    /// Builds the packet: valid Ethernet + IPv4 + transport headers with
    /// correct length fields and checksums, payload filled with the fill
    /// byte. The frame is written once, directly into the packet buffer —
    /// no intermediate `Vec` and no second copy.
    pub fn build(&self) -> Packet {
        let frame_len = self.frame_len.max(self.min_frame_len());
        let mut buf = crate::buf::PacketBuf::zeroed(frame_len);
        self.fill_frame(buf.data_mut());
        Packet::new(buf)
    }

    /// Builds the packet straight into a slot from `pool`, or `None` when
    /// the pool is exhausted (recorded in the pool's stats). Frame bytes
    /// are written exactly once, into the slot itself; oversize frames
    /// fall back to heap storage.
    pub fn try_build_in(&self, pool: &crate::pool::PacketPool) -> Option<Packet> {
        let frame_len = self.frame_len.max(self.min_frame_len());
        let mut buf = crate::buf::PacketBuf::try_uninit_in(pool, frame_len)?;
        self.fill_frame(buf.data_mut());
        Some(Packet::new(buf))
    }

    /// Writes the spec's frame bytes into `frame`, which must already be
    /// `max(frame_len, min_frame_len)` long. Every byte of `frame` is
    /// overwritten (payload bytes get the fill byte), so recycled pool
    /// slots never leak a previous packet's contents.
    fn fill_frame(&self, frame: &mut [u8]) {
        let frame_len = frame.len();
        frame.fill(self.fill);

        EthernetHeader {
            dst: self.dst_mac,
            src: self.src_mac,
            ethertype: EtherType::Ipv4,
        }
        .emit(frame)
        .expect("frame sized to fit headers");

        let ip_payload_len = frame_len - ethernet::HEADER_LEN - IP_HDR;
        let proto = match self.transport {
            Transport::Udp => IpProto::Udp,
            Transport::Tcp { .. } => IpProto::Tcp,
        };
        let mut ip = Ipv4Header::new(*self.src.ip(), *self.dst.ip(), proto, ip_payload_len);
        ip.ttl = self.ttl;
        ip.emit(&mut frame[ethernet::HEADER_LEN..])
            .expect("frame sized to fit headers");

        let l4_start = ethernet::HEADER_LEN + IP_HDR;
        match self.transport {
            Transport::Udp => {
                UdpHeader {
                    src_port: self.src.port(),
                    dst_port: self.dst.port(),
                    length: (frame_len - l4_start) as u16,
                    checksum: 0,
                }
                .emit(&mut frame[l4_start..])
                .expect("frame sized to fit headers");
                UdpHeader::fill_checksum(
                    &mut frame[l4_start..],
                    self.src.ip().octets(),
                    self.dst.ip().octets(),
                )
                .expect("frame sized to fit headers");
            }
            Transport::Tcp { seq } => {
                let hdr = TcpHeader::new(self.src.port(), self.dst.port(), seq);
                hdr.emit(&mut frame[l4_start..])
                    .expect("frame sized to fit headers");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;

    #[test]
    fn udp_packet_parses_end_to_end() {
        let pkt = PacketSpec::udp()
            .src("1.2.3.4:9")
            .unwrap()
            .dst("4.3.2.1:10")
            .unwrap()
            .frame_len(200)
            .build();
        assert_eq!(pkt.len(), 200);
        let eth = EthernetHeader::parse(pkt.data()).unwrap();
        assert_eq!(eth.ethertype, EtherType::Ipv4);
        let ip = Ipv4Header::parse(&pkt.data()[14..]).unwrap();
        assert_eq!(ip.total_len as usize, 200 - 14);
        assert_eq!(ip.proto, IpProto::Udp);
        let udp = UdpHeader::parse(&pkt.data()[34..]).unwrap();
        assert_eq!(udp.length as usize, 200 - 34);
    }

    #[test]
    fn tcp_packet_carries_sequence_number() {
        let pkt = PacketSpec::tcp(777)
            .src("1.1.1.1:5000")
            .unwrap()
            .dst("2.2.2.2:80")
            .unwrap()
            .build();
        let tcp = TcpHeader::parse(&pkt.data()[34..]).unwrap();
        assert_eq!(tcp.seq, 777);
        let t = FiveTuple::of_ethernet_frame(pkt.data()).unwrap();
        assert_eq!(t.proto, 6);
    }

    #[test]
    fn frame_len_is_clamped_to_header_minimum() {
        let pkt = PacketSpec::tcp(0).frame_len(10).build();
        assert_eq!(pkt.len(), PacketSpec::tcp(0).min_frame_len());
    }

    #[test]
    fn bad_address_is_rejected() {
        assert!(PacketSpec::udp().src("not-an-address").is_err());
        assert!(PacketSpec::udp().dst("1.2.3.4").is_err());
    }

    #[test]
    fn pooled_build_is_byte_identical_to_heap_build() {
        let pool = crate::pool::PacketPool::new(4, 2048);
        let spec = PacketSpec::udp()
            .src("1.2.3.4:9")
            .unwrap()
            .dst("4.3.2.1:10")
            .unwrap()
            .frame_len(200)
            .fill(0x5a);
        let heap = spec.build();
        let pooled = spec.try_build_in(&pool).unwrap();
        assert!(pooled.is_pooled());
        assert_eq!(pooled.data(), heap.data());
        // Recycle the slot, dirty it with a different spec, then rebuild
        // the original: stale slot bytes must not leak into the frame.
        drop(pooled);
        let dirty = PacketSpec::udp()
            .frame_len(300)
            .fill(0xff)
            .try_build_in(&pool);
        drop(dirty);
        let rebuilt = spec.try_build_in(&pool).unwrap();
        assert_eq!(rebuilt.data(), heap.data());
    }

    #[test]
    fn ttl_is_honoured() {
        let pkt = PacketSpec::udp().ttl(3).build();
        let ip = Ipv4Header::parse(&pkt.data()[14..]).unwrap();
        assert_eq!(ip.ttl, 3);
    }
}
