//! Owned packet buffers with headroom and tailroom.
//!
//! [`PacketBuf`] follows the `sk_buff`/Click convention: a packet lives in
//! the middle of a larger allocation so that headers can be pushed (tunnel
//! encapsulation, VLB tags) or pulled (decapsulation) without copying the
//! payload. The RouteBricks IPsec path in particular prepends an ESP header
//! and outer IPv4 header in place.

use crate::{PacketError, Result};

/// Default bytes of headroom reserved in front of a freshly created packet.
///
/// 64 bytes is enough for an outer Ethernet + IPv4 + ESP header, which is
/// the deepest encapsulation any RouteBricks application performs.
pub const DEFAULT_HEADROOM: usize = 64;

/// Default bytes of tailroom reserved behind a freshly created packet.
///
/// ESP appends padding, a 2-byte trailer and a 12-byte ICV; 64 bytes covers
/// the worst case (15 pad bytes + trailer + ICV) with room to spare.
pub const DEFAULT_TAILROOM: usize = 64;

/// An owned, growable packet buffer with headroom and tailroom.
///
/// The live packet contents occupy `storage[head..tail]`. [`push`] and
/// [`pull`] move the head edge; [`put`] and [`trim`] move the tail edge.
/// All four are O(1) and never reallocate; callers that may exceed the
/// reserved room should construct the buffer with explicit room via
/// [`PacketBuf::with_room`].
///
/// [`push`]: PacketBuf::push
/// [`pull`]: PacketBuf::pull
/// [`put`]: PacketBuf::put
/// [`trim`]: PacketBuf::trim
#[derive(Clone)]
pub struct PacketBuf {
    storage: Vec<u8>,
    head: usize,
    tail: usize,
}

impl PacketBuf {
    /// Creates a buffer holding a copy of `data`, with default room.
    ///
    /// # Examples
    ///
    /// ```
    /// let buf = rb_packet::PacketBuf::from_slice(&[1, 2, 3]);
    /// assert_eq!(buf.data(), &[1, 2, 3]);
    /// ```
    pub fn from_slice(data: &[u8]) -> Self {
        Self::with_room(data, DEFAULT_HEADROOM, DEFAULT_TAILROOM)
    }

    /// Creates a buffer holding a copy of `data` with explicit room.
    pub fn with_room(data: &[u8], headroom: usize, tailroom: usize) -> Self {
        let mut storage = vec![0u8; headroom + data.len() + tailroom];
        storage[headroom..headroom + data.len()].copy_from_slice(data);
        PacketBuf {
            storage,
            head: headroom,
            tail: headroom + data.len(),
        }
    }

    /// Creates a zero-filled buffer of `len` live bytes with default room.
    pub fn zeroed(len: usize) -> Self {
        let storage = vec![0u8; DEFAULT_HEADROOM + len + DEFAULT_TAILROOM];
        PacketBuf {
            storage,
            head: DEFAULT_HEADROOM,
            tail: DEFAULT_HEADROOM + len,
        }
    }

    /// Returns the live packet contents.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.storage[self.head..self.tail]
    }

    /// Returns the live packet contents mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.storage[self.head..self.tail]
    }

    /// Returns the number of live bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// Returns `true` when the buffer holds no live bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Returns the bytes of headroom currently available.
    #[inline]
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Returns the bytes of tailroom currently available.
    #[inline]
    pub fn tailroom(&self) -> usize {
        self.storage.len() - self.tail
    }

    /// Extends the packet at the front by `n` bytes and returns the new
    /// prefix for the caller to fill in.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::NoRoom`] when fewer than `n` bytes of headroom
    /// remain.
    pub fn push(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.head {
            return Err(PacketError::NoRoom {
                needed: n,
                available: self.head,
            });
        }
        self.head -= n;
        Ok(&mut self.storage[self.head..self.head + n])
    }

    /// Removes `n` bytes from the front of the packet.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when the packet is shorter than
    /// `n` bytes.
    pub fn pull(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(PacketError::Truncated {
                needed: n,
                available: self.len(),
            });
        }
        self.head += n;
        Ok(())
    }

    /// Extends the packet at the back by `n` bytes and returns the new
    /// suffix for the caller to fill in.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::NoRoom`] when fewer than `n` bytes of tailroom
    /// remain.
    pub fn put(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.tailroom() {
            return Err(PacketError::NoRoom {
                needed: n,
                available: self.tailroom(),
            });
        }
        let start = self.tail;
        self.tail += n;
        Ok(&mut self.storage[start..self.tail])
    }

    /// Removes `n` bytes from the back of the packet.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when the packet is shorter than
    /// `n` bytes.
    pub fn trim(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(PacketError::Truncated {
                needed: n,
                available: self.len(),
            });
        }
        self.tail -= n;
        Ok(())
    }

    /// Consumes the buffer and returns the live bytes as a `Vec`.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.storage.truncate(self.tail);
        self.storage.drain(..self.head);
        self.storage
    }
}

impl core::fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketBuf")
            .field("len", &self.len())
            .field("headroom", &self.headroom())
            .field("tailroom", &self.tailroom())
            .finish()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_round_trips() {
        let buf = PacketBuf::from_slice(b"hello");
        assert_eq!(buf.data(), b"hello");
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
    }

    #[test]
    fn push_prepends_bytes() {
        let mut buf = PacketBuf::from_slice(b"payload");
        buf.push(3).unwrap().copy_from_slice(b"hdr");
        assert_eq!(buf.data(), b"hdrpayload");
    }

    #[test]
    fn pull_strips_prefix() {
        let mut buf = PacketBuf::from_slice(b"hdrpayload");
        buf.pull(3).unwrap();
        assert_eq!(buf.data(), b"payload");
    }

    #[test]
    fn put_appends_bytes() {
        let mut buf = PacketBuf::from_slice(b"data");
        buf.put(4).unwrap().copy_from_slice(b"tail");
        assert_eq!(buf.data(), b"datatail");
    }

    #[test]
    fn trim_strips_suffix() {
        let mut buf = PacketBuf::from_slice(b"datatail");
        buf.trim(4).unwrap();
        assert_eq!(buf.data(), b"data");
    }

    #[test]
    fn push_beyond_headroom_fails() {
        let mut buf = PacketBuf::with_room(b"x", 2, 0);
        let err = buf.push(3).unwrap_err();
        assert!(matches!(
            err,
            PacketError::NoRoom {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn put_beyond_tailroom_fails() {
        let mut buf = PacketBuf::with_room(b"x", 0, 2);
        let err = buf.put(3).unwrap_err();
        assert!(matches!(
            err,
            PacketError::NoRoom {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn pull_beyond_len_fails() {
        let mut buf = PacketBuf::from_slice(b"ab");
        assert!(buf.pull(3).is_err());
    }

    #[test]
    fn trim_beyond_len_fails() {
        let mut buf = PacketBuf::from_slice(b"ab");
        assert!(buf.trim(3).is_err());
    }

    #[test]
    fn zeroed_is_all_zero() {
        let buf = PacketBuf::zeroed(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn into_vec_returns_live_bytes_only() {
        let mut buf = PacketBuf::from_slice(b"abcdef");
        buf.pull(1).unwrap();
        buf.trim(1).unwrap();
        assert_eq!(buf.into_vec(), b"bcde");
    }

    #[test]
    fn push_then_pull_is_identity() {
        let mut buf = PacketBuf::from_slice(b"core");
        buf.push(8).unwrap().copy_from_slice(b"12345678");
        buf.pull(8).unwrap();
        assert_eq!(buf.data(), b"core");
    }
}
