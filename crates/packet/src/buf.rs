//! Owned packet buffers with headroom and tailroom.
//!
//! [`PacketBuf`] follows the `sk_buff`/Click convention: a packet lives in
//! the middle of a larger allocation so that headers can be pushed (tunnel
//! encapsulation, VLB tags) or pulled (decapsulation) without copying the
//! payload. The RouteBricks IPsec path in particular prepends an ESP header
//! and outer IPv4 header in place.
//!
//! Storage is either a private heap `Vec` (the historical path) or a
//! recycled slot borrowed from a [`PacketPool`] arena. Pooled buffers make
//! the packet itself a lightweight handle — moving it between elements,
//! batches, and SPSC rings moves a slot index and two offsets, never the
//! frame bytes — and dropping it recycles the slot instead of freeing
//! memory. Pooled buffers that outgrow their slot are promoted to heap
//! storage transparently (counted as a `heap_fallback` in the pool stats),
//! so deep encapsulation degrades gracefully rather than failing.

use crate::pool::{PacketPool, PoolSlot};
use crate::{PacketError, Result};

/// Default bytes of headroom reserved in front of a freshly created packet.
///
/// 64 bytes is enough for an outer Ethernet + IPv4 + ESP header, which is
/// the deepest encapsulation any RouteBricks application performs.
pub const DEFAULT_HEADROOM: usize = 64;

/// Default bytes of tailroom reserved behind a freshly created packet.
///
/// ESP appends padding, a 2-byte trailer and a 12-byte ICV; 64 bytes covers
/// the worst case (15 pad bytes + trailer + ICV) with room to spare.
pub const DEFAULT_TAILROOM: usize = 64;

/// Backing storage for a [`PacketBuf`].
enum Storage {
    /// A private heap allocation, freed on drop.
    Heap(Vec<u8>),
    /// A borrowed arena slot, recycled to its pool on drop.
    Pooled(PoolSlot),
}

impl Storage {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Heap(v) => v,
            Storage::Pooled(s) => s.bytes(),
        }
    }

    #[inline]
    fn bytes_mut(&mut self) -> &mut [u8] {
        match self {
            Storage::Heap(v) => v,
            Storage::Pooled(s) => s.bytes_mut(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Storage::Heap(v) => v.len(),
            Storage::Pooled(s) => s.len(),
        }
    }
}

/// An owned packet buffer with headroom and tailroom.
///
/// The live packet contents occupy `storage[head..tail]`. [`push`] and
/// [`pull`] move the head edge; [`put`] and [`trim`] move the tail edge.
/// All four are O(1) on the happy path. Heap-backed buffers never
/// reallocate and return [`PacketError::NoRoom`] when they run out of
/// room; pool-backed buffers instead promote themselves to a heap copy
/// with fresh room, so elements never see a slot-size failure.
///
/// [`push`]: PacketBuf::push
/// [`pull`]: PacketBuf::pull
/// [`put`]: PacketBuf::put
/// [`trim`]: PacketBuf::trim
pub struct PacketBuf {
    storage: Storage,
    head: usize,
    tail: usize,
}

impl PacketBuf {
    /// Creates a heap buffer holding a copy of `data`, with default room.
    ///
    /// # Examples
    ///
    /// ```
    /// let buf = rb_packet::PacketBuf::from_slice(&[1, 2, 3]);
    /// assert_eq!(buf.data(), &[1, 2, 3]);
    /// ```
    pub fn from_slice(data: &[u8]) -> Self {
        Self::with_room(data, DEFAULT_HEADROOM, DEFAULT_TAILROOM)
    }

    /// Creates a heap buffer holding a copy of `data` with explicit room.
    pub fn with_room(data: &[u8], headroom: usize, tailroom: usize) -> Self {
        let mut storage = vec![0u8; headroom + data.len() + tailroom];
        storage[headroom..headroom + data.len()].copy_from_slice(data);
        PacketBuf {
            storage: Storage::Heap(storage),
            head: headroom,
            tail: headroom + data.len(),
        }
    }

    /// Creates a zero-filled heap buffer of `len` live bytes with default
    /// room.
    pub fn zeroed(len: usize) -> Self {
        let storage = vec![0u8; DEFAULT_HEADROOM + len + DEFAULT_TAILROOM];
        PacketBuf {
            storage: Storage::Heap(storage),
            head: DEFAULT_HEADROOM,
            tail: DEFAULT_HEADROOM + len,
        }
    }

    /// Creates a pooled buffer holding a copy of `data` with default room,
    /// or `None` when the pool is exhausted (recorded in the pool stats so
    /// the caller can count the drop).
    ///
    /// Frames too large for a slot fall back to heap storage — that case
    /// always succeeds and is counted as a `heap_fallback`.
    pub fn try_from_slice_in(pool: &PacketPool, data: &[u8]) -> Option<Self> {
        let mut buf = Self::try_uninit_in(pool, data.len())?;
        buf.data_mut().copy_from_slice(data);
        Some(buf)
    }

    /// Creates a pooled buffer holding a copy of `data` with default room,
    /// deflecting to heap storage when the pool is exhausted (counted as a
    /// `heap_fallback`).
    pub fn from_slice_in(pool: &PacketPool, data: &[u8]) -> Self {
        match Self::try_from_slice_in(pool, data) {
            Some(buf) => buf,
            None => {
                pool.note_heap_fallback();
                Self::from_slice(data)
            }
        }
    }

    /// Creates a pooled buffer with `len` live bytes of *unspecified*
    /// content (whatever the slot's previous occupant left) and default
    /// room, or `None` when the pool is exhausted. The caller must
    /// overwrite all `len` bytes before exposing the packet.
    ///
    /// This is the single-copy construction path: packet builders write
    /// headers and payload directly into the slot instead of assembling a
    /// temporary `Vec` and copying it in.
    pub fn try_uninit_in(pool: &PacketPool, len: usize) -> Option<Self> {
        let needed = DEFAULT_HEADROOM + len + DEFAULT_TAILROOM;
        if needed > pool.slot_size() {
            // Slot-overflow fallback: count it and serve from the heap.
            pool.note_heap_fallback();
            return Some(Self::zeroed(len));
        }
        let slot = pool.try_slot()?;
        Some(PacketBuf {
            storage: Storage::Pooled(slot),
            head: DEFAULT_HEADROOM,
            tail: DEFAULT_HEADROOM + len,
        })
    }

    /// Returns `true` when the buffer borrows an arena slot (as opposed to
    /// owning a heap allocation).
    #[inline]
    pub fn is_pooled(&self) -> bool {
        matches!(self.storage, Storage::Pooled(_))
    }

    /// Returns the live packet contents.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.storage.bytes()[self.head..self.tail]
    }

    /// Returns the live packet contents mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        let (head, tail) = (self.head, self.tail);
        &mut self.storage.bytes_mut()[head..tail]
    }

    /// Returns the number of live bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// Returns `true` when the buffer holds no live bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Returns the bytes of headroom currently available.
    #[inline]
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// Returns the bytes of tailroom currently available.
    #[inline]
    pub fn tailroom(&self) -> usize {
        self.storage.len() - self.tail
    }

    /// Copies the live bytes into a fresh heap allocation with the given
    /// room, releasing the arena slot (if any) back to its pool. Used when
    /// a pooled packet outgrows its slot.
    fn promote_to_heap(&mut self, headroom: usize, tailroom: usize) {
        let len = self.len();
        let mut storage = vec![0u8; headroom + len + tailroom];
        storage[headroom..headroom + len].copy_from_slice(self.data());
        if let Storage::Pooled(slot) = &self.storage {
            slot.pool().note_heap_fallback();
        }
        self.storage = Storage::Heap(storage);
        self.head = headroom;
        self.tail = headroom + len;
    }

    /// Extends the packet at the front by `n` bytes and returns the new
    /// prefix for the caller to fill in.
    ///
    /// Pool-backed buffers that lack headroom are promoted to a heap copy
    /// with room for the request (the slot recycles immediately), so this
    /// only fails for heap buffers.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::NoRoom`] when the buffer is heap-backed and
    /// fewer than `n` bytes of headroom remain.
    pub fn push(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.head {
            if !self.is_pooled() {
                return Err(PacketError::NoRoom {
                    needed: n,
                    available: self.head,
                });
            }
            self.promote_to_heap(n.max(DEFAULT_HEADROOM), self.tailroom());
        }
        self.head -= n;
        let head = self.head;
        Ok(&mut self.storage.bytes_mut()[head..head + n])
    }

    /// Removes `n` bytes from the front of the packet.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when the packet is shorter than
    /// `n` bytes.
    pub fn pull(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(PacketError::Truncated {
                needed: n,
                available: self.len(),
            });
        }
        self.head += n;
        Ok(())
    }

    /// Extends the packet at the back by `n` bytes and returns the new
    /// suffix for the caller to fill in.
    ///
    /// Pool-backed buffers that lack tailroom are promoted to a heap copy
    /// with room for the request (the slot recycles immediately), so this
    /// only fails for heap buffers.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::NoRoom`] when the buffer is heap-backed and
    /// fewer than `n` bytes of tailroom remain.
    pub fn put(&mut self, n: usize) -> Result<&mut [u8]> {
        if n > self.tailroom() {
            if !self.is_pooled() {
                return Err(PacketError::NoRoom {
                    needed: n,
                    available: self.tailroom(),
                });
            }
            self.promote_to_heap(self.headroom(), n.max(DEFAULT_TAILROOM));
        }
        let start = self.tail;
        self.tail += n;
        let tail = self.tail;
        Ok(&mut self.storage.bytes_mut()[start..tail])
    }

    /// Removes `n` bytes from the back of the packet.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when the packet is shorter than
    /// `n` bytes.
    pub fn trim(&mut self, n: usize) -> Result<()> {
        if n > self.len() {
            return Err(PacketError::Truncated {
                needed: n,
                available: self.len(),
            });
        }
        self.tail -= n;
        Ok(())
    }

    /// Consumes the buffer, chaining a pooled slot onto `batch` so its
    /// free-list CAS is shared with the rest of the batch; a heap buffer
    /// is simply dropped. Use at bulk drop points (transmit, discard)
    /// where many buffers die together.
    pub fn recycle_into(self, batch: &mut crate::pool::FreeBatch) {
        if let Storage::Pooled(slot) = self.storage {
            batch.push(slot);
        }
    }

    /// Consumes the buffer and returns the live bytes as a `Vec`.
    pub fn into_vec(self) -> Vec<u8> {
        match self.storage {
            Storage::Heap(mut v) => {
                v.truncate(self.tail);
                v.drain(..self.head);
                v
            }
            Storage::Pooled(slot) => slot.bytes()[self.head..self.tail].to_vec(),
        }
    }
}

impl Clone for PacketBuf {
    /// Clones the buffer, preserving head/tail offsets. A pooled buffer
    /// clones into a fresh slot from the same arena when one is free, and
    /// deflects to the heap (counted as a `heap_fallback`) otherwise, so
    /// cloning never fails and never aliases the original slot.
    fn clone(&self) -> Self {
        match &self.storage {
            Storage::Heap(v) => PacketBuf {
                storage: Storage::Heap(v.clone()),
                head: self.head,
                tail: self.tail,
            },
            Storage::Pooled(slot) => {
                let pool = slot.pool();
                let storage = match pool.try_slot() {
                    Some(mut fresh) => {
                        fresh.bytes_mut()[self.head..self.tail]
                            .copy_from_slice(&slot.bytes()[self.head..self.tail]);
                        Storage::Pooled(fresh)
                    }
                    None => {
                        pool.note_heap_fallback();
                        let mut v = vec![0u8; slot.len()];
                        v[self.head..self.tail]
                            .copy_from_slice(&slot.bytes()[self.head..self.tail]);
                        Storage::Heap(v)
                    }
                };
                PacketBuf {
                    storage,
                    head: self.head,
                    tail: self.tail,
                }
            }
        }
    }
}

impl core::fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketBuf")
            .field("len", &self.len())
            .field("headroom", &self.headroom())
            .field("tailroom", &self.tailroom())
            .field("pooled", &self.is_pooled())
            .finish()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PacketPool;

    #[test]
    fn from_slice_round_trips() {
        let buf = PacketBuf::from_slice(b"hello");
        assert_eq!(buf.data(), b"hello");
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
        assert!(!buf.is_pooled());
    }

    #[test]
    fn push_prepends_bytes() {
        let mut buf = PacketBuf::from_slice(b"payload");
        buf.push(3).unwrap().copy_from_slice(b"hdr");
        assert_eq!(buf.data(), b"hdrpayload");
    }

    #[test]
    fn pull_strips_prefix() {
        let mut buf = PacketBuf::from_slice(b"hdrpayload");
        buf.pull(3).unwrap();
        assert_eq!(buf.data(), b"payload");
    }

    #[test]
    fn put_appends_bytes() {
        let mut buf = PacketBuf::from_slice(b"data");
        buf.put(4).unwrap().copy_from_slice(b"tail");
        assert_eq!(buf.data(), b"datatail");
    }

    #[test]
    fn trim_strips_suffix() {
        let mut buf = PacketBuf::from_slice(b"datatail");
        buf.trim(4).unwrap();
        assert_eq!(buf.data(), b"data");
    }

    #[test]
    fn push_beyond_headroom_fails() {
        let mut buf = PacketBuf::with_room(b"x", 2, 0);
        let err = buf.push(3).unwrap_err();
        assert!(matches!(
            err,
            PacketError::NoRoom {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn put_beyond_tailroom_fails() {
        let mut buf = PacketBuf::with_room(b"x", 0, 2);
        let err = buf.put(3).unwrap_err();
        assert!(matches!(
            err,
            PacketError::NoRoom {
                needed: 3,
                available: 2
            }
        ));
    }

    #[test]
    fn pull_beyond_len_fails() {
        let mut buf = PacketBuf::from_slice(b"ab");
        assert!(buf.pull(3).is_err());
    }

    #[test]
    fn trim_beyond_len_fails() {
        let mut buf = PacketBuf::from_slice(b"ab");
        assert!(buf.trim(3).is_err());
    }

    #[test]
    fn zeroed_is_all_zero() {
        let buf = PacketBuf::zeroed(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.data().iter().all(|&b| b == 0));
    }

    #[test]
    fn into_vec_returns_live_bytes_only() {
        let mut buf = PacketBuf::from_slice(b"abcdef");
        buf.pull(1).unwrap();
        buf.trim(1).unwrap();
        assert_eq!(buf.into_vec(), b"bcde");
    }

    #[test]
    fn push_then_pull_is_identity() {
        let mut buf = PacketBuf::from_slice(b"core");
        buf.push(8).unwrap().copy_from_slice(b"12345678");
        buf.pull(8).unwrap();
        assert_eq!(buf.data(), b"core");
    }

    #[test]
    fn pooled_from_slice_round_trips() {
        let pool = PacketPool::new(4, 512);
        let buf = PacketBuf::try_from_slice_in(&pool, b"hello").unwrap();
        assert!(buf.is_pooled());
        assert_eq!(buf.data(), b"hello");
        assert_eq!(buf.headroom(), DEFAULT_HEADROOM);
        drop(buf);
        assert_eq!(pool.stats().recycles, 1);
    }

    #[test]
    fn pooled_push_pull_match_heap() {
        let pool = PacketPool::new(4, 512);
        let mut pooled = PacketBuf::try_from_slice_in(&pool, b"payload").unwrap();
        let mut heap = PacketBuf::from_slice(b"payload");
        pooled.push(3).unwrap().copy_from_slice(b"hdr");
        heap.push(3).unwrap().copy_from_slice(b"hdr");
        assert_eq!(pooled.data(), heap.data());
        pooled.pull(5).unwrap();
        heap.pull(5).unwrap();
        pooled.put(2).unwrap().copy_from_slice(b"zz");
        heap.put(2).unwrap().copy_from_slice(b"zz");
        pooled.trim(1).unwrap();
        heap.trim(1).unwrap();
        assert_eq!(pooled.data(), heap.data());
    }

    #[test]
    fn exhausted_pool_yields_none_and_counts() {
        let pool = PacketPool::new(1, 512);
        let first = PacketBuf::try_from_slice_in(&pool, b"a").unwrap();
        assert!(PacketBuf::try_from_slice_in(&pool, b"b").is_none());
        assert_eq!(pool.stats().exhausted, 1);
        drop(first);
        assert!(PacketBuf::try_from_slice_in(&pool, b"c").is_some());
    }

    #[test]
    fn oversize_frame_falls_back_to_heap() {
        let pool = PacketPool::new(2, 256);
        let big = vec![0x42u8; 400];
        let buf = PacketBuf::try_from_slice_in(&pool, &big).unwrap();
        assert!(!buf.is_pooled());
        assert_eq!(buf.data(), &big[..]);
        assert_eq!(pool.stats().heap_fallbacks, 1);
        assert_eq!(pool.stats().allocs, 0);
    }

    #[test]
    fn from_slice_in_deflects_on_exhaustion() {
        let pool = PacketPool::new(1, 512);
        let _hold = pool.try_slot().unwrap();
        let buf = PacketBuf::from_slice_in(&pool, b"overflow");
        assert!(!buf.is_pooled());
        assert_eq!(buf.data(), b"overflow");
        let s = pool.stats();
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.heap_fallbacks, 1);
    }

    #[test]
    fn pooled_push_past_slot_promotes_to_heap() {
        let pool = PacketPool::new(2, 256);
        let mut buf = PacketBuf::try_from_slice_in(&pool, b"deep").unwrap();
        // Exceed the 64-byte slot headroom: promotes instead of erroring.
        let hdr = buf.push(100).unwrap();
        hdr.fill(0x11);
        assert!(!buf.is_pooled());
        assert_eq!(buf.len(), 104);
        assert_eq!(&buf.data()[100..], b"deep");
        assert_eq!(pool.stats().heap_fallbacks, 1);
        // The slot went back to the pool immediately.
        assert_eq!(pool.stats().in_use, 0);
    }

    #[test]
    fn pooled_put_past_slot_promotes_to_heap() {
        let pool = PacketPool::new(2, 256);
        let mut buf = PacketBuf::try_from_slice_in(&pool, b"x").unwrap();
        let tail = buf.put(300).unwrap();
        tail.fill(0x22);
        assert!(!buf.is_pooled());
        assert_eq!(buf.len(), 301);
        assert_eq!(pool.stats().heap_fallbacks, 1);
    }

    #[test]
    fn clone_uses_fresh_slot_or_heap() {
        let pool = PacketPool::new(2, 512);
        let mut orig = PacketBuf::try_from_slice_in(&pool, b"original").unwrap();
        orig.push(2).unwrap().copy_from_slice(b"eh");
        let cloned = orig.clone();
        assert!(cloned.is_pooled());
        assert_eq!(cloned.data(), orig.data());
        assert_eq!(cloned.headroom(), orig.headroom());
        // Pool now empty: next clone deflects to heap but is byte-identical.
        let heap_clone = orig.clone();
        assert!(!heap_clone.is_pooled());
        assert_eq!(heap_clone.data(), orig.data());
        // Mutating the clone leaves the original untouched.
        let mut cloned = cloned;
        cloned.data_mut()[0] = b'X';
        assert_eq!(&orig.data()[..2], b"eh");
    }

    #[test]
    fn pooled_into_vec_returns_live_bytes() {
        let pool = PacketPool::new(2, 512);
        let mut buf = PacketBuf::try_from_slice_in(&pool, b"abcdef").unwrap();
        buf.pull(1).unwrap();
        buf.trim(1).unwrap();
        assert_eq!(buf.into_vec(), b"bcde");
        assert_eq!(pool.stats().in_use, 0);
    }
}
