//! Simulated NIC descriptor rings — the `kn` axis of Table 1.
//!
//! RouteBricks' single-server result needs *two* batching factors:
//! poll-driven batching `kp` (packets per Click poll) and NIC-driven
//! batching `kn` (descriptors per PCIe transaction). The cost model
//! solves `cycles = C_BASE + C_POLL/kp + C_PCIE/kn`; this module is the
//! mechanism that makes a running dataplane actually *pay* the
//! `C_PCIE/kn` term, so measured throughput responds to `kn` the way
//! the paper's Table 1 does.
//!
//! A [`DescRing`] is a fixed-depth ring of descriptors over packet
//! buffers with three monotonically increasing indices:
//!
//! ```text
//!   reclaim <= head <= tail        tail - reclaim <= depth
//!   [reclaim, head)  spent descriptors awaiting writeback
//!   [head,    tail)  full descriptors holding frames
//!   everything else  free descriptors
//! ```
//!
//! Producing ([`DescRing::post`]) advances `tail`; consuming
//! ([`DescRing::consume`]) advances `head`; descriptor *writeback* —
//! the status-word update plus doorbell that a real NIC charges one
//! PCIe transaction for — advances `reclaim` in `kn`-sized chunks, so
//! its cost is paid once per `kn` descriptors. The writeback cost is
//! burned as real CPU work ([`DOORBELL_SPINS`] /
//! [`WRITEBACK_SPINS_PER_DESC`]), which is what lets the Table-1 grid
//! benchmark observe `kn` in wall-clock numbers rather than only in
//! counters.
//!
//! Conservation holds by construction and is checked by the `nic_smoke`
//! CI gate: `posted == reclaimed + in_ring` at every point in time.
//!
//! [`NicPort`] models one multi-queue port: each worker core asks it
//! for a private RX/TX [`NicQueue`] pair (RSS, §4.2's "one core per
//! queue" rule), so per-core replicas share no descriptor state.

use crate::Packet;

/// Default descriptor-ring depth (descriptors per RX or TX ring).
pub const DEFAULT_RING_DEPTH: usize = 512;

/// Spin iterations charged per doorbell (one per writeback chunk).
///
/// A doorbell is a posted PCIe write plus the NIC's descriptor fetch;
/// charging it once per `kn` descriptors is exactly the amortisation
/// NIC-driven batching buys. The constant is calibrated so that at
/// `kn = 1` the device boundary dominates the per-packet budget the
/// way the paper's 2,307-cycle (kp=32, kn=1) row does.
pub const DOORBELL_SPINS: u32 = 96;

/// Spin iterations charged per descriptor status-word writeback.
///
/// Unlike the doorbell this part scales with the descriptor count, so
/// it is *not* amortised by `kn` — matching the `PCIE_DESC` (per
/// descriptor) vs `PCIE_TXN` (per transaction) split in `rb-hw`.
pub const WRITEBACK_SPINS_PER_DESC: u32 = 4;

/// Descriptor-ring counters, mergeable across rings and replicas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Descriptors posted (frames handed to the ring).
    pub posted: u64,
    /// Descriptors reclaimed by writeback (free again).
    pub reclaimed: u64,
    /// Doorbells rung — one per writeback chunk, so `posted /
    /// doorbells` approaches `kn` under steady load.
    pub doorbells: u64,
    /// Writeback chunks (equals `doorbells`; kept separate so a future
    /// split of post-side vs completion-side doorbells stays additive).
    pub reclaim_batches: u64,
    /// Posts that found no free descriptor and had to force an early
    /// writeback (or fail outright): the descriptor stalls of Table 1's
    /// kn=1 rows.
    pub stalls: u64,
    /// Frame bytes DMA'd across the device boundary (payload bytes of
    /// every successfully posted descriptor). Feeds the per-device
    /// bandwidth row of the bottleneck report.
    pub dma_bytes: u64,
}

impl NicStats {
    /// Accumulates `other` into `self` (summing across rings is safe:
    /// every ring is owned by exactly one element replica).
    pub fn merge(&mut self, other: &NicStats) {
        self.posted += other.posted;
        self.reclaimed += other.reclaimed;
        self.doorbells += other.doorbells;
        self.reclaim_batches += other.reclaim_batches;
        self.stalls += other.stalls;
        self.dma_bytes += other.dma_bytes;
    }
}

/// One descriptor: a status word plus the frame it carries.
#[derive(Debug, Default)]
struct Desc {
    /// Device-visible status word; written back on reclaim like the DD
    /// ("descriptor done") bit a driver polls on real hardware.
    status: u8,
    frame: Option<Packet>,
}

const DESC_FREE: u8 = 0;
const DESC_FULL: u8 = 1;
const DESC_SPENT: u8 = 2;

/// A fixed-depth descriptor ring with `kn`-batched writeback.
#[derive(Debug)]
pub struct DescRing {
    descs: Vec<Desc>,
    /// First full descriptor (next to consume). Monotonic.
    head: u64,
    /// First free descriptor (next to post). Monotonic.
    tail: u64,
    /// First spent descriptor awaiting writeback. Monotonic.
    reclaim: u64,
    kn: usize,
    stats: NicStats,
}

impl DescRing {
    /// Creates a ring of `depth` descriptors reclaiming in `kn`-sized
    /// chunks. `kn` is clamped to `[1, depth]`.
    ///
    /// # Panics
    ///
    /// Panics when `depth` is zero.
    pub fn new(depth: usize, kn: usize) -> DescRing {
        assert!(depth > 0, "descriptor ring depth must be positive");
        DescRing {
            descs: (0..depth).map(|_| Desc::default()).collect(),
            head: 0,
            tail: 0,
            reclaim: 0,
            kn: kn.clamp(1, depth),
            stats: NicStats::default(),
        }
    }

    /// Ring depth in descriptors.
    pub fn depth(&self) -> usize {
        self.descs.len()
    }

    /// The NIC batching factor `kn` this ring reclaims with.
    pub fn kn(&self) -> usize {
        self.kn
    }

    /// Frames posted but not yet consumed.
    pub fn pending(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Descriptors not yet reclaimed (full + spent): the conservation
    /// identity is `stats.posted == stats.reclaimed + in_ring()`.
    pub fn in_ring(&self) -> usize {
        (self.tail - self.reclaim) as usize
    }

    /// Descriptors a `post` can still take without failing: free slots
    /// plus spent ones recoverable by a forced writeback.
    pub fn recoverable_room(&self) -> usize {
        self.depth() - self.pending()
    }

    /// Counters so far.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    fn slot(&mut self, index: u64) -> &mut Desc {
        let at = (index % self.descs.len() as u64) as usize;
        &mut self.descs[at]
    }

    /// Posts a frame into the next free descriptor.
    ///
    /// When every free descriptor is exhausted but spent ones await
    /// writeback, the post *stalls*: it charges a forced early
    /// writeback (breaking the `kn` amortisation — that is the cost of
    /// an undersized ring) and then succeeds. When the ring is full of
    /// unconsumed frames the frame comes back as `Err` — the caller
    /// owns the drop-or-retry decision.
    pub fn post(&mut self, pkt: Packet) -> Result<(), Packet> {
        if self.in_ring() == self.depth() {
            if self.head == self.reclaim {
                // Every descriptor holds an unconsumed frame.
                self.stats.stalls += 1;
                return Err(pkt);
            }
            // Free descriptors exist but have not been written back yet:
            // stall on an early, under-sized writeback chunk.
            self.stats.stalls += 1;
            self.flush_reclaim();
        }
        let at = self.tail;
        self.stats.dma_bytes += pkt.data().len() as u64;
        let desc = self.slot(at);
        desc.status = DESC_FULL;
        desc.frame = Some(pkt);
        self.tail += 1;
        self.stats.posted += 1;
        Ok(())
    }

    /// Pops up to `max` frames from the ring into `out`, then writes
    /// back spent descriptors in `kn`-sized chunks (any sub-`kn`
    /// remainder stays spent until a later call completes the chunk —
    /// the lazy reclaim NIC-driven batching is about).
    ///
    /// Returns the number of frames popped.
    pub fn consume(&mut self, max: usize, out: &mut Vec<Packet>) -> usize {
        let take = max.min(self.pending());
        for _ in 0..take {
            let at = self.head;
            let desc = self.slot(at);
            desc.status = DESC_SPENT;
            let frame = desc.frame.take().expect("full descriptor holds a frame");
            out.push(frame);
            self.head += 1;
        }
        while (self.head - self.reclaim) as usize >= self.kn {
            self.writeback_chunk(self.kn);
        }
        take
    }

    /// Writes back every spent descriptor immediately, `kn` be damned —
    /// used by shutdown paths and forced stalls. No-op when nothing is
    /// spent.
    pub fn flush_reclaim(&mut self) {
        let spent = (self.head - self.reclaim) as usize;
        if spent > 0 {
            self.writeback_chunk(spent);
        }
    }

    /// One descriptor writeback + doorbell: the unit of cost `kn`
    /// amortises. Burns real CPU so wall-clock measurements see it.
    fn writeback_chunk(&mut self, n: usize) {
        debug_assert!(n >= 1 && (self.head - self.reclaim) as usize >= n);
        for _ in 0..n {
            let at = self.reclaim;
            let desc = self.slot(at);
            debug_assert_eq!(desc.status, DESC_SPENT);
            desc.status = DESC_FREE;
            for _ in 0..WRITEBACK_SPINS_PER_DESC {
                std::hint::spin_loop();
            }
            self.reclaim += 1;
        }
        for _ in 0..DOORBELL_SPINS {
            std::hint::spin_loop();
        }
        self.stats.doorbells += 1;
        self.stats.reclaim_batches += 1;
        self.stats.reclaimed += n as u64;
    }
}

/// A multi-queue NIC port: a factory for per-worker RX/TX queue pairs.
///
/// The paper's rule for lock-free parallelism is one queue pair per
/// core (multi-queue NICs + RSS). Each [`NicPort::queue_pair`] call
/// mints a fresh, independent [`NicQueue`], so every MT replica owns
/// its descriptor state outright and the hot path never takes a lock.
#[derive(Debug, Clone, Copy)]
pub struct NicPort {
    port_no: u16,
    depth: usize,
    kn: usize,
}

impl NicPort {
    /// A port with the default ring depth and `kn`.
    pub fn new(port_no: u16, depth: usize, kn: usize) -> NicPort {
        assert!(depth > 0, "descriptor ring depth must be positive");
        NicPort {
            port_no,
            depth,
            kn: kn.clamp(1, depth),
        }
    }

    /// The port number frames from this port are stamped with.
    pub fn port_no(&self) -> u16 {
        self.port_no
    }

    /// Ring depth of queues minted by [`NicPort::queue_pair`].
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// NIC batching factor of queues minted by [`NicPort::queue_pair`].
    pub fn kn(&self) -> usize {
        self.kn
    }

    /// Mints a fresh RX/TX queue pair for one worker core.
    pub fn queue_pair(&self) -> NicQueue {
        NicQueue {
            rx: DescRing::new(self.depth, self.kn),
            tx: DescRing::new(self.depth, self.kn),
        }
    }
}

/// One worker core's private RX/TX descriptor-ring pair.
#[derive(Debug)]
pub struct NicQueue {
    /// Receive ring: the device posts, the core consumes.
    pub rx: DescRing,
    /// Transmit ring: the core posts, the device consumes.
    pub tx: DescRing,
}

impl NicQueue {
    /// Combined RX+TX counters for this queue pair.
    pub fn stats(&self) -> NicStats {
        let mut s = self.rx.stats();
        s.merge(&self.tx.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(i: u8) -> Packet {
        Packet::from_slice(&[i])
    }

    fn conservation_holds(ring: &DescRing) {
        let s = ring.stats();
        assert_eq!(
            s.posted,
            s.reclaimed + ring.in_ring() as u64,
            "posted = reclaimed + in-ring must hold at all times"
        );
    }

    #[test]
    fn post_consume_preserves_fifo_order() {
        let mut ring = DescRing::new(8, 4);
        for i in 0..6u8 {
            ring.post(frame(i)).unwrap();
        }
        assert_eq!(ring.pending(), 6);
        let mut out = Vec::new();
        assert_eq!(ring.consume(4, &mut out), 4);
        assert_eq!(ring.consume(usize::MAX, &mut out), 2);
        let data: Vec<u8> = out.iter().map(|p| p.data()[0]).collect();
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5]);
        conservation_holds(&ring);
    }

    #[test]
    fn reclaim_happens_in_kn_chunks_with_lazy_remainder() {
        let mut ring = DescRing::new(16, 4);
        let mut out = Vec::new();
        for i in 0..10u8 {
            ring.post(frame(i)).unwrap();
        }
        ring.consume(10, &mut out);
        let s = ring.stats();
        // 10 spent = two chunks of 4 written back, 2 left spent (lazy).
        assert_eq!(s.reclaimed, 8);
        assert_eq!(s.doorbells, 2);
        assert_eq!(s.reclaim_batches, 2);
        assert_eq!(ring.in_ring(), 2);
        conservation_holds(&ring);
        // Two more consumed frames complete the third chunk.
        ring.post(frame(10)).unwrap();
        ring.post(frame(11)).unwrap();
        ring.consume(2, &mut out);
        assert_eq!(ring.stats().reclaimed, 12);
        assert_eq!(ring.stats().doorbells, 3);
        conservation_holds(&ring);
    }

    #[test]
    fn kn_one_rings_a_doorbell_per_descriptor() {
        let mut ring = DescRing::new(8, 1);
        let mut out = Vec::new();
        for i in 0..5u8 {
            ring.post(frame(i)).unwrap();
        }
        ring.consume(usize::MAX, &mut out);
        assert_eq!(ring.stats().doorbells, 5);
        assert_eq!(ring.stats().reclaimed, 5);
        conservation_holds(&ring);
    }

    #[test]
    fn wraparound_many_times_over() {
        // Satellite test: indices are monotonic u64s over a small ring;
        // wrap the physical slots many times and check order + counters.
        let mut ring = DescRing::new(4, 2);
        let mut out = Vec::new();
        let mut expect = 0u8;
        for round in 0..25u8 {
            for i in 0..3 {
                ring.post(frame(round.wrapping_mul(3).wrapping_add(i)))
                    .unwrap();
            }
            ring.consume(usize::MAX, &mut out);
            for pkt in out.drain(..) {
                assert_eq!(pkt.data()[0], expect, "FIFO across wraps");
                expect = expect.wrapping_add(1);
            }
            conservation_holds(&ring);
        }
        assert_eq!(ring.stats().posted, 75);
        assert!(ring.stats().reclaimed >= 74); // ≤ kn-1 lazily spent.
    }

    #[test]
    fn full_ring_of_frames_rejects_the_post() {
        // Satellite test: tail catches head with every descriptor full —
        // nothing is reclaimable, so the frame comes back to the caller.
        let mut ring = DescRing::new(4, 2);
        for i in 0..4u8 {
            ring.post(frame(i)).unwrap();
        }
        let rejected = ring.post(frame(9)).unwrap_err();
        assert_eq!(rejected.data()[0], 9);
        assert_eq!(ring.stats().stalls, 1);
        conservation_holds(&ring);
        // Consuming one frame leaves a spent descriptor; the next post
        // stalls on a forced early writeback but succeeds.
        let mut out = Vec::new();
        ring.consume(1, &mut out);
        assert_eq!(ring.in_ring(), 4, "spent-but-unreclaimed still in ring");
        ring.post(frame(10)).unwrap();
        let s = ring.stats();
        assert_eq!(s.stalls, 2);
        assert_eq!(s.reclaimed, 1, "forced writeback of the spent remainder");
        assert_eq!(ring.pending(), 4);
        conservation_holds(&ring);
    }

    #[test]
    fn reclaim_after_wrap_keeps_status_words_consistent() {
        // Satellite test: force reclaim to cross the physical wrap point.
        let mut ring = DescRing::new(4, 4);
        let mut out = Vec::new();
        // Fill, consume 2 (spent remainder sits at slots 0..2).
        for i in 0..4u8 {
            ring.post(frame(i)).unwrap();
        }
        ring.consume(2, &mut out);
        assert_eq!(ring.stats().reclaimed, 0, "sub-kn remainder stays spent");
        // Ring full again (2 pending + 2 spent): post stalls, forced
        // writeback frees the two spent slots, post lands past the wrap.
        ring.post(frame(4)).unwrap();
        ring.post(frame(5)).unwrap();
        assert_eq!(ring.stats().stalls, 1);
        ring.consume(usize::MAX, &mut out);
        let data: Vec<u8> = out.iter().map(|p| p.data()[0]).collect();
        assert_eq!(data, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ring.stats().reclaimed, 6);
        conservation_holds(&ring);
    }

    #[test]
    fn flush_reclaim_drains_the_lazy_remainder() {
        let mut ring = DescRing::new(8, 4);
        let mut out = Vec::new();
        for i in 0..3u8 {
            ring.post(frame(i)).unwrap();
        }
        ring.consume(usize::MAX, &mut out);
        assert_eq!(ring.stats().reclaimed, 0);
        ring.flush_reclaim();
        let s = ring.stats();
        assert_eq!(s.reclaimed, 3);
        assert_eq!(s.doorbells, 1);
        assert_eq!(ring.in_ring(), 0);
        conservation_holds(&ring);
        ring.flush_reclaim(); // No-op when nothing is spent.
        assert_eq!(ring.stats().doorbells, 1);
    }

    #[test]
    fn kn_is_clamped_to_ring_depth() {
        let ring = DescRing::new(4, 64);
        assert_eq!(ring.kn(), 4);
        let ring = DescRing::new(4, 0);
        assert_eq!(ring.kn(), 1);
    }

    #[test]
    fn port_mints_independent_queue_pairs() {
        let port = NicPort::new(3, 32, 8);
        assert_eq!(port.port_no(), 3);
        let mut a = port.queue_pair();
        let b = port.queue_pair();
        assert_eq!(a.rx.depth(), 32);
        assert_eq!(a.tx.kn(), 8);
        a.rx.post(frame(1)).unwrap();
        assert_eq!(a.rx.pending(), 1);
        assert_eq!(b.rx.pending(), 0, "queue pairs share no state");
        let mut out = Vec::new();
        a.rx.consume(1, &mut out);
        a.rx.flush_reclaim();
        let s = a.stats();
        assert_eq!(s.posted, 1);
        assert_eq!(s.reclaimed, 1);
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = NicStats {
            posted: 1,
            reclaimed: 2,
            doorbells: 3,
            reclaim_batches: 4,
            stalls: 5,
            dma_bytes: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.posted, 2);
        assert_eq!(a.stalls, 10);
        assert_eq!(a.dma_bytes, 12);
    }

    #[test]
    fn dma_bytes_count_posted_frame_payloads() {
        let mut ring = DescRing::new(4, 2);
        ring.post(Packet::from_slice(&[0; 60])).unwrap();
        ring.post(Packet::from_slice(&[0; 100])).unwrap();
        assert_eq!(ring.stats().dma_bytes, 160);
        // A rejected post moves no bytes.
        ring.post(Packet::from_slice(&[0; 64])).unwrap();
        ring.post(Packet::from_slice(&[0; 64])).unwrap();
        assert!(ring.post(Packet::from_slice(&[0; 64])).is_err());
        assert_eq!(ring.stats().dma_bytes, 288);
    }
}
