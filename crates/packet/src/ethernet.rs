//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::{PacketError, Result};

/// Length in bytes of an Ethernet II header (no 802.1Q tag).
pub const HEADER_LEN: usize = 14;

/// Minimum Ethernet frame length (without the 4-byte FCS).
pub const MIN_FRAME_LEN: usize = 60;

/// Well-known EtherType values used by the RouteBricks dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// RouteBricks intra-cluster VLB tag (`0x88b5`, IEEE local experimental).
    VlbTag,
    /// Any other value.
    Other(u16),
}

impl EtherType {
    /// Returns the wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::VlbTag => 0x88b5,
            EtherType::Other(v) => v,
        }
    }

    /// Interprets a wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88b5 => EtherType::VlbTag,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parses the header at the start of `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `frame` is shorter than
    /// [`HEADER_LEN`].
    pub fn parse(frame: &[u8]) -> Result<EthernetHeader> {
        if frame.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: frame.len(),
            });
        }
        Ok(EthernetHeader {
            dst: MacAddr::from_bytes(&frame[0..6])?,
            src: MacAddr::from_bytes(&frame[6..12])?,
            ethertype: EtherType::from_u16(u16::from_be_bytes([frame[12], frame[13]])),
        })
    }

    /// Writes the header into the first [`HEADER_LEN`] bytes of `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `out` is too short.
    pub fn emit(&self, out: &mut [u8]) -> Result<()> {
        if out.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: out.len(),
            });
        }
        out[0..6].copy_from_slice(&self.dst.0);
        out[6..12].copy_from_slice(&self.src.0);
        out[12..14].copy_from_slice(&self.ethertype.as_u16().to_be_bytes());
        Ok(())
    }

    /// Returns the payload that follows the header in `frame`.
    pub fn payload(frame: &[u8]) -> Result<&[u8]> {
        if frame.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: frame.len(),
            });
        }
        Ok(&frame[HEADER_LEN..])
    }

    /// Returns the payload mutably.
    pub fn payload_mut(frame: &mut [u8]) -> Result<&mut [u8]> {
        if frame.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: frame.len(),
            });
        }
        Ok(&mut frame[HEADER_LEN..])
    }

    /// Overwrites only the destination MAC in `frame`, leaving the rest of
    /// the header untouched.
    ///
    /// This is the single-field rewrite RouteBricks intermediate nodes
    /// perform when relaying VLB traffic (§6.1).
    pub fn set_dst(frame: &mut [u8], dst: MacAddr) -> Result<()> {
        if frame.len() < 6 {
            return Err(PacketError::Truncated {
                needed: 6,
                available: frame.len(),
            });
        }
        frame[0..6].copy_from_slice(&dst.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr([0, 1, 2, 3, 4, 5]),
            src: MacAddr([6, 7, 8, 9, 10, 11]),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let hdr = sample_header();
        let mut frame = [0u8; HEADER_LEN];
        hdr.emit(&mut frame).unwrap();
        assert_eq!(EthernetHeader::parse(&frame).unwrap(), hdr);
    }

    #[test]
    fn parse_truncated_fails() {
        assert!(EthernetHeader::parse(&[0u8; 13]).is_err());
    }

    #[test]
    fn ethertype_round_trip() {
        for v in [0x0800u16, 0x0806, 0x88b5, 0x1234] {
            assert_eq!(EtherType::from_u16(v).as_u16(), v);
        }
    }

    #[test]
    fn payload_skips_header() {
        let mut frame = vec![0u8; HEADER_LEN];
        frame.extend_from_slice(b"data");
        assert_eq!(EthernetHeader::payload(&frame).unwrap(), b"data");
    }

    #[test]
    fn set_dst_rewrites_only_destination() {
        let hdr = sample_header();
        let mut frame = [0u8; HEADER_LEN];
        hdr.emit(&mut frame).unwrap();
        EthernetHeader::set_dst(&mut frame, MacAddr::BROADCAST).unwrap();
        let parsed = EthernetHeader::parse(&frame).unwrap();
        assert_eq!(parsed.dst, MacAddr::BROADCAST);
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.ethertype, hdr.ethertype);
    }
}
