//! UDP header parsing and construction.

use crate::checksum::l4_checksum;
use crate::{PacketError, Result};

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload in bytes.
    pub length: u16,
    /// Checksum (zero means "not computed" in IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Parses the header at the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `data` is shorter than
    /// [`HEADER_LEN`] and [`PacketError::BadField`] when the length field is
    /// impossible.
    pub fn parse(data: &[u8]) -> Result<UdpHeader> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if usize::from(length) < HEADER_LEN {
            return Err(PacketError::BadField("UDP length"));
        }
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length,
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Writes the header into `out` (checksum field written as stored).
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `out` is too short.
    pub fn emit(&self, out: &mut [u8]) -> Result<()> {
        if out.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: out.len(),
            });
        }
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        Ok(())
    }

    /// Computes and stores the UDP checksum over `segment` (header +
    /// payload, in place) given the IPv4 pseudo-header addresses.
    ///
    /// Per RFC 768, a computed checksum of zero is transmitted as `0xffff`.
    pub fn fill_checksum(segment: &mut [u8], src: [u8; 4], dst: [u8; 4]) -> Result<()> {
        if segment.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: segment.len(),
            });
        }
        segment[6] = 0;
        segment[7] = 0;
        let mut ck = l4_checksum(src, dst, 17, segment);
        if ck == 0 {
            ck = 0xffff;
        }
        segment[6..8].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let hdr = UdpHeader {
            src_port: 53,
            dst_port: 33000,
            length: 26,
            checksum: 0xabcd,
        };
        let mut buf = [0u8; HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(UdpHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn parse_rejects_bad_length() {
        let buf = [0u8, 1, 0, 2, 0, 4, 0, 0]; // length 4 < 8
        assert!(UdpHeader::parse(&buf).is_err());
    }

    #[test]
    fn fill_checksum_then_verify() {
        let src = [1, 2, 3, 4];
        let dst = [5, 6, 7, 8];
        let mut seg = vec![0u8; HEADER_LEN];
        UdpHeader {
            src_port: 9,
            dst_port: 10,
            length: 12,
            checksum: 0,
        }
        .emit(&mut seg)
        .unwrap();
        seg.extend_from_slice(b"test");
        UdpHeader::fill_checksum(&mut seg, src, dst).unwrap();
        // Recomputing over the segment with stored checksum zeroed must
        // reproduce the stored value.
        let stored = u16::from_be_bytes([seg[6], seg[7]]);
        seg[6] = 0;
        seg[7] = 0;
        assert_eq!(l4_checksum(src, dst, 17, &seg), stored);
    }

    #[test]
    fn truncated_parse_fails() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }
}
