//! ICMP (RFC 792): the control messages a real IP router must emit.
//!
//! The paper's IP-routing application decrements TTLs; when one expires,
//! a production router sends an ICMP *time exceeded* back to the source
//! (this is what makes `traceroute` work). [`time_exceeded`] builds that
//! message exactly as RFC 792 prescribes: type 11, code 0, followed by
//! the original IP header plus the first 8 payload bytes.

use crate::checksum::checksum;
use crate::ipv4::{IpProto, Ipv4Header, MIN_HEADER_LEN as IP_HLEN};
use crate::{PacketError, Result};
use std::net::Ipv4Addr;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message types used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Other type value.
    Other(u8),
}

impl IcmpType {
    /// Wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::DestUnreachable => 3,
            IcmpType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u8(v: u8) -> IcmpType {
        match v {
            0 => IcmpType::EchoReply,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            3 => IcmpType::DestUnreachable,
            other => IcmpType::Other(other),
        }
    }
}

/// A parsed ICMP message (header plus body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Code within the type.
    pub code: u8,
    /// Rest-of-header field (identifier/sequence for echo, unused for
    /// time-exceeded).
    pub rest: u32,
    /// Message body (original datagram excerpt for error messages).
    pub body: Vec<u8>,
}

impl IcmpMessage {
    /// Parses an ICMP message, verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`PacketError::Truncated`] or [`PacketError::BadChecksum`].
    pub fn parse(data: &[u8]) -> Result<IcmpMessage> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                available: data.len(),
            });
        }
        let stored = u16::from_be_bytes([data[2], data[3]]);
        let mut zeroed = data.to_vec();
        zeroed[2] = 0;
        zeroed[3] = 0;
        let computed = checksum(&zeroed);
        if computed != stored {
            return Err(PacketError::BadChecksum { stored, computed });
        }
        Ok(IcmpMessage {
            icmp_type: IcmpType::from_u8(data[0]),
            code: data[1],
            rest: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            body: data[HEADER_LEN..].to_vec(),
        })
    }

    /// Serialises the message with a correct checksum.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN + self.body.len()];
        out[0] = self.icmp_type.as_u8();
        out[1] = self.code;
        out[4..8].copy_from_slice(&self.rest.to_be_bytes());
        out[HEADER_LEN..].copy_from_slice(&self.body);
        let ck = checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

/// Builds the complete IPv4 datagram for an ICMP *time exceeded* (TTL
/// expired in transit) in response to `original` (a raw IPv4 datagram),
/// sourced from `router_addr`.
///
/// Returns `None` when the original is itself unparseable or an ICMP
/// error (RFC 1122 forbids errors about errors).
pub fn time_exceeded(original: &[u8], router_addr: Ipv4Addr) -> Option<Vec<u8>> {
    let orig_hdr = Ipv4Header::parse_unchecked(original).ok()?;
    if orig_hdr.proto == IpProto::Icmp {
        // Only suppress errors-about-errors; echo messages are fine, but
        // parsing the inner type costs more than the conservative skip.
        let icmp_type = original.get(orig_hdr.header_len()).copied()?;
        if !matches!(
            IcmpType::from_u8(icmp_type),
            IcmpType::EchoReply | IcmpType::EchoRequest
        ) {
            return None;
        }
    }
    // Quote the original IP header + first 8 payload bytes.
    let quote_len = (orig_hdr.header_len() + 8).min(original.len());
    let message = IcmpMessage {
        icmp_type: IcmpType::TimeExceeded,
        code: 0,
        rest: 0,
        body: original[..quote_len].to_vec(),
    }
    .emit();

    let mut datagram = vec![0u8; IP_HLEN + message.len()];
    Ipv4Header::new(router_addr, orig_hdr.src, IpProto::Icmp, message.len())
        .emit(&mut datagram)
        .expect("buffer sized for header");
    datagram[IP_HLEN..].copy_from_slice(&message);
    Some(datagram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketSpec;

    fn original_datagram() -> Vec<u8> {
        let pkt = PacketSpec::udp()
            .src("10.1.1.1:5555")
            .unwrap()
            .dst("10.2.2.2:53")
            .unwrap()
            .frame_len(100)
            .build();
        pkt.data()[14..].to_vec()
    }

    #[test]
    fn message_emit_parse_round_trip() {
        let msg = IcmpMessage {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            rest: 0x0001_0002,
            body: b"ping payload".to_vec(),
        };
        let wire = msg.emit();
        assert_eq!(IcmpMessage::parse(&wire).unwrap(), msg);
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let mut wire = IcmpMessage {
            icmp_type: IcmpType::EchoReply,
            code: 0,
            rest: 0,
            body: vec![1, 2, 3],
        }
        .emit();
        wire[9] ^= 0xff;
        assert!(matches!(
            IcmpMessage::parse(&wire),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn time_exceeded_targets_original_source() {
        let original = original_datagram();
        let router = Ipv4Addr::new(192, 0, 2, 254);
        let reply = time_exceeded(&original, router).unwrap();
        let hdr = Ipv4Header::parse(&reply).unwrap();
        assert_eq!(hdr.src, router);
        assert_eq!(hdr.dst, Ipv4Addr::new(10, 1, 1, 1));
        assert_eq!(hdr.proto, IpProto::Icmp);
        let msg = IcmpMessage::parse(&reply[IP_HLEN..]).unwrap();
        assert_eq!(msg.icmp_type, IcmpType::TimeExceeded);
        assert_eq!(msg.code, 0);
        // Body quotes the original header + 8 bytes = 28 bytes.
        assert_eq!(msg.body.len(), 28);
        assert_eq!(&msg.body[..20], &original[..20]);
    }

    #[test]
    fn no_error_about_icmp_errors() {
        let original = original_datagram();
        let router = Ipv4Addr::new(192, 0, 2, 254);
        // First make the original an ICMP time-exceeded itself.
        let error = time_exceeded(&original, router).unwrap();
        assert!(time_exceeded(&error, router).is_none());
        // But an echo request still gets a reply.
        let mut echo = original.clone();
        echo[9] = 1; // Protocol = ICMP.
        let echo_msg = IcmpMessage {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            rest: 0,
            body: vec![],
        }
        .emit();
        let hlen = Ipv4Header::parse_unchecked(&echo).unwrap().header_len();
        echo.truncate(hlen);
        echo.extend_from_slice(&echo_msg);
        assert!(time_exceeded(&echo, router).is_some());
    }

    #[test]
    fn short_original_is_quoted_whole() {
        let mut original = original_datagram();
        original.truncate(22); // Header + 2 payload bytes only.
        let reply = time_exceeded(&original, Ipv4Addr::new(1, 1, 1, 1)).unwrap();
        let msg = IcmpMessage::parse(&reply[IP_HLEN..]).unwrap();
        assert_eq!(msg.body.len(), 22);
    }

    #[test]
    fn type_round_trip() {
        for v in [0u8, 3, 8, 11, 42] {
            assert_eq!(IcmpType::from_u8(v).as_u8(), v);
        }
    }
}
