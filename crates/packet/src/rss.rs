//! Toeplitz receive-side-scaling (RSS) hash.
//!
//! Multi-queue NICs use the Toeplitz hash over the flow tuple to choose
//! which receive queue a packet lands in. RouteBricks' "one core per queue"
//! rule (§4.2) relies on this hardware dispatch: every core owns one RX
//! queue per port, and RSS ensures each flow consistently lands on one
//! core. This module implements the hash exactly as specified by the
//! Microsoft RSS documentation so that queue assignment in the simulator
//! matches real 82598-class NICs.

use crate::flow::FiveTuple;

/// The de-facto standard 40-byte RSS secret key (Microsoft's example key,
/// shipped as the default by most NIC drivers).
pub const DEFAULT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A Toeplitz hasher parameterised by a 40-byte secret key.
#[derive(Debug, Clone)]
pub struct ToeplitzHasher {
    key: [u8; 40],
}

impl Default for ToeplitzHasher {
    fn default() -> Self {
        ToeplitzHasher {
            key: DEFAULT_RSS_KEY,
        }
    }
}

impl ToeplitzHasher {
    /// Creates a hasher with a custom key.
    pub fn with_key(key: [u8; 40]) -> ToeplitzHasher {
        ToeplitzHasher { key }
    }

    /// Hashes an arbitrary byte string (at most 36 bytes, per the RSS spec).
    ///
    /// # Panics
    ///
    /// Panics if `input` exceeds 36 bytes; RSS inputs never do (IPv6 with
    /// ports is the 36-byte maximum) and a longer input indicates a
    /// programming error.
    pub fn hash_bytes(&self, input: &[u8]) -> u32 {
        assert!(input.len() <= 36, "RSS input exceeds the 36-byte maximum");
        let mut result = 0u32;
        // The hash XORs, for each set bit of the input, the 32-bit window of
        // the key starting at that bit position.
        let mut window = u32::from_be_bytes([self.key[0], self.key[1], self.key[2], self.key[3]]);
        for (i, &byte) in input.iter().enumerate() {
            let mut next = self.key[i + 4];
            for bit in 0..8 {
                if byte & (0x80 >> bit) != 0 {
                    result ^= window;
                }
                window = (window << 1) | u32::from(next >> 7);
                next <<= 1;
            }
        }
        result
    }

    /// Hashes an IPv4 2-tuple (addresses only), host byte order inputs.
    pub fn hash_ipv4(&self, src_ip: u32, dst_ip: u32) -> u32 {
        let mut input = [0u8; 8];
        input[0..4].copy_from_slice(&src_ip.to_be_bytes());
        input[4..8].copy_from_slice(&dst_ip.to_be_bytes());
        self.hash_bytes(&input)
    }

    /// Hashes an IPv4 4-tuple (addresses + TCP/UDP ports).
    pub fn hash_ipv4_ports(&self, src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&src_ip.to_be_bytes());
        input[4..8].copy_from_slice(&dst_ip.to_be_bytes());
        input[8..10].copy_from_slice(&src_port.to_be_bytes());
        input[10..12].copy_from_slice(&dst_port.to_be_bytes());
        self.hash_bytes(&input)
    }

    /// Hashes a [`FiveTuple`] the way an RSS-enabled NIC would: with ports
    /// for TCP/UDP, addresses only otherwise.
    pub fn hash_flow(&self, flow: &FiveTuple) -> u32 {
        match flow.proto {
            6 | 17 => self.hash_ipv4_ports(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port),
            _ => self.hash_ipv4(flow.src_ip, flow.dst_ip),
        }
    }

    /// Maps a flow to one of `n_queues` receive queues using the low bits
    /// of the hash, as the 82598 indirection table does by default.
    pub fn queue_for(&self, flow: &FiveTuple, n_queues: usize) -> usize {
        assert!(n_queues > 0, "queue count must be positive");
        (self.hash_flow(flow) as usize) % n_queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// The official verification vectors from the Microsoft RSS spec
    /// (IPv4 with TCP ports, and IPv4 address-only).
    #[test]
    fn microsoft_rss_test_vectors() {
        let h = ToeplitzHasher::default();
        let cases: [(u32, u16, u32, u16, u32, u32); 5] = [
            // (src ip, src port, dst ip, dst port, hash w/ ports, hash ip-only)
            (
                ip(66, 9, 149, 187),
                2794,
                ip(161, 142, 100, 80),
                1766,
                0x51cc_c178,
                0x323e_8fc2,
            ),
            (
                ip(199, 92, 111, 2),
                14230,
                ip(65, 69, 140, 83),
                4739,
                0xc626_b0ea,
                0xd718_262a,
            ),
            (
                ip(24, 19, 198, 95),
                12898,
                ip(12, 22, 207, 184),
                38024,
                0x5c2b_394a,
                0xd2d0_a5de,
            ),
            (
                ip(38, 27, 205, 30),
                48228,
                ip(209, 142, 163, 6),
                2217,
                0xafc7_327f,
                0x8298_9176,
            ),
            (
                ip(153, 39, 163, 191),
                44251,
                ip(202, 188, 127, 2),
                1303,
                0x10e8_28a2,
                0x5d18_09c5,
            ),
        ];
        for (src, sp, dst, dp, with_ports, ip_only) in cases {
            assert_eq!(h.hash_ipv4_ports(src, dst, sp, dp), with_ports);
            assert_eq!(h.hash_ipv4(src, dst), ip_only);
        }
    }

    #[test]
    fn hash_flow_uses_ports_only_for_tcp_udp() {
        let h = ToeplitzHasher::default();
        let mut flow = FiveTuple {
            src_ip: ip(66, 9, 149, 187),
            dst_ip: ip(161, 142, 100, 80),
            src_port: 2794,
            dst_port: 1766,
            proto: 6,
        };
        assert_eq!(h.hash_flow(&flow), 0x51cc_c178);
        flow.proto = 50; // ESP: ports ignored.
        assert_eq!(h.hash_flow(&flow), 0x323e_8fc2);
    }

    #[test]
    fn queue_assignment_is_stable_and_in_range() {
        let h = ToeplitzHasher::default();
        let flow = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 17,
        };
        let q = h.queue_for(&flow, 8);
        assert!(q < 8);
        assert_eq!(q, h.queue_for(&flow, 8));
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        let h = ToeplitzHasher::default();
        assert_eq!(h.hash_bytes(&[0u8; 12]), 0);
    }

    #[test]
    #[should_panic(expected = "36-byte maximum")]
    fn oversized_input_panics() {
        ToeplitzHasher::default().hash_bytes(&[0u8; 37]);
    }
}
