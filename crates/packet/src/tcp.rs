//! TCP header parsing and construction.
//!
//! The RouteBricks reordering evaluation (§6.2) replays TCP flows through
//! the cluster and counts out-of-order sequences per flow; this module
//! provides enough of TCP (ports, sequence numbers, flags) to generate and
//! check those flows. Full connection-state machinery is out of scope.

use crate::{PacketError, Result};

/// Minimum TCP header length in bytes (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: u8 = 0x01;
    /// SYN flag.
    pub const SYN: u8 = 0x02;
    /// RST flag.
    pub const RST: u8 = 0x04;
    /// PSH flag.
    pub const PSH: u8 = 0x08;
    /// ACK flag.
    pub const ACK: u8 = 0x10;

    /// Returns `true` when `bit` is set.
    pub fn has(self, bit: u8) -> bool {
        self.0 & bit != 0
    }
}

/// A parsed TCP header (options preserved as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as stored.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes.
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// Creates a data-segment header with defaults (ACK set, 64 KiB window).
    pub fn new(src_port: u16, dst_port: u16, seq: u32) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags(TcpFlags::ACK),
            window: 0xffff,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Returns the header length in bytes including options.
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// Parses the header at the start of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] or [`PacketError::BadField`] for
    /// short buffers or an impossible data-offset field.
    pub fn parse(data: &[u8]) -> Result<TcpHeader> {
        if data.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let data_off = usize::from(data[12] >> 4) * 4;
        if !(MIN_HEADER_LEN..=60).contains(&data_off) {
            return Err(PacketError::BadField("TCP data offset"));
        }
        if data.len() < data_off {
            return Err(PacketError::Truncated {
                needed: data_off,
                available: data.len(),
            });
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            checksum: u16::from_be_bytes([data[16], data[17]]),
            urgent: u16::from_be_bytes([data[18], data[19]]),
            options: data[MIN_HEADER_LEN..data_off].to_vec(),
        })
    }

    /// Writes the header into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `out` is too short.
    pub fn emit(&self, out: &mut [u8]) -> Result<()> {
        let len = self.header_len();
        if out.len() < len {
            return Err(PacketError::Truncated {
                needed: len,
                available: out.len(),
            });
        }
        debug_assert!(
            len.is_multiple_of(4) && len <= 60,
            "options must pad to 32 bits"
        );
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = ((len / 4) as u8) << 4;
        out[13] = self.flags.0;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        out[MIN_HEADER_LEN..len].copy_from_slice(&self.options);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let mut hdr = TcpHeader::new(80, 50000, 0xdeadbeef);
        hdr.ack = 42;
        hdr.flags = TcpFlags(TcpFlags::SYN | TcpFlags::ACK);
        let mut buf = vec![0u8; hdr.header_len()];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(TcpHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn options_round_trip() {
        let mut hdr = TcpHeader::new(1, 2, 3);
        hdr.options = vec![2, 4, 5, 0xb4]; // MSS option.
        let mut buf = vec![0u8; hdr.header_len()];
        hdr.emit(&mut buf).unwrap();
        let parsed = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.options, hdr.options);
    }

    #[test]
    fn flags_predicates() {
        let f = TcpFlags(TcpFlags::SYN | TcpFlags::ACK);
        assert!(f.has(TcpFlags::SYN));
        assert!(f.has(TcpFlags::ACK));
        assert!(!f.has(TcpFlags::FIN));
    }

    #[test]
    fn parse_rejects_bad_offset() {
        let mut buf = vec![0u8; MIN_HEADER_LEN];
        TcpHeader::new(1, 2, 3).emit(&mut buf).unwrap();
        buf[12] = 0x40; // Offset 4 words = 16 bytes < minimum.
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn parse_truncated_fails() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
    }
}
