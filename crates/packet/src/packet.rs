//! The [`Packet`] type: a buffer plus dataplane annotations.
//!
//! Click attaches "annotations" to packets as they move through the element
//! graph; RouteBricks adds cluster-level ones (VLB phase, destination node).
//! Annotations live beside the buffer, never inside the wire bytes, except
//! for the destination-MAC encoding which is applied explicitly by the
//! cluster dataplane.

use crate::buf::PacketBuf;

/// Which VLB routing phase a packet is currently in (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VlbPhase {
    /// Not yet routed (just received on an external port).
    #[default]
    Ingress,
    /// Phase 1: input node → randomly chosen intermediate node.
    LoadBalance,
    /// Phase 2: intermediate node → output node.
    ToOutput,
    /// Direct routing (Direct VLB shortcut, input node → output node).
    Direct,
    /// At the output node, ready for the external line.
    Egress,
}

/// Per-packet metadata carried alongside the buffer.
#[derive(Debug, Clone, Default)]
pub struct PacketMeta {
    /// External or internal port the packet arrived on.
    pub input_port: u16,
    /// NIC receive queue the packet was delivered to.
    pub input_queue: u16,
    /// Arrival timestamp in simulated/real nanoseconds.
    pub rx_ns: u64,
    /// Click-style paint annotation (free-form small tag).
    pub paint: u8,
    /// Cached RSS hash, if the NIC computed one.
    pub rss_hash: Option<u32>,
    /// Current VLB phase.
    pub vlb_phase: VlbPhase,
    /// Cluster node the packet must exit from, once routed.
    pub output_node: Option<u16>,
    /// External router port the packet must exit on, once routed.
    pub output_port: Option<u16>,
    /// Monotone sequence number assigned at ingress (for reordering
    /// measurement; not on the wire).
    pub ingress_seq: u64,
    /// Path-trace sample ID; 0 = untraced. Stamped at the source for
    /// every `1/N`-th packet when tracing is on, then matched against
    /// span records at each dispatch and hop (see `rb_telemetry::trace`).
    pub trace_id: u64,
}

/// A packet: wire bytes plus dataplane annotations.
#[derive(Debug, Clone)]
pub struct Packet {
    buf: PacketBuf,
    /// Annotations; public because elements mutate them freely.
    pub meta: PacketMeta,
}

impl Packet {
    /// Wraps a buffer with default (zeroed) annotations.
    pub fn new(buf: PacketBuf) -> Packet {
        Packet {
            buf,
            meta: PacketMeta::default(),
        }
    }

    /// Creates a packet from raw frame bytes.
    pub fn from_slice(frame: &[u8]) -> Packet {
        Packet::new(PacketBuf::from_slice(frame))
    }

    /// Creates a pool-backed packet from raw frame bytes, or `None` when
    /// the pool is exhausted (the exhaustion is recorded in the pool's
    /// stats so the caller can count the drop).
    pub fn try_from_slice_in(pool: &crate::pool::PacketPool, frame: &[u8]) -> Option<Packet> {
        PacketBuf::try_from_slice_in(pool, frame).map(Packet::new)
    }

    /// Returns `true` when the packet's buffer borrows an arena slot.
    #[inline]
    pub fn is_pooled(&self) -> bool {
        self.buf.is_pooled()
    }

    /// Returns the wire bytes.
    #[inline]
    pub fn data(&self) -> &[u8] {
        self.buf.data()
    }

    /// Returns the wire bytes mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.buf.data_mut()
    }

    /// Returns the frame length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` for an empty buffer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Returns a reference to the underlying buffer.
    #[inline]
    pub fn buf(&self) -> &PacketBuf {
        &self.buf
    }

    /// Returns the underlying buffer mutably (for push/pull operations).
    #[inline]
    pub fn buf_mut(&mut self) -> &mut PacketBuf {
        &mut self.buf
    }

    /// Consumes the packet and returns the buffer.
    pub fn into_buf(self) -> PacketBuf {
        self.buf
    }

    /// Consumes the packet, chaining its pooled buffer (if any) onto
    /// `batch` for a bulk free-list splice. See
    /// [`PacketBuf::recycle_into`].
    pub fn recycle_into(self, batch: &mut crate::pool::FreeBatch) {
        self.buf.recycle_into(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_has_default_meta() {
        let p = Packet::from_slice(&[1, 2, 3]);
        assert_eq!(p.meta.input_port, 0);
        assert_eq!(p.meta.vlb_phase, VlbPhase::Ingress);
        assert!(p.meta.output_node.is_none());
    }

    #[test]
    fn data_accessors_see_buffer() {
        let mut p = Packet::from_slice(&[1, 2, 3]);
        p.data_mut()[0] = 9;
        assert_eq!(p.data(), &[9, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn meta_is_mutable_and_cloned() {
        let mut p = Packet::from_slice(&[0]);
        p.meta.paint = 7;
        p.meta.output_node = Some(3);
        let q = p.clone();
        assert_eq!(q.meta.paint, 7);
        assert_eq!(q.meta.output_node, Some(3));
    }

    #[test]
    fn buf_mut_supports_encapsulation() {
        let mut p = Packet::from_slice(b"inner");
        p.buf_mut().push(3).unwrap().copy_from_slice(b"out");
        assert_eq!(p.data(), b"outinner");
    }
}
