//! Ethernet MAC addresses.
//!
//! RouteBricks overloads the destination MAC: when a packet enters the
//! cluster, the input node encodes the identity of the *output node* in the
//! destination MAC so that intermediate nodes can switch the packet from a
//! receive queue to a transmit queue without a CPU ever re-reading the IP
//! header (§6.1 of the paper). [`MacAddr::for_cluster_node`] and
//! [`MacAddr::cluster_node`] implement that encoding.

use crate::{PacketError, Result};

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

/// Locally-administered OUI prefix RouteBricks uses for intra-cluster
/// addressing (bit 1 of the first octet set = locally administered).
const CLUSTER_OUI: [u8; 3] = [0x02, 0x52, 0x42]; // "RB"

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder on synthesized frames.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Returns the locally-administered address that encodes cluster node
    /// `node` and external router port `port`.
    ///
    /// The paper's RB4 prototype steers packets into per-destination receive
    /// queues by destination MAC; this is the address family it uses.
    pub fn for_cluster_node(node: u16, port: u8) -> MacAddr {
        let n = node.to_be_bytes();
        MacAddr([
            CLUSTER_OUI[0],
            CLUSTER_OUI[1],
            CLUSTER_OUI[2],
            n[0],
            n[1],
            port,
        ])
    }

    /// Decodes a cluster address produced by [`MacAddr::for_cluster_node`].
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::BadField`] when the address is not in the
    /// RouteBricks locally-administered range.
    pub fn cluster_node(&self) -> Result<(u16, u8)> {
        if self.0[..3] != CLUSTER_OUI {
            return Err(PacketError::BadField("MAC is not a cluster address"));
        }
        Ok((u16::from_be_bytes([self.0[3], self.0[4]]), self.0[5]))
    }

    /// Returns `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns `true` for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns `true` for locally-administered addresses.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Reads an address from the first six bytes of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when fewer than six bytes are
    /// available.
    pub fn from_bytes(bytes: &[u8]) -> Result<MacAddr> {
        if bytes.len() < 6 {
            return Err(PacketError::Truncated {
                needed: 6,
                available: bytes.len(),
            });
        }
        let mut a = [0u8; 6];
        a.copy_from_slice(&bytes[..6]);
        Ok(MacAddr(a))
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl core::fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Display::fmt(self, f)
    }
}

impl core::str::FromStr for MacAddr {
    type Err = PacketError;

    /// Parses the canonical `aa:bb:cc:dd:ee:ff` form.
    fn from_str(s: &str) -> Result<MacAddr> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for byte in out.iter_mut() {
            let part = parts.next().ok_or(PacketError::BadField("MAC too short"))?;
            *byte =
                u8::from_str_radix(part, 16).map_err(|_| PacketError::BadField("MAC hex digit"))?;
        }
        if parts.next().is_some() {
            return Err(PacketError::BadField("MAC too long"));
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        let mac: MacAddr = "02:52:42:00:07:03".parse().unwrap();
        assert_eq!(mac.to_string(), "02:52:42:00:07:03");
    }

    #[test]
    fn cluster_encoding_round_trips() {
        for node in [0u16, 1, 63, 2047] {
            for port in [0u8, 1, 255] {
                let mac = MacAddr::for_cluster_node(node, port);
                assert_eq!(mac.cluster_node().unwrap(), (node, port));
                assert!(mac.is_local());
                assert!(!mac.is_multicast());
            }
        }
    }

    #[test]
    fn non_cluster_address_is_rejected() {
        let mac: MacAddr = "00:11:22:33:44:55".parse().unwrap();
        assert!(mac.cluster_node().is_err());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }

    #[test]
    fn from_bytes_requires_six() {
        assert!(MacAddr::from_bytes(&[1, 2, 3]).is_err());
        assert_eq!(
            MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6, 7]).unwrap(),
            MacAddr([1, 2, 3, 4, 5, 6])
        );
    }

    #[test]
    fn bad_strings_are_rejected() {
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:zz".parse::<MacAddr>().is_err());
    }
}
