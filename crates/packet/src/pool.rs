//! Pooled packet-buffer arena.
//!
//! [`PacketPool`] is a slab of fixed-size buffer slots with a lock-free
//! free-list, mirroring the DMA descriptor rings RouteBricks leans on:
//! the NIC (here, a source element) grabs a slot, the dataplane moves a
//! lightweight handle (slot index + pool ref) from element to element and
//! across SPSC rings, and dropping the last handle recycles the slot
//! instead of freeing it. This removes the per-packet `Vec` allocation
//! and the memmove that `Packet::from_slice` otherwise pays on every
//! ingress packet.
//!
//! Ownership is per-worker by construction: each ingress element owns its
//! own pool (and `Element::replicate` hands every core a fresh one), so
//! the allocation path is uncontended. The only cross-core traffic is the
//! recycle push when an egress core drops a handle, which is a single CAS
//! on the free-list head — the same discipline as the paper's lock-free
//! descriptor rings.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::buf::{DEFAULT_HEADROOM, DEFAULT_TAILROOM};

/// Default slot size: room for a full 1518-byte Ethernet frame plus the
/// default headroom and tailroom, rounded up to a power of two.
pub const DEFAULT_SLOT_SIZE: usize = 2048;

/// Default number of slots in a pool when the caller gives no size.
///
/// Large enough that a drop-tail [`Queue`](../../rb_click/elements/queue)
/// at its default capacity (1000) plus in-flight batches never exhaust
/// the pool in steady state.
pub const DEFAULT_POOL_SLOTS: usize = 4096;

/// Sentinel index terminating the free-list.
const NIL: u32 = u32::MAX;

/// Upper bound on a pool handle's local allocation cache. Sized like the
/// caches of production packet frameworks (and glibc's tcache): big enough
/// to amortize the free-list CAS across a burst, small enough that slots
/// parked in one handle's cache cannot starve the arena's other handles.
const CACHE_CAP: usize = 64;

/// Snapshot of a pool's counters, surfaced through `RunStats`/`MtReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Identity of the arena this snapshot was taken from (the shared
    /// allocation's address), or 0 for an aggregate of several arenas.
    /// Consumers that may see the same arena through multiple handles
    /// (e.g. replicated elements sharing a pool) dedupe on this.
    pub arena: u64,
    /// Total slots in the arena.
    pub slots: usize,
    /// Bytes per slot.
    pub slot_size: usize,
    /// Successful slot allocations.
    pub allocs: u64,
    /// Slots returned to the free-list.
    pub recycles: u64,
    /// Slots returned through a [`FreeBatch`] chain splice — a subset of
    /// `recycles` that paid one CAS per batch instead of one per slot.
    pub bulk_recycles: u64,
    /// Allocation attempts that found the free-list empty.
    pub exhausted: u64,
    /// Buffers deflected to heap storage (frame larger than a slot, or an
    /// infallible constructor hit an exhausted pool).
    pub heap_fallbacks: u64,
    /// Slots currently handed out.
    pub in_use: usize,
    /// High-water mark of `in_use`.
    pub peak_in_use: usize,
}

impl PoolStats {
    /// Accumulates another pool's counters into this snapshot (slot
    /// geometry keeps the first non-zero values; peaks are summed because
    /// the pools are assumed to be disjoint arenas — dedupe shared arenas
    /// with [`PoolStats::merge_max`] first). The aggregate loses arena
    /// identity (`arena = 0`).
    pub fn absorb(&mut self, other: &PoolStats) {
        if self.slots == 0 {
            self.slot_size = other.slot_size;
        }
        self.arena = 0;
        self.slots += other.slots;
        self.allocs += other.allocs;
        self.recycles += other.recycles;
        self.bulk_recycles += other.bulk_recycles;
        self.exhausted += other.exhausted;
        self.heap_fallbacks += other.heap_fallbacks;
        self.in_use += other.in_use;
        self.peak_in_use += other.peak_in_use;
    }

    /// Reconciles two snapshots of the *same* arena by keeping the
    /// field-wise maximum: each handle's snapshot can lag the others
    /// (local caches flush lazily), so the larger value is the fresher
    /// observation of each monotone counter.
    pub fn merge_max(&mut self, other: &PoolStats) {
        debug_assert_eq!(self.arena, other.arena, "merge_max needs one arena");
        self.allocs = self.allocs.max(other.allocs);
        self.recycles = self.recycles.max(other.recycles);
        self.bulk_recycles = self.bulk_recycles.max(other.bulk_recycles);
        self.exhausted = self.exhausted.max(other.exhausted);
        self.heap_fallbacks = self.heap_fallbacks.max(other.heap_fallbacks);
        self.in_use = self.in_use.max(other.in_use);
        self.peak_in_use = self.peak_in_use.max(other.peak_in_use);
    }

    /// Folds a collection of per-handle snapshots into one aggregate:
    /// snapshots of the same arena are deduplicated (field-wise max),
    /// then the distinct arenas are summed. This is the safe way to total
    /// pool counters when elements may share arenas (replicas handed the
    /// same pool, or an explicit `attach_pools` fan-out).
    pub fn aggregate<'a>(snapshots: impl IntoIterator<Item = &'a PoolStats>) -> PoolStats {
        let mut arenas: Vec<PoolStats> = Vec::new();
        for snap in snapshots {
            match arenas
                .iter_mut()
                .find(|s| s.arena != 0 && s.arena == snap.arena)
            {
                Some(existing) => existing.merge_max(snap),
                None => arenas.push(*snap),
            }
        }
        let mut total = PoolStats::default();
        for arena in &arenas {
            total.absorb(arena);
        }
        total
    }
}

/// The shared arena: one contiguous slab plus a Treiber-stack free-list.
///
/// The free-list head packs a 32-bit ABA tag with the 32-bit slot index so
/// that concurrent pop/push (an egress core recycling while the ingress
/// core allocates) cannot resurrect a stale head.
struct PoolInner {
    storage: Box<[UnsafeCell<u8>]>,
    slot_size: usize,
    slots: usize,
    /// Free-list head: `(tag << 32) | index`, `NIL` when empty. The tag is
    /// bumped by every push and left alone by takes, so besides defeating
    /// ABA it counts cumulative pushes mod 2^32 — recycles ride the CAS
    /// the free path already pays, costing zero extra RMW per packet.
    free_head: AtomicU64,
    /// Per-slot next pointer for the free-list.
    next: Box<[AtomicU32]>,
    allocs: AtomicU64,
    /// 64-bit extension of the push tag: `observe_pushes` folds tag deltas
    /// in here. Reclaim observes at least once per `CACHE_CAP` allocations,
    /// so a tag wrap between observations is impossible in practice.
    pushes_committed: AtomicU64,
    /// Tag value as of the last `observe_pushes`.
    last_push_tag: AtomicU32,
    /// Pushes that returned never-allocated indices from a dropped
    /// handle's cache — list maintenance, not recycles.
    cache_returns: AtomicU64,
    /// Slots returned through `push_free_chain` (bulk splices).
    bulk_recycled: AtomicU64,
    exhausted: AtomicU64,
    heap_fallbacks: AtomicU64,
    /// High-water mark of live slots. Maintained with a plain
    /// load/compare/store (not `fetch_max`) so the allocation path carries
    /// no read-modify-write op for it; under concurrent cross-core
    /// recycling the mark may overshoot by the number of in-flight
    /// recycles, which is fine for a statistic.
    peak_in_use: AtomicUsize,
}

// SAFETY: the slab is only ever accessed through `PoolSlot`s, and the
// free-list guarantees each live slot index is handed out to exactly one
// `PoolSlot` at a time; distinct slots cover disjoint byte ranges, so no
// two threads alias the same bytes mutably.
unsafe impl Sync for PoolInner {}
unsafe impl Send for PoolInner {}

impl PoolInner {
    /// Detaches up to `max` slots from the free-list with one CAS,
    /// appending their indices to `out`. Bulk reclaim amortizes the pop
    /// CAS across every taken slot, which is what keeps the per-allocation
    /// fast path free of atomic read-modify-write instructions.
    ///
    /// The chain is walked optimistically while other threads may mutate
    /// the list; the final CAS revalidates the packed ABA tag (bumped by
    /// every push and take), so a stale walk only ever costs a retry —
    /// stale `next` reads are still in-bounds indices, never garbage.
    fn take_free(&self, max: usize, out: &mut Vec<u32>) {
        let start = out.len();
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            out.truncate(start);
            let mut index = (head & u64::from(u32::MAX)) as u32;
            if index == NIL {
                return;
            }
            while index != NIL && out.len() - start < max {
                out.push(index);
                index = self.next[index as usize].load(Ordering::Relaxed);
            }
            // Keep the tag: only pushes bump it. A head index can only
            // recur via a push (takes strictly remove), so any ABA hazard
            // still flips the tag and fails this compare.
            let replacement = (head & !u64::from(u32::MAX)) | u64::from(index);
            match self.free_head.compare_exchange_weak(
                head,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => head = observed,
            }
        }
    }

    fn push_free(&self, index: u32) {
        let mut head = self.free_head.load(Ordering::Relaxed);
        loop {
            self.next[index as usize].store((head & u64::from(u32::MAX)) as u32, Ordering::Relaxed);
            let tag = (head >> 32).wrapping_add(1);
            let replacement = (tag << 32) | u64::from(index);
            match self.free_head.compare_exchange_weak(
                head,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => head = observed,
            }
        }
    }

    /// Splices a pre-linked chain of `count` slots (`chain_head` →
    /// `…` → `chain_tail`, linked through `next` by the caller, who owns
    /// every slot in it) onto the free-list with **one** CAS. The tag
    /// advances by `count` so the tag-as-push-counter arithmetic in
    /// `observe_pushes` stays exact — a chain of N slots is N pushes that
    /// shared a single read-modify-write.
    fn push_free_chain(&self, chain_head: u32, chain_tail: u32, count: u32) {
        debug_assert!(count > 0);
        let mut head = self.free_head.load(Ordering::Relaxed);
        loop {
            self.next[chain_tail as usize]
                .store((head & u64::from(u32::MAX)) as u32, Ordering::Relaxed);
            let tag = ((head >> 32) as u32).wrapping_add(count);
            let replacement = (u64::from(tag) << 32) | u64::from(chain_head);
            match self.free_head.compare_exchange_weak(
                head,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => head = observed,
            }
        }
        self.bulk_recycled
            .fetch_add(u64::from(count), Ordering::Relaxed);
    }

    /// Folds the free-list tag (pushes mod 2^32) into the 64-bit committed
    /// push count and returns the total. Concurrent observers serialize on
    /// `last_push_tag`; a racing reader can transiently see the count a
    /// delta short, which quiesces as soon as pushes stop.
    fn observe_pushes(&self) -> u64 {
        loop {
            let last = self.last_push_tag.load(Ordering::Relaxed);
            let tag_now = (self.free_head.load(Ordering::Acquire) >> 32) as u32;
            let delta = tag_now.wrapping_sub(last);
            if delta == 0 {
                return self.pushes_committed.load(Ordering::Relaxed);
            }
            if self
                .last_push_tag
                .compare_exchange(last, tag_now, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return self
                    .pushes_committed
                    .fetch_add(u64::from(delta), Ordering::Relaxed)
                    + u64::from(delta);
            }
        }
    }

    /// Exact recycle count: observed pushes minus cache give-backs.
    fn recycles(&self) -> u64 {
        self.observe_pushes()
            .saturating_sub(self.cache_returns.load(Ordering::Relaxed))
    }

    /// Cheap recycle estimate for hot-path statistics: skips the tag fold,
    /// so it may lag true recycles by the unobserved window.
    fn recycles_approx(&self) -> u64 {
        self.pushes_committed
            .load(Ordering::Relaxed)
            .saturating_sub(self.cache_returns.load(Ordering::Relaxed))
    }

    fn slot_range(&self, index: u32) -> *mut u8 {
        debug_assert!((index as usize) < self.slots);
        // SAFETY: index is bounds-checked above; the resulting pointer stays
        // inside the slab allocation.
        unsafe { self.storage.as_ptr().add(index as usize * self.slot_size) as *mut u8 }
    }
}

/// Per-instance allocation state: a stash of free slot indices taken from
/// the shared free-list in bulk, plus a local allocation count flushed to
/// the shared counter on reclaim and drop. Keeping both non-atomic makes
/// the allocation fast path free of read-modify-write instructions — the
/// mempool-cache discipline of high-speed packet I/O frameworks.
#[derive(Default)]
struct LocalCache {
    free: Vec<u32>,
    allocs: u64,
}

/// A recyclable packet arena handing out fixed-size [`PoolSlot`]s.
///
/// Cloning the pool is cheap (an `Arc` bump) and shares the same arena,
/// but each clone allocates through its own cache; use one pool (or
/// clone) per worker for uncontended allocation.
pub struct PacketPool {
    inner: Arc<PoolInner>,
    local: RefCell<LocalCache>,
}

impl Clone for PacketPool {
    fn clone(&self) -> Self {
        PacketPool {
            inner: Arc::clone(&self.inner),
            local: RefCell::new(LocalCache::default()),
        }
    }
}

impl Drop for PacketPool {
    fn drop(&mut self) {
        let local = self.local.get_mut();
        if local.allocs > 0 {
            self.inner.allocs.fetch_add(local.allocs, Ordering::Relaxed);
        }
        // Hand cached (never-allocated) indices back so other clones of
        // this arena keep their full capacity. Counting them first keeps
        // the recycle arithmetic (pushes - returns) from transiently
        // overcounting for a racing observer.
        self.inner
            .cache_returns
            .fetch_add(local.free.len() as u64, Ordering::Relaxed);
        for index in local.free.drain(..) {
            self.inner.push_free(index);
        }
    }
}

impl PacketPool {
    /// Creates an arena of `slots` buffers of `slot_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is 0, exceeds `u32::MAX - 1`, or `slot_size`
    /// cannot hold the default headroom and tailroom plus one payload byte.
    pub fn new(slots: usize, slot_size: usize) -> PacketPool {
        assert!(slots > 0, "packet pool needs at least one slot");
        assert!(
            slots < u32::MAX as usize,
            "packet pool slot count must fit in a u32 index"
        );
        assert!(
            slot_size > DEFAULT_HEADROOM + DEFAULT_TAILROOM,
            "slot_size {slot_size} cannot hold headroom {DEFAULT_HEADROOM} \
             + tailroom {DEFAULT_TAILROOM} + payload"
        );
        let storage = (0..slots * slot_size)
            .map(|_| UnsafeCell::new(0u8))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        // Chain every slot onto the free-list: i -> i+1 -> ... -> NIL.
        let next = (0..slots)
            .map(|i| AtomicU32::new(if i + 1 == slots { NIL } else { (i + 1) as u32 }))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PacketPool {
            inner: Arc::new(PoolInner {
                storage,
                slot_size,
                slots,
                free_head: AtomicU64::new(0),
                next,
                allocs: AtomicU64::new(0),
                pushes_committed: AtomicU64::new(0),
                last_push_tag: AtomicU32::new(0),
                cache_returns: AtomicU64::new(0),
                bulk_recycled: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
                heap_fallbacks: AtomicU64::new(0),
                peak_in_use: AtomicUsize::new(0),
            }),
            local: RefCell::new(LocalCache::default()),
        }
    }

    /// Creates an arena with the default slot geometry.
    pub fn with_defaults() -> PacketPool {
        PacketPool::new(DEFAULT_POOL_SLOTS, DEFAULT_SLOT_SIZE)
    }

    /// Bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.inner.slot_size
    }

    /// Total slots in the arena.
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Slots currently handed out (allocations minus recycles; transient
    /// overcounts are possible while a cross-core recycle is mid-flight).
    pub fn in_use(&self) -> usize {
        let allocs = self.inner.allocs.load(Ordering::Relaxed) + self.local.borrow().allocs;
        allocs.saturating_sub(self.inner.recycles()) as usize
    }

    /// Pops a slot off this instance's cache (refilling it from the shared
    /// free-list in bulk when empty), or records an exhaustion event.
    pub fn try_slot(&self) -> Option<PoolSlot> {
        let mut local = self.local.borrow_mut();
        let index = match local.free.pop() {
            Some(index) => index,
            None => {
                self.reclaim(&mut local);
                match local.free.pop() {
                    Some(index) => index,
                    None => {
                        self.inner.exhausted.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
        };
        local.allocs += 1;
        let allocs = self.inner.allocs.load(Ordering::Relaxed) + local.allocs;
        let live = allocs.saturating_sub(self.inner.recycles_approx()) as usize;
        if live > self.inner.peak_in_use.load(Ordering::Relaxed) {
            self.inner.peak_in_use.store(live, Ordering::Relaxed);
        }
        Some(PoolSlot {
            inner: Arc::clone(&self.inner),
            index,
        })
    }

    /// Refills the local cache: flushes the local allocation count (so
    /// other clones' snapshots stay fresh) and takes a bounded batch of
    /// slots off the shared free-list in one CAS. The bound keeps half the
    /// arena (at least) visible to other handles of the same pool — a
    /// transient clone (e.g. `Packet::clone`) must still find free slots.
    fn reclaim(&self, local: &mut LocalCache) {
        if local.allocs > 0 {
            self.inner.allocs.fetch_add(local.allocs, Ordering::Relaxed);
            local.allocs = 0;
        }
        // Observing here keeps the peak statistic fresh and bounds the
        // unobserved tag window to well under one wrap.
        self.inner.observe_pushes();
        let cap = CACHE_CAP.min(self.inner.slots / 2).max(1);
        self.inner.take_free(cap, &mut local.free);
    }

    /// Records a buffer deflected to heap storage (slot overflow or an
    /// infallible constructor hitting an empty free-list).
    pub(crate) fn note_heap_fallback(&self) {
        self.inner.heap_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the pool counters. Allocations made through other live
    /// clones of this pool may lag until their caches refill or drop.
    pub fn stats(&self) -> PoolStats {
        let allocs = self.inner.allocs.load(Ordering::Relaxed) + self.local.borrow().allocs;
        let recycles = self.inner.recycles();
        PoolStats {
            arena: Arc::as_ptr(&self.inner) as u64,
            slots: self.inner.slots,
            slot_size: self.inner.slot_size,
            allocs,
            recycles,
            bulk_recycles: self.inner.bulk_recycled.load(Ordering::Relaxed),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
            heap_fallbacks: self.inner.heap_fallbacks.load(Ordering::Relaxed),
            in_use: allocs.saturating_sub(recycles) as usize,
            peak_in_use: self.inner.peak_in_use.load(Ordering::Relaxed),
        }
    }

    /// Returns `true` when `other` shares this pool's arena.
    pub fn same_arena(&self, other: &PacketPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl core::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketPool")
            .field("slots", &self.inner.slots)
            .field("slot_size", &self.inner.slot_size)
            .field("in_use", &self.in_use())
            .finish()
    }
}

/// Exclusive ownership of one arena slot; the slot returns to the
/// free-list when the handle drops.
pub struct PoolSlot {
    inner: Arc<PoolInner>,
    index: u32,
}

impl PoolSlot {
    /// Bytes in the slot.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.slot_size
    }

    /// Returns `true` when the slot holds zero bytes (never, by
    /// construction — pools reject a zero slot size).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot's bytes. Contents are whatever the previous occupant left
    /// behind — callers must overwrite before exposing them.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: this PoolSlot exclusively owns slot `index`; the range is
        // disjoint from every other live slot.
        unsafe { std::slice::from_raw_parts(self.inner.slot_range(self.index), self.len()) }
    }

    /// The slot's bytes, mutably.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        let len = self.len();
        // SAFETY: exclusive ownership as above, plus `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.inner.slot_range(self.index), len) }
    }

    /// The pool this slot came from (a fresh handle with an empty cache).
    pub fn pool(&self) -> PacketPool {
        PacketPool {
            inner: Arc::clone(&self.inner),
            local: RefCell::new(LocalCache::default()),
        }
    }
}

impl Drop for PoolSlot {
    fn drop(&mut self) {
        // The push CAS bumps the free-list tag, which *is* the recycle
        // counter — the whole free path is this CAS plus the Arc release.
        self.inner.push_free(self.index);
    }
}

/// Collects [`PoolSlot`]s into a pre-linked chain and splices the whole
/// chain back onto its arena's free-list with **one** CAS, instead of the
/// one-CAS-per-slot that dropping each slot individually costs. This is
/// the transmit-side analogue of the allocator's bulk `take_free`: a
/// drain element freeing a `kp`-packet batch pays one atomic
/// read-modify-write for the batch.
///
/// Slots from different arenas can be pushed freely — a foreign slot
/// flushes the current chain and starts a new one. Dropping the batch
/// flushes whatever remains.
#[derive(Default)]
pub struct FreeBatch {
    arena: Option<Arc<PoolInner>>,
    head: u32,
    tail: u32,
    count: u32,
}

impl FreeBatch {
    /// Creates an empty batch.
    pub fn new() -> FreeBatch {
        FreeBatch::default()
    }

    /// Slots currently chained and awaiting the splice.
    pub fn pending(&self) -> usize {
        self.count as usize
    }

    /// Adds a slot to the chain (flushing first when the slot belongs to
    /// a different arena than the chain under construction).
    pub fn push(&mut self, slot: PoolSlot) {
        // Disassemble without running Drop (which would push the slot
        // individually — the very CAS this type exists to amortize).
        let slot = std::mem::ManuallyDrop::new(slot);
        // SAFETY: `slot` is ManuallyDrop, so the Arc read here is the only
        // owner transfer; the original is never dropped.
        let inner = unsafe { std::ptr::read(&slot.inner) };
        let index = slot.index;
        match &self.arena {
            Some(arena) if Arc::ptr_eq(arena, &inner) => {
                // Extend the chain: new slot becomes the head.
                inner.next[index as usize].store(self.head, Ordering::Relaxed);
                self.head = index;
                self.count += 1;
                // `inner` drops here; `self.arena` already keeps one ref.
            }
            Some(_) => {
                self.flush();
                self.start(inner, index);
            }
            None => self.start(inner, index),
        }
    }

    fn start(&mut self, inner: Arc<PoolInner>, index: u32) {
        self.arena = Some(inner);
        self.head = index;
        self.tail = index;
        self.count = 1;
    }

    /// Splices the pending chain onto its arena's free-list (one CAS) and
    /// resets the batch. No-op when empty.
    pub fn flush(&mut self) {
        if let Some(arena) = self.arena.take() {
            if self.count > 0 {
                arena.push_free_chain(self.head, self.tail, self.count);
            }
            self.count = 0;
        }
    }
}

impl Drop for FreeBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

impl core::fmt::Debug for FreeBatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FreeBatch")
            .field("pending", &self.count)
            .finish()
    }
}

impl core::fmt::Debug for PoolSlot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PoolSlot")
            .field("index", &self.index)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_recycle_on_drop() {
        let pool = PacketPool::new(2, 256);
        let a = pool.try_slot().expect("slot 0");
        let b = pool.try_slot().expect("slot 1");
        assert!(pool.try_slot().is_none());
        assert_eq!(pool.stats().exhausted, 1);
        assert_eq!(pool.in_use(), 2);
        drop(a);
        let c = pool.try_slot().expect("recycled slot");
        drop(b);
        drop(c);
        let s = pool.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.recycles, 3);
        assert_eq!(s.in_use, 0);
        assert_eq!(s.peak_in_use, 2);
    }

    #[test]
    fn slot_bytes_are_writable_and_isolated() {
        let pool = PacketPool::new(2, 256);
        let mut a = pool.try_slot().unwrap();
        let mut b = pool.try_slot().unwrap();
        a.bytes_mut().fill(0xaa);
        b.bytes_mut().fill(0xbb);
        assert!(a.bytes().iter().all(|&x| x == 0xaa));
        assert!(b.bytes().iter().all(|&x| x == 0xbb));
    }

    #[test]
    fn cross_thread_recycle_feeds_allocator() {
        let pool = PacketPool::new(64, 256);
        let (tx, rx) = std::sync::mpsc::channel::<PoolSlot>();
        let consumer = std::thread::spawn(move || {
            // Drop every slot on another thread (egress-side recycle).
            for slot in rx {
                drop(slot);
            }
        });
        // Allocate far more slots than the pool holds; progress requires the
        // consumer's recycles to land back on the free-list.
        let mut granted = 0u32;
        let mut spins = 0u64;
        while granted < 10_000 {
            match pool.try_slot() {
                Some(slot) => {
                    granted += 1;
                    tx.send(slot).unwrap();
                }
                None => {
                    spins += 1;
                    assert!(spins < 500_000_000, "free-list never refilled");
                    std::thread::yield_now();
                }
            }
        }
        drop(tx);
        consumer.join().unwrap();
        let s = pool.stats();
        assert_eq!(s.allocs, 10_000);
        assert_eq!(s.recycles, 10_000);
        assert_eq!(s.in_use, 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = PacketPool::new(0, 256);
    }

    #[test]
    #[should_panic(expected = "cannot hold headroom")]
    fn tiny_slot_size_rejected() {
        let _ = PacketPool::new(4, 64);
    }

    #[test]
    fn free_batch_recycles_with_one_splice() {
        let pool = PacketPool::new(8, 256);
        let mut batch = FreeBatch::new();
        for _ in 0..6 {
            batch.push(pool.try_slot().unwrap());
        }
        assert_eq!(batch.pending(), 6);
        batch.flush();
        assert_eq!(batch.pending(), 0);
        let s = pool.stats();
        assert_eq!(s.allocs, 6);
        assert_eq!(s.recycles, 6, "chain splice must count as recycles");
        assert_eq!(s.bulk_recycles, 6);
        assert_eq!(s.in_use, 0);
        // Every slot is allocatable again.
        let again: Vec<_> = (0..8).map(|_| pool.try_slot().unwrap()).collect();
        assert_eq!(again.len(), 8);
    }

    #[test]
    fn free_batch_flushes_on_drop_and_arena_switch() {
        let a = PacketPool::new(4, 256);
        let b = PacketPool::new(4, 256);
        let mut batch = FreeBatch::new();
        batch.push(a.try_slot().unwrap());
        batch.push(a.try_slot().unwrap());
        // Foreign arena: the a-chain must flush before b's chain starts.
        batch.push(b.try_slot().unwrap());
        assert_eq!(a.stats().recycles, 2);
        assert_eq!(batch.pending(), 1);
        drop(batch);
        assert_eq!(b.stats().recycles, 1);
        assert_eq!(a.stats().bulk_recycles, 2);
        assert_eq!(b.stats().bulk_recycles, 1);
    }

    #[test]
    fn bulk_and_single_recycles_interleave() {
        // The tag-as-push-counter arithmetic must stay exact when chain
        // splices and per-slot drops mix.
        let pool = PacketPool::new(16, 256);
        for round in 0..50 {
            let slots: Vec<_> = (0..10).map(|_| pool.try_slot().unwrap()).collect();
            let mut batch = FreeBatch::new();
            for (i, slot) in slots.into_iter().enumerate() {
                if i % 2 == 0 {
                    batch.push(slot);
                } else {
                    drop(slot);
                }
            }
            drop(batch);
            let s = pool.stats();
            assert_eq!(s.recycles, (round + 1) * 10);
            assert_eq!(s.in_use, 0);
        }
        assert_eq!(pool.stats().bulk_recycles, 50 * 5);
    }

    #[test]
    fn aggregate_dedupes_shared_arenas() {
        let pool = PacketPool::new(8, 256);
        let clone = pool.clone();
        let other = PacketPool::new(4, 256);
        let s = pool.try_slot().unwrap();
        drop(s);
        let _live = other.try_slot().unwrap();
        let snaps = [pool.stats(), clone.stats(), other.stats()];
        assert_eq!(snaps[0].arena, snaps[1].arena);
        assert_ne!(snaps[0].arena, snaps[2].arena);
        let total = PoolStats::aggregate(snaps.iter());
        // The shared arena is counted once, not twice.
        assert_eq!(total.slots, 12);
        assert_eq!(total.allocs, 2);
        assert_eq!(total.recycles, 1);
        assert_eq!(total.in_use, 1);
        // Naive absorb double-counts — the bug aggregate() exists to fix.
        let mut naive = PoolStats::default();
        for snap in &snaps {
            naive.absorb(snap);
        }
        assert_eq!(naive.slots, 20);
    }

    #[test]
    fn absorb_sums_counters() {
        let a = PacketPool::new(4, 256);
        let b = PacketPool::new(8, 256);
        let _s1 = a.try_slot().unwrap();
        let s2 = b.try_slot().unwrap();
        drop(s2);
        let mut agg = PoolStats::default();
        agg.absorb(&a.stats());
        agg.absorb(&b.stats());
        assert_eq!(agg.slots, 12);
        assert_eq!(agg.allocs, 2);
        assert_eq!(agg.recycles, 1);
        assert_eq!(agg.in_use, 1);
    }
}
