//! Transport-flow identification.
//!
//! RouteBricks avoids intra-flow reordering by keeping packets of the same
//! TCP/UDP flow on the same path through the cluster (the Flare-style
//! flowlet scheme of §6.1). [`FiveTuple`] is the flow key that scheme — and
//! the NIC RSS hash — operates on.

use crate::ethernet::{EtherType, EthernetHeader};
use crate::ipv4::{fast, IpProto, MIN_HEADER_LEN};
use crate::{PacketError, Result};

/// The classic transport five-tuple flow key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address (host byte order).
    pub src_ip: u32,
    /// Destination IPv4 address (host byte order).
    pub dst_ip: u32,
    /// Source transport port (zero for portless protocols).
    pub src_port: u16,
    /// Destination transport port (zero for portless protocols).
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// Extracts the flow key from a raw IPv4 datagram.
    ///
    /// Protocols without ports (e.g. ICMP, ESP) yield zero ports, so that
    /// such traffic still maps onto a stable flow key.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] on short datagrams.
    pub fn of_ipv4(datagram: &[u8]) -> Result<FiveTuple> {
        if datagram.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: datagram.len(),
            });
        }
        let ihl = usize::from(datagram[0] & 0x0f) * 4;
        let proto = datagram[9];
        let src_ip = u32::from_be_bytes([datagram[12], datagram[13], datagram[14], datagram[15]]);
        let dst_ip = fast::dst(datagram)?;
        let (src_port, dst_port) = match IpProto::from_u8(proto) {
            IpProto::Tcp | IpProto::Udp if datagram.len() >= ihl + 4 => (
                u16::from_be_bytes([datagram[ihl], datagram[ihl + 1]]),
                u16::from_be_bytes([datagram[ihl + 2], datagram[ihl + 3]]),
            ),
            _ => (0, 0),
        };
        Ok(FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        })
    }

    /// Extracts the flow key from an Ethernet frame carrying IPv4.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::WrongProtocol`] for non-IPv4 frames and
    /// [`PacketError::Truncated`] for short ones.
    pub fn of_ethernet_frame(frame: &[u8]) -> Result<FiveTuple> {
        let eth = EthernetHeader::parse(frame)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(PacketError::WrongProtocol("IPv4"));
        }
        Self::of_ipv4(EthernetHeader::payload(frame)?)
    }

    /// Returns the reverse-direction key (src/dst swapped).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Returns a direction-insensitive key: both directions of a
    /// connection map to the same value.
    pub fn canonical(&self) -> FiveTuple {
        let fwd = *self;
        let rev = self.reversed();
        if fwd <= rev {
            fwd
        } else {
            rev
        }
    }

    /// Returns a fast 64-bit mixing hash of the tuple (FNV-1a).
    ///
    /// This is *not* the NIC RSS hash — see [`crate::rss`] for Toeplitz —
    /// but a cheap software hash for flow tables.
    pub fn fnv_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        feed(&self.src_ip.to_be_bytes());
        feed(&self.dst_ip.to_be_bytes());
        feed(&self.src_port.to_be_bytes());
        feed(&self.dst_port.to_be_bytes());
        feed(&[self.proto]);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketSpec;

    #[test]
    fn extracts_udp_tuple_from_frame() {
        let pkt = PacketSpec::udp()
            .src("1.2.3.4:1111")
            .unwrap()
            .dst("5.6.7.8:2222")
            .unwrap()
            .frame_len(96)
            .build();
        let t = FiveTuple::of_ethernet_frame(pkt.data()).unwrap();
        assert_eq!(t.src_ip, u32::from_be_bytes([1, 2, 3, 4]));
        assert_eq!(t.dst_ip, u32::from_be_bytes([5, 6, 7, 8]));
        assert_eq!((t.src_port, t.dst_port), (1111, 2222));
        assert_eq!(t.proto, 17);
    }

    #[test]
    fn reversed_twice_is_identity() {
        let t = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        };
        assert_eq!(t.reversed().reversed(), t);
    }

    #[test]
    fn canonical_is_direction_insensitive() {
        let t = FiveTuple {
            src_ip: 9,
            dst_ip: 2,
            src_port: 80,
            dst_port: 40000,
            proto: 6,
        };
        assert_eq!(t.canonical(), t.reversed().canonical());
    }

    #[test]
    fn portless_protocols_get_zero_ports() {
        let pkt = PacketSpec::udp()
            .src("1.1.1.1:7")
            .unwrap()
            .dst("2.2.2.2:8")
            .unwrap()
            .frame_len(64)
            .build();
        let mut raw = pkt.into_buf().into_vec();
        raw[14 + 9] = 50; // Rewrite protocol to ESP.
        let t = FiveTuple::of_ipv4(&raw[14..]).unwrap();
        assert_eq!((t.src_port, t.dst_port), (0, 0));
        assert_eq!(t.proto, 50);
    }

    #[test]
    fn non_ip_frame_is_rejected() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP.
        assert!(matches!(
            FiveTuple::of_ethernet_frame(&frame),
            Err(PacketError::WrongProtocol("IPv4"))
        ));
    }

    #[test]
    fn fnv_hash_differs_across_tuples() {
        let a = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        };
        let mut b = a;
        b.src_port = 5;
        assert_ne!(a.fnv_hash(), b.fnv_hash());
    }
}
