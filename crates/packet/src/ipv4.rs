//! IPv4 header parsing, construction and fast-path mutation.
//!
//! The IP-routing application in the paper performs, per packet: header
//! validation (version, length, checksum), TTL decrement with incremental
//! checksum update, and a longest-prefix-match lookup on the destination.
//! [`Ipv4Header`] supports both a parsed-struct view (control path) and
//! in-place field accessors (fast path).

use crate::checksum::{checksum, update16};
use crate::{PacketError, Result};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length in bytes (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers the RouteBricks applications care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// IPsec ESP (50).
    Esp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// Returns the wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Esp => 50,
            IpProto::Other(v) => v,
        }
    }

    /// Interprets a wire value.
    pub fn from_u8(v: u8) -> IpProto {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            50 => IpProto::Esp,
            other => IpProto::Other(other),
        }
    }
}

/// A parsed IPv4 header (options preserved as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point + ECN byte.
    pub dscp_ecn: u8,
    /// Total datagram length (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), as one field.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes (empty for the common 20-byte header).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// Creates a minimal header with sensible defaults (TTL 64, no options).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload_len: usize) -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (MIN_HEADER_LEN + payload_len) as u16,
            ident: 0,
            flags_frag: 0x4000, // Don't-fragment, offset 0.
            ttl: 64,
            proto,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Returns the header length in bytes including options.
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// Parses the header at the start of `data`, verifying the checksum.
    ///
    /// # Errors
    ///
    /// * [`PacketError::Truncated`] — `data` shorter than the header.
    /// * [`PacketError::BadField`] — wrong version or bad IHL.
    /// * [`PacketError::BadChecksum`] — header checksum mismatch.
    pub fn parse(data: &[u8]) -> Result<Ipv4Header> {
        let hdr = Self::parse_unchecked(data)?;
        let ihl = hdr.header_len();
        let computed = checksum(&zeroed_checksum(&data[..ihl]));
        let stored = u16::from_be_bytes([data[10], data[11]]);
        if computed != stored {
            return Err(PacketError::BadChecksum { stored, computed });
        }
        Ok(hdr)
    }

    /// Parses the header without verifying the checksum.
    ///
    /// # Errors
    ///
    /// See [`Ipv4Header::parse`], minus the checksum error.
    pub fn parse_unchecked(data: &[u8]) -> Result<Ipv4Header> {
        if data.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadField("IPv4 version"));
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if !(MIN_HEADER_LEN..=60).contains(&ihl) {
            return Err(PacketError::BadField("IPv4 IHL"));
        }
        if data.len() < ihl {
            return Err(PacketError::Truncated {
                needed: ihl,
                available: data.len(),
            });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if usize::from(total_len) < ihl {
            return Err(PacketError::BadField("IPv4 total length"));
        }
        Ok(Ipv4Header {
            dscp_ecn: data[1],
            total_len,
            ident: u16::from_be_bytes([data[4], data[5]]),
            flags_frag: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            proto: IpProto::from_u8(data[9]),
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            options: data[MIN_HEADER_LEN..ihl].to_vec(),
        })
    }

    /// Writes the header (with a correct checksum) into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] when `out` is shorter than
    /// [`Ipv4Header::header_len`].
    pub fn emit(&self, out: &mut [u8]) -> Result<()> {
        let ihl = self.header_len();
        if out.len() < ihl {
            return Err(PacketError::Truncated {
                needed: ihl,
                available: out.len(),
            });
        }
        debug_assert!(
            ihl.is_multiple_of(4) && ihl <= 60,
            "options must pad to 32 bits"
        );
        out[0] = 0x40 | ((ihl / 4) as u8);
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.ident.to_be_bytes());
        out[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.proto.as_u8();
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        out[MIN_HEADER_LEN..ihl].copy_from_slice(&self.options);
        let ck = checksum(&out[..ihl]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }
}

/// Returns a copy of `header` with the checksum field zeroed.
fn zeroed_checksum(header: &[u8]) -> Vec<u8> {
    let mut copy = header.to_vec();
    copy[10] = 0;
    copy[11] = 0;
    copy
}

/// In-place accessors over a raw IPv4 header, for the forwarding fast path.
///
/// All methods index fixed offsets and assume the caller has already
/// validated the header once (e.g. via a `CheckIPHeader` element).
pub mod fast {
    use super::*;

    /// Reads the destination address without parsing the whole header.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] if `data` is shorter than 20 bytes.
    #[inline]
    pub fn dst(data: &[u8]) -> Result<u32> {
        if data.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        Ok(u32::from_be_bytes([data[16], data[17], data[18], data[19]]))
    }

    /// Reads the TTL field.
    #[inline]
    pub fn ttl(data: &[u8]) -> Result<u8> {
        if data.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        Ok(data[8])
    }

    /// Decrements the TTL and incrementally patches the header checksum
    /// (RFC 1624), the per-packet mutation of the paper's IP-routing app.
    ///
    /// Returns the new TTL value.
    ///
    /// # Errors
    ///
    /// * [`PacketError::Truncated`] — header too short.
    /// * [`PacketError::BadField`] — TTL already zero (packet must be
    ///   dropped or an ICMP time-exceeded generated instead).
    #[inline]
    pub fn dec_ttl(data: &mut [u8]) -> Result<u8> {
        if data.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_HEADER_LEN,
                available: data.len(),
            });
        }
        if data[8] == 0 {
            return Err(PacketError::BadField("TTL expired"));
        }
        let old_word = u16::from_be_bytes([data[8], data[9]]);
        data[8] -= 1;
        let new_word = u16::from_be_bytes([data[8], data[9]]);
        let old_sum = u16::from_be_bytes([data[10], data[11]]);
        let new_sum = update16(old_sum, old_word, new_word);
        data[10..12].copy_from_slice(&new_sum.to_be_bytes());
        Ok(data[8])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(10, 2, 3, 4),
            IpProto::Udp,
            100,
        )
    }

    #[test]
    fn emit_parse_round_trip() {
        let hdr = sample();
        let mut buf = vec![0u8; hdr.header_len()];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(Ipv4Header::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn emit_produces_valid_checksum() {
        let hdr = sample();
        let mut buf = vec![0u8; 20];
        hdr.emit(&mut buf).unwrap();
        // A valid header checksums to zero when summed with the stored value.
        assert_eq!(checksum(&buf), 0);
    }

    #[test]
    fn parse_rejects_corrupted_checksum() {
        let hdr = sample();
        let mut buf = vec![0u8; 20];
        hdr.emit(&mut buf).unwrap();
        buf[15] ^= 0xff;
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut buf = vec![0u8; 20];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x60 | (buf[0] & 0x0f);
        assert!(matches!(
            Ipv4Header::parse_unchecked(&buf),
            Err(PacketError::BadField("IPv4 version"))
        ));
    }

    #[test]
    fn parse_rejects_short_ihl() {
        let mut buf = vec![0u8; 20];
        sample().emit(&mut buf).unwrap();
        buf[0] = 0x44; // IHL = 4 words = 16 bytes < minimum.
        assert!(Ipv4Header::parse_unchecked(&buf).is_err());
    }

    #[test]
    fn options_round_trip() {
        let mut hdr = sample();
        hdr.options = vec![0x94, 0x04, 0x00, 0x00]; // Router-alert option.
        hdr.total_len += 4;
        let mut buf = vec![0u8; hdr.header_len()];
        hdr.emit(&mut buf).unwrap();
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.options, hdr.options);
        assert_eq!(parsed.header_len(), 24);
    }

    #[test]
    fn dec_ttl_keeps_checksum_valid() {
        let hdr = sample();
        let mut buf = vec![0u8; 20];
        hdr.emit(&mut buf).unwrap();
        for expected in (0..64u8).rev() {
            assert_eq!(fast::dec_ttl(&mut buf).unwrap(), expected);
            // Full parse re-verifies the incrementally updated checksum.
            let parsed = Ipv4Header::parse(&buf).unwrap();
            assert_eq!(parsed.ttl, expected);
        }
        assert!(fast::dec_ttl(&mut buf).is_err());
    }

    #[test]
    fn fast_dst_matches_parsed() {
        let hdr = sample();
        let mut buf = vec![0u8; 20];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(fast::dst(&buf).unwrap(), u32::from(hdr.dst));
    }

    #[test]
    fn proto_round_trip() {
        for v in [1u8, 6, 17, 50, 99] {
            assert_eq!(IpProto::from_u8(v).as_u8(), v);
        }
    }
}
