//! Internet checksums (RFC 1071) and incremental updates (RFC 1624).
//!
//! The RouteBricks IP-routing application recomputes the IPv4 header
//! checksum after decrementing the TTL on every packet; doing this
//! incrementally (RFC 1624 equation 3) instead of from scratch saves a full
//! header scan per packet, which matters at the paper's 18.96 Mpps rates.

/// Computes the ones-complement Internet checksum of `data`.
///
/// Returns the checksum in host byte order, ready to be stored with
/// `to_be_bytes`. A trailing odd byte is padded with zero per RFC 1071.
///
/// # Examples
///
/// ```
/// // RFC 1071 worked example.
/// let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(rb_packet::checksum::checksum(&data), !0xddf2);
/// ```
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Accumulates the 16-bit ones-complement sum of `data` onto `acc`.
///
/// Useful for checksumming vectored data (e.g. a pseudo-header followed by
/// a payload): feed each region in turn, then [`fold`] and complement.
pub fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into a 16-bit ones-complement sum.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Incrementally updates checksum `old_sum` after a 16-bit field changed
/// from `old` to `new` (RFC 1624, equation 3).
///
/// # Examples
///
/// ```
/// use rb_packet::checksum::{checksum, update16};
///
/// let mut data = [0x45u8, 0x00, 0x00, 0x54, 0xaa, 0xbb, 0x40, 0x00];
/// let before = checksum(&data);
/// let old = u16::from_be_bytes([data[4], data[5]]);
/// data[4] = 0x11;
/// data[5] = 0x22;
/// let after = update16(before, old, 0x1122);
/// assert_eq!(after, checksum(&data));
/// ```
pub fn update16(old_sum: u16, old: u16, new: u16) -> u16 {
    // HC' = ~(~HC + ~m + m') per RFC 1624 eqn. 3, computed in 32 bits.
    let acc = u32::from(!old_sum) + u32::from(!old) + u32::from(new);
    !fold(acc)
}

/// Computes the IPv4 pseudo-header sum used by TCP and UDP checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, l4_len: u16) -> u32 {
    let mut acc = 0u32;
    acc = sum_words(&src, acc);
    acc = sum_words(&dst, acc);
    acc += u32::from(proto);
    acc += u32::from(l4_len);
    acc
}

/// Computes a TCP/UDP checksum over `segment` with the IPv4 pseudo-header.
///
/// `segment` must contain the full layer-4 header and payload with the
/// checksum field zeroed (or the original value excluded by the caller).
pub fn l4_checksum(src: [u8; 4], dst: [u8; 4], proto: u8, segment: &[u8]) -> u16 {
    let acc = pseudo_header_sum(src, dst, proto, segment.len() as u16);
    !fold(sum_words(segment, acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeros_is_all_ones() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn checksum_detects_single_bit_flip() {
        let mut data = [0x12u8, 0x34, 0x56, 0x78];
        let before = checksum(&data);
        data[2] ^= 0x01;
        assert_ne!(before, checksum(&data));
    }

    #[test]
    fn checksum_verification_property() {
        // Storing the checksum in the packet makes the total sum fold to
        // 0xffff: this is how receivers verify.
        let mut data = vec![0xdeu8, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x00, 0x00];
        let ck = checksum(&data);
        data[6..8].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(fold(sum_words(&data, 0)), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn update16_matches_full_recompute() {
        let mut data = [0x45u8, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01];
        let before = checksum(&data);
        // Simulate a TTL decrement: byte 8 is TTL in a real IPv4 header.
        let old = u16::from_be_bytes([data[8], data[9]]);
        data[8] -= 1;
        let new = u16::from_be_bytes([data[8], data[9]]);
        assert_eq!(update16(before, old, new), checksum(&data));
    }

    #[test]
    fn update16_chain_of_edits() {
        let mut data = [0u8; 16];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 17) as u8;
        }
        let mut sum = checksum(&data);
        for word in 0..8 {
            let old = u16::from_be_bytes([data[2 * word], data[2 * word + 1]]);
            let new = old.wrapping_add(0x0101);
            data[2 * word..2 * word + 2].copy_from_slice(&new.to_be_bytes());
            sum = update16(sum, old, new);
        }
        assert_eq!(sum, checksum(&data));
    }

    #[test]
    fn l4_checksum_verifies_known_udp_datagram() {
        // Hand-built UDP datagram: src 10.0.0.1:1000 -> dst 10.0.0.2:2000,
        // payload "hi". Verify the stored-checksum-folds-to-ffff property.
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];
        let mut seg = vec![
            0x03, 0xe8, // src port 1000
            0x07, 0xd0, // dst port 2000
            0x00, 0x0a, // length 10
            0x00, 0x00, // checksum placeholder
            b'h', b'i',
        ];
        let ck = l4_checksum(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        let acc = pseudo_header_sum(src, dst, 17, seg.len() as u16);
        assert_eq!(fold(sum_words(&seg, acc)), 0xffff);
    }
}
