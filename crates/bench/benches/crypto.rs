//! Real-code benchmark: the IPsec data path — AES-128 block, CBC mode,
//! SHA-1/HMAC, and full ESP seal/open at the paper's packet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routebricks::crypto::aes::Aes128;
use routebricks::crypto::hmac::HmacSha1;
use routebricks::crypto::modes::cbc_encrypt;
use routebricks::crypto::sha1::Sha1;
use routebricks::crypto::{EspDecryptor, EspEncryptor, SecurityAssociation};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let aes = Aes128::new(b"benchmarkkey0000");
    c.bench_function("aes128_block", |b| {
        let mut block = [0x42u8; 16];
        b.iter(|| {
            aes.encrypt_block(black_box(&mut block));
            block[0]
        })
    });

    let mut group = c.benchmark_group("aes128_cbc");
    for size in [64usize, 256, 1024, 1504] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let mut data = vec![0xa5u8; size];
            b.iter(|| {
                cbc_encrypt(&aes, &[7u8; 16], black_box(&mut data)).expect("block aligned");
                data[0]
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sha1");
    for size in [64usize, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let data = vec![0x5au8; size];
            b.iter(|| Sha1::digest(black_box(&data)))
        });
    }
    group.finish();

    c.bench_function("hmac_sha1_96_64b", |b| {
        let h = HmacSha1::new(b"auth-key");
        let data = [0u8; 64];
        b.iter(|| h.mac96(black_box(&data)))
    });
}

fn bench_esp(c: &mut Criterion) {
    let sa = SecurityAssociation::from_seed(0xbe9c);
    let mut group = c.benchmark_group("esp_seal");
    for size in [50usize, 746, 1486] {
        // Inner IP datagram sizes for 64 B / Abilene-mean / MTU frames.
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let mut enc = EspEncryptor::new(&sa);
            let payload = vec![0x17u8; size];
            b.iter(|| enc.seal(black_box(&payload)))
        });
    }
    group.finish();

    c.bench_function("esp_seal_open_roundtrip_746", |b| {
        let payload = vec![0x17u8; 746];
        b.iter(|| {
            // Fresh state per iteration so the replay window accepts.
            let mut enc = EspEncryptor::new(&sa);
            let mut dec = EspDecryptor::new(&sa);
            let sealed = enc.seal(black_box(&payload));
            dec.open(&sealed).expect("authentic packet")
        })
    });
}

criterion_group!(benches, bench_primitives, bench_esp);
criterion_main!(benches);
