//! Real-code benchmark: whole-dataplane throughput of the three
//! applications through the Click-style element graph — our analogue of
//! Fig. 8's per-application comparison on real (not modelled) code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routebricks::builder::RouterBuilder;

const PACKETS: u64 = 10_000;

fn run(builder: RouterBuilder, size: usize) -> u64 {
    let mut router = builder
        .source_packets(size, PACKETS)
        .build()
        .expect("builder config is valid");
    router.run_until_idle(u64::MAX);
    (0..router.ports())
        .map(|p| router.transmitted(p))
        .sum::<u64>()
}

fn bench_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_apps");
    group.sample_size(20);
    for size in [64usize, 760] {
        group.throughput(Throughput::Elements(PACKETS));
        group.bench_function(BenchmarkId::new("minimal_forwarding", size), |b| {
            b.iter(|| run(RouterBuilder::minimal_forwarder(), size))
        });
        group.bench_function(BenchmarkId::new("ip_routing", size), |b| {
            b.iter(|| {
                run(
                    RouterBuilder::ip_router()
                        .route("10.0.0.0/8", 0)
                        .route("172.16.0.0/12", 1)
                        .route("0.0.0.0/0", 1),
                    size,
                )
            })
        });
        group.bench_function(BenchmarkId::new("ipsec", size), |b| {
            b.iter(|| run(RouterBuilder::ipsec_gateway(), size))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
