//! Real-code benchmark: whole-dataplane throughput of the three
//! applications through the Click-style element graph — our analogue of
//! Fig. 8's per-application comparison on real (not modelled) code.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use routebricks::builder::{BuiltRouter, RouterBuilder};

const PACKETS: u64 = 10_000;

fn run(builder: RouterBuilder, size: usize) -> u64 {
    let mut router = builder
        .source_packets(size, PACKETS)
        .build()
        .expect("builder config is valid");
    router.run_until_idle(u64::MAX);
    (0..router.ports())
        .map(|p| router.transmitted(p))
        .sum::<u64>()
}

/// Builds the router outside the timed region (`iter_batched` setup), so
/// the measurement excludes FIB construction and arena-slab zeroing.
fn build(builder: RouterBuilder, size: usize) -> BuiltRouter {
    builder
        .source_packets(size, PACKETS)
        .build()
        .expect("builder config is valid")
}

fn drain(mut router: BuiltRouter) -> u64 {
    router.run_until_idle(u64::MAX);
    (0..router.ports())
        .map(|p| router.transmitted(p))
        .sum::<u64>()
}

/// Table 1 analogue: sweep the batch size `kp` over the forwarding and
/// routing graphs. `kp` is the single batching knob: it sets the graph
/// dispatch chunk, and the devices inherit it as their poll burst, as in
/// the paper where one knob governs both; `kp = 1` is the unbatched
/// baseline the paper reports as 1.46 Gbps vs 9.77 batched. The `_arena`
/// rows run the identical graph with sources allocating from the packet
/// arena instead of the heap (zero-copy handles through the graph).
fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(20);
    group.throughput(Throughput::Elements(PACKETS));
    let forwarder = |kp: usize| RouterBuilder::minimal_forwarder().batch_size(kp);
    let ip_router = |kp: usize| {
        RouterBuilder::ip_router()
            .route("10.0.0.0/8", 0)
            .route("172.16.0.0/12", 1)
            .route("0.0.0.0/0", 1)
            .batch_size(kp)
    };
    // Slot geometry matched to the 64 B workload (frame + head/tailroom in
    // 256 B) keeps the arena's hot set cache-resident, as in bench_dataplane.
    let arena = |b: RouterBuilder| b.pool_slots(4096).slot_size(256);
    for kp in [1usize, 8, 32, 256] {
        group.bench_function(BenchmarkId::new("minimal_forwarding", kp), |b| {
            b.iter_batched(|| build(forwarder(kp), 64), drain, BatchSize::SmallInput)
        });
        group.bench_function(BenchmarkId::new("minimal_forwarding_arena", kp), |b| {
            b.iter_batched(
                || build(arena(forwarder(kp)), 64),
                drain,
                BatchSize::SmallInput,
            )
        });
        group.bench_function(BenchmarkId::new("ip_routing", kp), |b| {
            b.iter_batched(|| build(ip_router(kp), 64), drain, BatchSize::SmallInput)
        });
        group.bench_function(BenchmarkId::new("ip_routing_arena", kp), |b| {
            b.iter_batched(
                || build(arena(ip_router(kp)), 64),
                drain,
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_apps");
    group.sample_size(20);
    for size in [64usize, 760] {
        group.throughput(Throughput::Elements(PACKETS));
        group.bench_function(BenchmarkId::new("minimal_forwarding", size), |b| {
            b.iter(|| run(RouterBuilder::minimal_forwarder(), size))
        });
        group.bench_function(BenchmarkId::new("ip_routing", size), |b| {
            b.iter(|| {
                run(
                    RouterBuilder::ip_router()
                        .route("10.0.0.0/8", 0)
                        .route("172.16.0.0/12", 1)
                        .route("0.0.0.0/0", 1),
                    size,
                )
            })
        });
        group.bench_function(BenchmarkId::new("ipsec", size), |b| {
            b.iter(|| run(RouterBuilder::ipsec_gateway(), size))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataplane, bench_batch_sweep);
criterion_main!(benches);
