//! Real-code benchmark: whole-dataplane throughput of the three
//! applications through the Click-style element graph — our analogue of
//! Fig. 8's per-application comparison on real (not modelled) code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routebricks::builder::RouterBuilder;

const PACKETS: u64 = 10_000;

fn run(builder: RouterBuilder, size: usize) -> u64 {
    let mut router = builder
        .source_packets(size, PACKETS)
        .build()
        .expect("builder config is valid");
    router.run_until_idle(u64::MAX);
    (0..router.ports())
        .map(|p| router.transmitted(p))
        .sum::<u64>()
}

/// Table 1 analogue: sweep the batch size `kp` over the forwarding and
/// routing graphs. `kp` sets both the device poll burst and the graph
/// dispatch chunk, as in the paper where one knob governs both; `kp = 1`
/// is the unbatched baseline the paper reports as 1.46 Gbps vs 9.77
/// batched.
fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(20);
    group.throughput(Throughput::Elements(PACKETS));
    for kp in [1usize, 8, 32, 256] {
        group.bench_function(BenchmarkId::new("minimal_forwarding", kp), |b| {
            b.iter(|| {
                run(
                    RouterBuilder::minimal_forwarder()
                        .poll_burst(kp)
                        .batch_size(kp),
                    64,
                )
            })
        });
        group.bench_function(BenchmarkId::new("ip_routing", kp), |b| {
            b.iter(|| {
                run(
                    RouterBuilder::ip_router()
                        .route("10.0.0.0/8", 0)
                        .route("172.16.0.0/12", 1)
                        .route("0.0.0.0/0", 1)
                        .poll_burst(kp)
                        .batch_size(kp),
                    64,
                )
            })
        });
    }
    group.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_apps");
    group.sample_size(20);
    for size in [64usize, 760] {
        group.throughput(Throughput::Elements(PACKETS));
        group.bench_function(BenchmarkId::new("minimal_forwarding", size), |b| {
            b.iter(|| run(RouterBuilder::minimal_forwarder(), size))
        });
        group.bench_function(BenchmarkId::new("ip_routing", size), |b| {
            b.iter(|| {
                run(
                    RouterBuilder::ip_router()
                        .route("10.0.0.0/8", 0)
                        .route("172.16.0.0/12", 1)
                        .route("0.0.0.0/0", 1),
                    size,
                )
            })
        });
        group.bench_function(BenchmarkId::new("ipsec", size), |b| {
            b.iter(|| run(RouterBuilder::ipsec_gateway(), size))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataplane, bench_batch_sweep);
criterion_main!(benches);
