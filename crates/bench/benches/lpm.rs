//! Real-code benchmark: LPM lookup implementations on the paper's
//! 256K-entry routing table (DIR-24-8 vs binary trie vs linear scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routebricks::lookup::gen::{addresses_within, generate_table, TableGenConfig};
use routebricks::lookup::{BinaryTrie, Dir24_8, LinearTable, LpmLookup};
use std::hint::black_box;

fn bench_lpm(c: &mut Criterion) {
    let table = generate_table(&TableGenConfig::default());
    let dir = Dir24_8::compile(&table).expect("table compiles");
    let trie = BinaryTrie::compile(&table);
    let linear = LinearTable::compile(&table);
    let probes = addresses_within(&table, 4096, 0xbeef);

    let mut group = c.benchmark_group("lpm_256k");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function(BenchmarkId::new("dir24_8", "256k"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &addr in &probes {
                acc = acc.wrapping_add(u32::from(dir.lookup(black_box(addr)).unwrap_or(0)));
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("binary_trie", "256k"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &addr in &probes {
                acc = acc.wrapping_add(u32::from(trie.lookup(black_box(addr)).unwrap_or(0)));
            }
            acc
        })
    });
    // The linear scan is O(n); bench on a small probe subset so the run
    // finishes, and report per-element throughput for comparability.
    let few = &probes[..32];
    group.throughput(Throughput::Elements(few.len() as u64));
    group.bench_function(BenchmarkId::new("linear_scan", "256k"), |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &addr in few {
                acc = acc.wrapping_add(u32::from(linear.lookup(black_box(addr)).unwrap_or(0)));
            }
            acc
        })
    });
    group.finish();

    // Table-size sweep for DIR-24-8: lookup cost should stay flat.
    let mut sweep = c.benchmark_group("dir24_8_table_size");
    for routes in [1_000usize, 16_000, 256 * 1024] {
        let table = generate_table(&TableGenConfig {
            routes,
            ..TableGenConfig::default()
        });
        let fib = Dir24_8::compile(&table).expect("table compiles");
        let probes = addresses_within(&table, 1024, 7);
        sweep.throughput(Throughput::Elements(probes.len() as u64));
        sweep.bench_function(BenchmarkId::from_parameter(routes), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for &addr in &probes {
                    acc = acc.wrapping_add(u32::from(fib.lookup(black_box(addr)).unwrap_or(0)));
                }
                acc
            })
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_lpm, bench_updates);
criterion_main!(benches);

/// Route churn: incremental DIR-24-8 updates vs full recompiles — the
/// control-plane side of the paper's extensibility story.
fn bench_updates(c: &mut Criterion) {
    use routebricks::lookup::{DynamicDir24_8, Prefix, RouteTable};
    let table = generate_table(&TableGenConfig {
        routes: 64 * 1024,
        ..TableGenConfig::default()
    });
    let flaps: Vec<(Prefix, u16)> = table.iter().map(|(p, h)| (*p, *h)).take(256).collect();

    c.bench_function("dir24_8_incremental_flap", |b| {
        let mut fib = DynamicDir24_8::from_table(&table).expect("table compiles");
        let mut i = 0usize;
        b.iter(|| {
            let (prefix, hop) = flaps[i % flaps.len()];
            i += 1;
            fib.remove(&prefix);
            fib.insert(prefix, hop).expect("hop fits");
        })
    });

    c.bench_function("dir24_8_full_recompile_64k", |b| {
        let rib: RouteTable = table.iter().map(|(p, h)| (*p, *h)).collect();
        b.iter(|| Dir24_8::compile(black_box(&rib)).expect("table compiles"))
    });
}
