//! Real-thread benchmark: the Fig. 6 regimes on today's hardware —
//! parallel (one core per packet) vs pipelined (packet crosses cores) vs
//! a lock-shared queue (no multi-queue NICs).
//!
//! Absolute numbers differ from the paper's 2009 Nehalem, but the
//! *ordering* (parallel ≥ pipeline > shared-lock) is the claim under
//! test; the `threading_regimes` integration test asserts it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use routebricks::click::runtime::mt::{
    run_parallel, run_pipeline, run_shared_queue, run_spsc_rings, shard_by_flow, StageFn,
};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;

const PACKETS: usize = 20_000;
const WORKERS: usize = 4;

fn packets() -> Vec<Packet> {
    (0..PACKETS)
        .map(|i| {
            PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                        1024 + (i % 50_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(192, 168, 0, 1), 80),
                )
                .frame_len(64)
                .build()
        })
        .collect()
}

/// The per-packet work: TTL decrement + checksum patch (the routing fast
/// path minus the lookup, which needs shared state).
fn stage() -> StageFn {
    Box::new(|mut pkt: Packet| {
        routebricks::packet::ipv4::fast::dec_ttl(&mut pkt.data_mut()[14..]).ok()?;
        Some(pkt)
    })
}

fn bench_threading(c: &mut Criterion) {
    let mut group = c.benchmark_group("threading_regimes");
    group.sample_size(15);
    group.throughput(Throughput::Elements(PACKETS as u64));

    group.bench_function("parallel_per_flow_shards", |b| {
        b.iter(|| {
            let shards = shard_by_flow(packets(), WORKERS);
            run_parallel(WORKERS, shards, stage).processed
        })
    });

    group.bench_function("pipeline_4_stages", |b| {
        b.iter(|| {
            let stages: Vec<StageFn> = (0..WORKERS).map(|_| stage()).collect();
            run_pipeline(stages, packets(), 256).processed
        })
    });

    group.bench_function("shared_locked_queue", |b| {
        b.iter(|| run_shared_queue(WORKERS, packets(), stage).processed)
    });

    // The "one core per queue" fix for the shared-lock regime: one
    // bounded lock-free SPSC ring per worker, burst-drained.
    group.bench_function("spsc_rings_per_worker", |b| {
        b.iter(|| run_spsc_rings(WORKERS, packets(), stage, 256, 32).processed)
    });

    group.finish();
}

criterion_group!(benches, bench_threading);
criterion_main!(benches);
