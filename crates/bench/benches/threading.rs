//! Real-thread benchmark: the Fig. 6 regimes on today's hardware —
//! parallel (one core per packet) vs pipelined (packet crosses cores) vs
//! a lock-shared queue (no multi-queue NICs).
//!
//! Two tiers: the `threading_regimes` group runs an opaque per-packet
//! closure (pure regime overhead), and `graph_regimes` runs the REAL
//! minimal-forwarding element graph — replicated once per worker core,
//! ingress RSS-sharded, `PacketBatch`es carried over SPSC rings — under
//! parallel, pipeline and streaming-SPSC layouts.
//!
//! Absolute numbers differ from the paper's 2009 Nehalem, but the
//! *ordering* (parallel ≥ pipeline > shared-lock) is the claim under
//! test; the `threading_overheads_are_real` integration test asserts it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use routebricks::builder::RouterBuilder;
use routebricks::click::runtime::mt::{
    run_graph_parallel, run_graph_pipeline, run_graph_spsc, run_parallel, run_pipeline,
    run_shared_queue, run_spsc_rings, shard_by_flow, GraphRunOpts, StageFn,
};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;

const PACKETS: usize = 20_000;
const WORKERS: usize = 4;

/// Warn once when the host cannot give each worker its own core: the
/// regime comparison then measures overheads, not scaling.
fn warn_if_undersized() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < WORKERS {
        eprintln!(
            "WARNING: only {cores} core(s) available (< {WORKERS}); \
             threading-regime numbers measure per-packet overheads, not \
             per-core scaling."
        );
    }
}

fn packets() -> Vec<Packet> {
    (0..PACKETS)
        .map(|i| {
            PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                        1024 + (i % 50_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(192, 168, 0, 1), 80),
                )
                .frame_len(64)
                .build()
        })
        .collect()
}

/// The per-packet work: TTL decrement + checksum patch (the routing fast
/// path minus the lookup, which needs shared state).
fn stage() -> StageFn {
    Box::new(|mut pkt: Packet| {
        routebricks::packet::ipv4::fast::dec_ttl(&mut pkt.data_mut()[14..]).ok()?;
        Some(pkt)
    })
}

fn bench_threading(c: &mut Criterion) {
    warn_if_undersized();
    let mut group = c.benchmark_group("threading_regimes");
    group.sample_size(15);
    group.throughput(Throughput::Elements(PACKETS as u64));

    group.bench_function("parallel_per_flow_shards", |b| {
        b.iter(|| {
            let shards = shard_by_flow(packets(), WORKERS);
            run_parallel(WORKERS, shards, stage).processed
        })
    });

    group.bench_function("pipeline_4_stages", |b| {
        b.iter(|| {
            let stages: Vec<StageFn> = (0..WORKERS).map(|_| stage()).collect();
            run_pipeline(stages, packets(), 256).processed
        })
    });

    group.bench_function("shared_locked_queue", |b| {
        b.iter(|| run_shared_queue(WORKERS, packets(), stage).processed)
    });

    // The "one core per queue" fix for the shared-lock regime: one
    // bounded lock-free SPSC ring per worker, burst-drained.
    group.bench_function("spsc_rings_per_worker", |b| {
        b.iter(|| run_spsc_rings(WORKERS, packets(), stage, 256, 32).processed)
    });

    group.finish();
}

/// The same regimes on the real minimal-forwarding graph (FromDevice ->
/// CheckIPHeader -> Counter -> Queue -> ToDevice), replicated per core.
fn bench_graph_regimes(c: &mut Criterion) {
    warn_if_undersized();
    let mut group = c.benchmark_group("graph_regimes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PACKETS as u64));

    let graph = || {
        RouterBuilder::minimal_forwarder()
            .build_graph()
            .expect("graph builds")
    };
    let opts = GraphRunOpts::default();

    group.bench_function("parallel_replicas", |b| {
        let g = graph();
        b.iter(|| {
            run_graph_parallel(&g, WORKERS, packets(), &opts)
                .expect("graph replicates")
                .report
                .processed
        })
    });

    group.bench_function("spsc_streaming_replicas", |b| {
        let g = graph();
        b.iter(|| {
            run_graph_spsc(&g, WORKERS, packets(), &opts)
                .expect("graph replicates")
                .report
                .processed
        })
    });

    group.bench_function("pipeline_stage_chain", |b| {
        let stages: Vec<_> = (0..WORKERS).map(|_| graph()).collect();
        b.iter(|| {
            run_graph_pipeline(&stages, packets(), &opts)
                .expect("stages replicate")
                .report
                .processed
        })
    });

    group.finish();
}

criterion_group!(benches, bench_threading, bench_graph_regimes);
criterion_main!(benches);
