//! Micro-benchmarks of the per-packet fast-path operations: header
//! parsing, checksum (full and incremental), flow extraction, Toeplitz
//! RSS hashing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::checksum::{checksum, update16};
use routebricks::packet::flow::FiveTuple;
use routebricks::packet::ipv4::{fast, Ipv4Header};
use routebricks::packet::rss::ToeplitzHasher;
use std::hint::black_box;

fn bench_packet_ops(c: &mut Criterion) {
    let pkt = PacketSpec::udp().frame_len(64).build();
    let ip = &pkt.data()[14..];

    c.bench_function("ipv4_parse_checked", |b| {
        b.iter(|| Ipv4Header::parse(black_box(ip)).expect("valid header"))
    });

    c.bench_function("ipv4_dec_ttl_incremental", |b| {
        let mut frame = pkt.clone();
        b.iter(|| {
            // Reset TTL so the loop never expires it.
            frame.data_mut()[14 + 8] = 64;
            let ck = checksum(&zeroed(&frame.data()[14..34]));
            frame.data_mut()[14 + 10..14 + 12].copy_from_slice(&ck.to_be_bytes());
            fast::dec_ttl(&mut frame.data_mut()[14..]).expect("valid header")
        })
    });

    let mut group = c.benchmark_group("checksum_full");
    for size in [20usize, 64, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let data = vec![0xabu8; size];
            b.iter(|| checksum(black_box(&data)))
        });
    }
    group.finish();

    c.bench_function("checksum_incremental_update16", |b| {
        b.iter(|| update16(black_box(0x1234), black_box(0x4000), black_box(0x3f00)))
    });

    c.bench_function("five_tuple_extract", |b| {
        b.iter(|| FiveTuple::of_ethernet_frame(black_box(pkt.data())).expect("valid frame"))
    });

    let hasher = ToeplitzHasher::default();
    let flow = FiveTuple::of_ethernet_frame(pkt.data()).expect("valid frame");
    c.bench_function("toeplitz_rss_hash", |b| {
        b.iter(|| hasher.hash_flow(black_box(&flow)))
    });
}

fn zeroed(header: &[u8]) -> Vec<u8> {
    let mut v = header.to_vec();
    v[10] = 0;
    v[11] = 0;
    v
}

criterion_group!(benches, bench_packet_ops);
criterion_main!(benches);
