//! Shared infrastructure for the table/figure regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation, printing the paper's reported number next to the
//! model's output. The paper's numbers live in [`paper`] so integration
//! tests can assert the reproduction quality in one place.

pub mod paper {
    //! The numbers the paper reports, transcribed from the text.

    /// Table 1: (kp, kn, Gbps) for 64 B minimal forwarding.
    pub const TABLE1: [(u32, u32, f64); 3] = [(1, 1, 1.46), (32, 1, 4.97), (32, 16, 9.77)];

    /// Table 2 rows: (component, nominal Gbps, empirical Gbps);
    /// CPU row is in Gcycles/s.
    pub const TABLE2: [(&str, f64, f64); 5] = [
        ("CPUs (Gcycles/s)", 22.4, 22.4),
        ("Memory", 410.0, 262.0),
        ("Inter-socket link", 200.0, 144.34),
        ("I/O-socket links", 400.0, 117.0),
        ("PCIe buses (v1.1)", 64.0, 50.8),
    ];

    /// Table 3: (application, instructions/packet, cycles/instruction).
    pub const TABLE3: [(&str, f64, f64); 3] = [
        ("Minimal forwarding", 1_033.0, 1.19),
        ("IP routing", 1_512.0, 1.23),
        ("IPsec", 14_221.0, 0.55),
    ];

    /// Fig. 6 per-FP rates in Gbps: parallel, pipeline (shared L3),
    /// pipeline (across sockets), overlapping without MQ, with MQ.
    pub const FIG6_PARALLEL: f64 = 1.7;
    pub const FIG6_PIPELINE_SHARED: f64 = 1.2;
    pub const FIG6_PIPELINE_CROSS: f64 = 0.6;
    pub const FIG6_OVERLAP_NO_MQ: f64 = 0.7;
    pub const FIG6_OVERLAP_MQ: f64 = 1.7;

    /// Fig. 7 anchors: final rate and the improvement factors.
    pub const FIG7_FULL_MPPS: f64 = 18.96;
    pub const FIG7_VS_NEHALEM_BASE: f64 = 6.7;
    pub const FIG7_VS_XEON: f64 = 11.0;

    /// Fig. 8 headline rates (Gbps): (application, 64B, Abilene).
    pub const FIG8: [(&str, f64, f64); 3] = [
        ("Minimal forwarding", 9.7, 24.6),
        ("IP routing", 6.35, 24.6),
        ("IPsec", 1.4, 4.45),
    ];

    /// §5.3 next-generation projections (Gbps at 64 B).
    pub const SCALING: [(&str, f64); 3] = [
        ("Minimal forwarding", 38.8),
        ("IP routing", 19.9),
        ("IPsec", 5.8),
    ];

    /// §6.2 RB4 results.
    pub const RB4_64B_GBPS: f64 = 12.0;
    pub const RB4_ABILENE_GBPS: f64 = 35.0;
    pub const RB4_EXPECTED_64B_RANGE: (f64, f64) = (12.7, 19.4);
    pub const RB4_REORDER_WITH: f64 = 0.0015;
    pub const RB4_REORDER_WITHOUT: f64 = 0.055;
    pub const RB4_PER_SERVER_LATENCY_US: f64 = 24.0;
    pub const RB4_CLUSTER_LATENCY_US: (f64, f64) = (47.6, 66.4);

    /// §3.3 mesh feasibility limits per server configuration.
    pub const FIG3_MESH_LIMITS: [usize; 2] = [32, 128];
}

pub mod measured {
    //! Measured counterpart to the analytic tables: run the REAL element
    //! graphs on the multi-threaded runtime under the three Fig. 6
    //! regimes (per-core parallel replicas, chained pipeline stages,
    //! streaming SPSC ingress) and report what the host actually did.

    use routebricks::click::runtime::mt::{
        run_graph_parallel, run_graph_pipeline, run_graph_spsc, GraphRunOpts,
    };
    use routebricks::click::Graph;
    use routebricks::packet::builder::PacketSpec;
    use routebricks::packet::Packet;

    /// One regime's outcome on a real graph.
    pub struct RegimeRow {
        pub regime: &'static str,
        pub pps: f64,
        pub achieved_batch: f64,
        pub imbalance: f64,
    }

    /// Worker count for the measured runs: one per core, capped at the
    /// paper's 4 forwarding cores.
    pub fn workers() -> usize {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .clamp(1, 4)
    }

    /// Prints the single-core caveat (and returns the core count) so the
    /// bins stop producing misleading regime orderings on small hosts.
    pub fn warn_if_undersized() -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 4 {
            eprintln!(
                "WARNING: only {cores} core(s) available (< 4); measured \
                 regime numbers reflect per-packet overheads, not per-core \
                 scaling, and their ordering is not meaningful."
            );
        }
        cores
    }

    /// 64 B UDP traffic with varied 5-tuples so RSS sharding spreads
    /// flows across the replicas.
    pub fn traffic(count: usize) -> Vec<Packet> {
        (0..count)
            .map(|i| {
                PacketSpec::udp()
                    .endpoints(
                        std::net::SocketAddrV4::new(
                            std::net::Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                            1024 + (i % 50_000) as u16,
                        ),
                        std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(192, 168, 0, 1), 80),
                    )
                    .frame_len(64)
                    .build()
            })
            .collect()
    }

    /// Runs one graph under all three regimes and reports pps, achieved
    /// kp batch size across the thread hop, and shard imbalance.
    pub fn run_regimes(
        make_graph: &dyn Fn() -> Graph,
        workers: usize,
        packets: &[Packet],
    ) -> Vec<RegimeRow> {
        let opts = GraphRunOpts::default();
        let row = |regime, outcome: routebricks::click::GraphRunOutcome| RegimeRow {
            regime,
            pps: outcome.report.pps(),
            achieved_batch: outcome.report.achieved_batch(),
            imbalance: outcome.report.imbalance(),
        };
        let graph = make_graph();
        let parallel = run_graph_parallel(&graph, workers, packets.to_vec(), &opts)
            .expect("graph must replicate");
        let spsc =
            run_graph_spsc(&graph, workers, packets.to_vec(), &opts).expect("graph must replicate");
        let stages: Vec<Graph> = (0..workers).map(|_| make_graph()).collect();
        let pipeline =
            run_graph_pipeline(&stages, packets.to_vec(), &opts).expect("stages must replicate");
        vec![
            row("parallel replicas", parallel),
            row("spsc streaming", spsc),
            row("pipeline stages", pipeline),
        ]
    }
}

/// Formats a measured-vs-paper pair with the relative deviation.
pub fn compare(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return format!("{measured:.2} (paper: n/a)");
    }
    let dev = (measured / paper - 1.0) * 100.0;
    format!("{measured:.2} (paper {paper:.2}, {dev:+.1}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_formats_deviation() {
        let s = compare(9.33, 9.7);
        assert!(s.contains("9.33"));
        assert!(s.contains("-3.8%"));
        assert!(compare(1.0, 0.0).contains("n/a"));
    }
}
