//! Regenerates the **§4.2 NUMA data-placement experiment**: local vs
//! remote socket-buffer-descriptor placement on a half-disabled server.

use routebricks::hw::numa;
use routebricks::report::TextTable;

fn main() {
    println!("§4.2 — is NUMA-aware data placement essential? (64 B forwarding)\n");
    let e = numa::run();
    let mut table = TextTable::new(["setup", "Gbps", "bottleneck", "remote accesses"]);
    table.row([
        "socket-0 cores (ideal placement)".to_string(),
        format!("{:.2}", e.local.gbps()),
        e.local.bottleneck.to_string(),
        "0%".to_string(),
    ]);
    table.row([
        "socket-1 cores (remote descriptors)".to_string(),
        format!("{:.2}", e.remote.gbps()),
        e.remote.bottleneck.to_string(),
        format!("{:.0}%", 100.0 * e.remote_access_fraction),
    ]);
    println!("{table}");
    println!(
        "Rate ratio: {:.3} — placement makes no difference (paper measured\n\
         6.3 Gbps in both setups with ≈23% remote accesses in the second).\n\
         The extra descriptor traffic lands on the inter-socket link, which\n\
         runs far below capacity; the CPU stays the bottleneck either way.\n\
         Note: our 4-core absolute rate derives from the 8-core calibration\n\
         (half the cycle budget), so it reproduces the *insensitivity*, not\n\
         the paper's absolute 6.3 Gbps (their 4-core runs scaled\n\
         super-linearly versus 8 cores — an artifact their §5.3 analysis\n\
         does not explain either).",
        e.rate_ratio()
    );
}
