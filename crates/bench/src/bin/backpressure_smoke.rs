//! CI gate for the pull regime's credit backpressure.
//!
//! Runs the minimal forwarder at a guaranteed 2× overload — each worker
//! replica's packet arena holds 32 slots while the dispatcher offers
//! 64-packet bursts — once under the push regime (the shed-load
//! baseline) and once under pull. Asserts the paper-shaped contract:
//!
//! * push sheds the excess as `NoRxDescriptor` drops (the overload is
//!   real, not a tautology),
//! * pull drops **nothing**: every offered frame is delivered, the
//!   dispatcher records credit stalls instead, and outstanding credit
//!   never exceeds the window (bounded queueing),
//! * both conservation ledgers balance exactly, and no pull worker
//!   exits on the `max_quanta` fuse (no livelock).
//!
//! Exits non-zero on any violation; prints one summary line per regime.

use routebricks::builder::RouterBuilder;
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;
use routebricks::telemetry::DropCause;
use routebricks::Regime;

const OFFERED: u64 = 4_000;
const POOL_SLOTS: usize = 32;
const BURST: usize = 64; // 2x the arena per admission attempt.
const WINDOW: usize = 2 * POOL_SLOTS;

fn traffic() -> Vec<Packet> {
    (0..OFFERED)
        .map(|i| {
            PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(172, 16, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 80),
                )
                .build()
        })
        .collect()
}

fn run(regime: Regime, packets: &[Packet]) -> routebricks::click::GraphRunOutcome {
    RouterBuilder::minimal_forwarder()
        .workers(2)
        .batch_size(32)
        .poll_burst(BURST)
        .pool_slots(POOL_SLOTS)
        .queue_capacity(OFFERED as usize + 64)
        .keep_tx_frames(true)
        .regime(regime)
        .credit_window(WINDOW)
        .build_mt()
        .expect("builder config is valid")
        .run(packets.to_vec())
        .expect("regime run succeeds")
}

fn main() {
    let packets = traffic();

    let push = run(Regime::Push, &packets);
    let push_drops = push.report.ledger.dropped(DropCause::NoRxDescriptor);
    assert!(push.report.ledger.balances(), "push ledger must balance");
    assert!(
        push_drops > 0,
        "overload harness must actually overload: push saw no RX-descriptor drops"
    );
    eprintln!(
        "backpressure_smoke  push  offered={OFFERED} delivered={} no_rx_descriptor={push_drops}",
        push.egress.iter().map(|v| v.len() as u64).sum::<u64>()
    );

    let pull = run(Regime::PullCredit, &packets);
    let delivered: u64 = pull.egress.iter().map(|v| v.len() as u64).sum();
    assert!(
        pull.report.ledger.balances(),
        "pull ledger must balance: {}",
        pull.report.ledger.to_json()
    );
    assert_eq!(
        pull.report.ledger.dropped(DropCause::NoRxDescriptor),
        0,
        "pull must never drop at the RX descriptor boundary"
    );
    assert_eq!(delivered, OFFERED, "pull must deliver every offered frame");
    assert!(
        pull.report.credit_stalls > 0,
        "2x overload must produce credit stalls under pull"
    );
    assert!(
        pull.report.credit_peak_outstanding <= WINDOW as u64,
        "outstanding credit {} exceeds the window {WINDOW}",
        pull.report.credit_peak_outstanding
    );
    assert!(
        pull.worker_stats.iter().all(|s| !s.fused),
        "a pull worker exited on the quanta fuse (livelock suspect)"
    );
    eprintln!(
        "backpressure_smoke  pull  offered={OFFERED} delivered={delivered} stalls={} peak_outstanding={} (window {WINDOW})",
        pull.report.credit_stalls, pull.report.credit_peak_outstanding
    );
    eprintln!("backpressure_smoke  OK: pull sheds nothing, stalls instead, queueing bounded");
}
