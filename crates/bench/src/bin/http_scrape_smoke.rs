//! CI gate for the operational observability plane: the embedded scrape
//! endpoint serving a live multi-threaded router.
//!
//! One `MtRouter` with `serve_metrics` on an ephemeral port runs three
//! traffic phases against the *same* persistent [`MetricsServer`]:
//! healthy, overloaded (half the frames carry corrupt IP headers, a
//! guaranteed 50% loss), healthy again. Checks, each fatal on
//! violation:
//!
//! 1. **Live scrape under load.** A scraper thread hammers `/metrics`
//!    over real TCP while the workers forward. Every response must lint
//!    clean ([`prometheus::lint`]) and carry the per-stage families; the
//!    last live exposition is written to `target/http_scrape_smoke.prom`
//!    for the shell half of the gate (`scripts/promlint.sh`).
//! 2. **Health transitions.** `/healthz` must read 200 after the
//!    healthy phase, 503 once the loss SLO burns, and 200 again after
//!    enough clean intervals refill the fast window — the full
//!    ok → burning → ok arc over one server.
//! 3. **Per-stage conservation.** For every run, the per-stage interval
//!    series must sum exactly to the final merged telemetry snapshot —
//!    the stage-level twin of the ledger conservation `slo_smoke`
//!    checks.
//! 4. **Journal arc.** `/events.json` must carry `slo_transition`
//!    events with monotone timestamps whose decoded arc enters Burning
//!    and later returns to Ok.

use routebricks::builder::{MtRouter, RouterBuilder};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;
use routebricks::telemetry::http::http_get;
use routebricks::telemetry::{
    decode_slo_transition, json, prometheus, SloSpec, SloState, TelemetryLevel,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PHASE_PACKETS: u64 = 60_000;

/// `corrupt_every` = 0 leaves every frame valid; 2 corrupts every other
/// frame's IP header so `CheckIPHeader` drops half the offered load.
fn traffic(corrupt_every: u64) -> Vec<Packet> {
    (0..PHASE_PACKETS)
        .map(|i| {
            let mut p = PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(172, 16, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 80),
                )
                .build();
            if corrupt_every > 0 && i % corrupt_every == 0 {
                p.data_mut()[20] ^= 0xff;
            }
            p
        })
        .collect()
}

/// Runs phases of `corrupt_every` traffic until `/healthz` reads
/// `want`, checking stage conservation on every run.
fn run_until_health(mt: &MtRouter, addr: SocketAddr, corrupt_every: u64, want: u16) {
    for _ in 0..20 {
        let out = mt.run(traffic(corrupt_every)).expect("phase run succeeds");
        assert!(out.report.ledger.balances(), "phase ledger balances");
        // Check 3: per-stage interval series sums to the final merged
        // snapshot, stage by stage, exactly.
        let series = out.report.timeseries.as_ref().expect("interval clock on");
        let totals = series.stage_totals();
        let snap = &out.report.telemetry;
        assert_eq!(totals.len(), snap.stages.len(), "stage row counts match");
        for (i, (d, s)) in totals.iter().zip(snap.stages.iter()).enumerate() {
            assert_eq!(series.stage_names[i].0, s.name, "stage order matches");
            assert_eq!(d.packets, s.packets, "stage {} packets conserve", s.name);
            assert_eq!(d.cycles, s.cycles, "stage {} cycles conserve", s.name);
        }
        // The monitor grades on its own ~1 ms tick: give it a moment.
        for _ in 0..100 {
            let (status, _) = http_get(addr, "/healthz").expect("healthz scrape");
            if status == want {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    panic!("/healthz never reached {want} (corrupt_every={corrupt_every})");
}

fn main() {
    let spec = SloSpec::parse("loss:0.02/fast:4/slow:10").expect("spec parses");
    let mt = RouterBuilder::minimal_forwarder()
        .workers(2)
        .queue_capacity(PHASE_PACKETS as usize + 64)
        .telemetry(TelemetryLevel::Cycles)
        .interval_ms(1)
        .slo(spec)
        .serve_metrics("127.0.0.1:0".parse().expect("addr parses"))
        .build_mt()
        .expect("builder config is valid");
    let addr = mt.metrics_addr().expect("serve_metrics bound a port");
    eprintln!("http_scrape_smoke  endpoint  http://{addr}/metrics");

    // Scraper thread: polls /metrics over TCP for the whole three-phase
    // run; every response must lint clean and the per-stage families
    // must be present once any run has executed (check 1).
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let stop_s = Arc::clone(&stop);
    let scrapes_s = Arc::clone(&scrapes);
    let scraper = std::thread::spawn(move || {
        let mut last = String::new();
        while !stop_s.load(Ordering::Relaxed) {
            if let Ok((status, body)) = http_get(addr, "/metrics") {
                assert_eq!(status, 200, "/metrics always serves");
                prometheus::lint(&body).expect("live exposition lints clean");
                scrapes_s.fetch_add(1, Ordering::Relaxed);
                last = body;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        last
    });

    // Check 2: the ok -> burning -> ok arc over one persistent server.
    run_until_health(&mt, addr, 0, 200);
    eprintln!("http_scrape_smoke  healthz   ok (200) after healthy phase");
    run_until_health(&mt, addr, 2, 503);
    eprintln!("http_scrape_smoke  healthz   burning (503) under 50% loss");
    run_until_health(&mt, addr, 0, 200);
    eprintln!("http_scrape_smoke  healthz   ok (200) after recovery");

    stop.store(true, Ordering::Relaxed);
    let last = scraper.join().expect("scraper thread");
    let n = scrapes.load(Ordering::Relaxed);
    assert!(n >= 10, "scraper landed only {n} live scrapes");
    assert!(
        last.contains("rb_stage_packets_total{element="),
        "live exposition carries per-stage families:\n{last}"
    );
    assert!(last.contains("rb_slo_state"), "SLO verdict exported");
    std::fs::create_dir_all("target").expect("target/ is writable");
    std::fs::write("target/http_scrape_smoke.prom", &last).expect("write .prom");
    eprintln!(
        "http_scrape_smoke  scrape    {n} live scrapes, {} prom lines -> \
         target/http_scrape_smoke.prom",
        last.lines().count()
    );

    // Check 4: the journal carries the slo_transition arc, timestamps
    // monotone, decoded severities entering Burning and returning to Ok.
    let (status, body) = http_get(addr, "/events.json").expect("events scrape");
    assert_eq!(status, 200);
    let mut ticks = Vec::new();
    let mut arcs = Vec::new();
    for line in body.lines().skip(1) {
        let v = json::parse(line).expect("event line parses");
        if v.get("kind").and_then(json::Value::as_str) != Some("slo_transition") {
            continue;
        }
        let tick = v.get("tick").and_then(json::Value::as_f64).expect("tick") as u64;
        let arg = v.get("arg").and_then(json::Value::as_f64).expect("arg") as u64;
        ticks.push(tick);
        arcs.push(decode_slo_transition(arg));
    }
    assert!(
        ticks.windows(2).all(|w| w[0] <= w[1]),
        "slo_transition timestamps are monotone: {ticks:?}"
    );
    let burning = SloState::Burning.severity() as u8;
    let ok = SloState::Ok.severity() as u8;
    let entered = arcs.iter().position(|&(_, to)| to == burning);
    let i = entered.unwrap_or_else(|| panic!("journal never entered burning: {arcs:?}"));
    assert!(
        arcs[i..].iter().any(|&(_, to)| to == ok),
        "journal never recovered to ok after burning: {arcs:?}"
    );
    eprintln!(
        "http_scrape_smoke  journal   {} slo transitions, arc {:?}",
        arcs.len(),
        arcs
    );
    eprintln!(
        "http_scrape_smoke  OK: live scrapes lint, healthz walked 200 -> 503 -> 200, \
         stage series conserve, journal arc ok -> burning -> ok"
    );
}
