//! Regenerates **Fig. 8**: forwarding rate vs packet size (top) and vs
//! application (bottom), for 64 B and the Abilene-like workload.

use rb_bench::{compare, paper};
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::Application;
use routebricks::report::TextTable;
use routebricks::workload::SizeDist;

fn main() {
    let model = ServerModel::prototype();

    println!("Fig. 8 (top) — minimal forwarding vs packet size\n");
    let mut top = TextTable::new(["packet size", "Mpps", "Gbps", "bottleneck"]);
    for size in [64.0, 128.0, 256.0, 512.0, 1024.0] {
        let r = model.rate(Application::MinimalForwarding, size);
        top.row([
            format!("{size:.0} B"),
            format!("{:.2}", r.mpps()),
            format!("{:.2}", r.gbps()),
            r.bottleneck.to_string(),
        ]);
    }
    let mean = SizeDist::abilene().mean();
    let ab = model.rate(Application::MinimalForwarding, mean);
    top.row([
        format!("Abilene (mean {mean:.0} B)"),
        format!("{:.2}", ab.mpps()),
        format!("{:.2}", ab.gbps()),
        ab.bottleneck.to_string(),
    ]);
    println!("{top}");

    println!("Fig. 8 (bottom) — per application, 64 B and Abilene\n");
    let mut bottom = TextTable::new([
        "application",
        "64 B Gbps (vs paper)",
        "Abilene Gbps (vs paper)",
    ]);
    let apps = [
        Application::MinimalForwarding,
        Application::IpRouting,
        Application::Ipsec,
    ];
    for (app, (name, p64, pab)) in apps.into_iter().zip(paper::FIG8) {
        let r64 = model.rate(app, 64.0);
        let rab = model.rate(app, mean);
        bottom.row([
            name.to_string(),
            compare(r64.gbps(), p64),
            compare(rab.gbps(), pab),
        ]);
    }
    println!("{bottom}");
    println!(
        "Realistic (Abilene-like) traffic saturates the two NIC slots at\n\
         24.6 Gbps for forwarding and routing; worst-case 64 B traffic and\n\
         IPsec at any size are CPU-bound — the paper's central result."
    );
}
