//! Regenerates **Fig. 3**: servers required vs external ports.
//!
//! Four series: the three server configurations and the rejected
//! Arista-switched Clos cluster (in server-cost equivalents).

use routebricks::report::TextTable;
use routebricks::vlb::sizing::{fig3_dataset, Layout};

fn describe(layout: &Layout) -> String {
    match layout {
        Layout::Mesh { servers } => format!("{servers} (mesh)"),
        Layout::NFly {
            port_servers,
            relay_servers,
            stages,
            ..
        } => format!("{} ({}-stage n-fly)", port_servers + relay_servers, stages),
        Layout::Infeasible => "infeasible".to_string(),
    }
}

fn main() {
    println!("Fig. 3 — number of servers for an N-port, 10 Gbps/port router\n");
    let ports = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
    let data = fig3_dataset(&ports, 10e9);
    let mut table = TextTable::new([
        "ext. ports",
        "current (5 slots)",
        "more NICs (20 slots)",
        "faster (2 ports, 20 slots)",
        "48-port switches (equiv)",
    ]);
    for row in &data {
        table.row([
            row.n_ports.to_string(),
            describe(&row.layouts[0]),
            describe(&row.layouts[1]),
            describe(&row.layouts[2]),
            format!("{:.0}", row.switched_equivalents),
        ]);
    }
    println!("{table}");
    println!(
        "Mesh-to-n-fly transitions (paper: 32 / 128 ports for the first two\n\
         configurations): the fanout limit forces intermediate relay ranks;\n\
         the Arista-based Clos stays more expensive than the best server\n\
         cluster throughout, as §3.3 argues. The n-fly relay construction is\n\
         a reconstruction — see EXPERIMENTS.md for fidelity notes."
    );
}
