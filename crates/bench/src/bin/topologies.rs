//! Ablation: butterfly vs torus interconnects (§3.3's "we experimented
//! with both and chose the k-ary n-fly").
//!
//! For each cluster size, compares the per-node processing burden and
//! the per-link rate each family needs. The torus folds relaying into
//! the port servers, so both quantities grow with the network radius —
//! violating the §3.1 constraints — while the butterfly holds them
//! constant at the cost of dedicated relay ranks.

use routebricks::report::TextTable;
use routebricks::vlb::topology::{KAryNFly, Topology};
use routebricks::vlb::torus::{torus_processing_factor, KAryNCube};

fn main() {
    println!("§3.3 ablation — butterfly vs torus for VLB clusters (R = 10 Gbps)\n");
    let mut table = TextTable::new([
        "nodes",
        "torus (k, n)",
        "torus proc ×R",
        "torus link Gbps",
        "n-fly proc ×R",
        "n-fly link Gbps",
        "n-fly extra servers",
    ]);
    // Square (n=2) tori against radix-16 butterflies.
    for k in [2usize, 4, 8, 16, 32] {
        let nodes = k * k;
        let torus = KAryNCube::new(k, 2);
        let fly = KAryNFly::new(nodes, 16);
        table.row([
            nodes.to_string(),
            format!("({k}, 2)"),
            format!("{:.1}", torus_processing_factor(k, 2)),
            format!("{:.2}", torus.required_link_bps(10e9) / 1e9),
            "3.0".to_string(), // VLB ceiling; relays carry ≤ 2R each.
            format!("{:.2}", fly.required_link_bps(10e9) / 1e9),
            format!("{}", fly.total_nodes() - nodes),
        ]);
    }
    println!("{table}");
    println!(
        "The torus's per-node processing and per-link rates grow with the\n\
         radius (k/2 average hops per dimension); past ~16 nodes they exceed\n\
         the 3R processing ceiling and the ≤R internal-link constraint of\n\
         §3.1. The butterfly holds both constant and pays with relay servers\n\
         — the trade the paper resolves in the butterfly's favour."
    );
}
