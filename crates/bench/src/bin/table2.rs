//! Regenerates **Table 2**: nominal and empirical component capacities.
//!
//! The capacities are inputs to the model (they come from the paper), so
//! this binary verifies the spec tables match and shows the per-packet
//! headroom each component has at the 64 B saturation point.

use rb_bench::{measured, paper};
use routebricks::builder::RouterBuilder;
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::{Application, CostModel};
use routebricks::hw::spec::Component;
use routebricks::report::TextTable;

fn main() {
    println!("Table 2 — component capacity bounds (Nehalem prototype)\n");
    let model = ServerModel::prototype();
    let spec = &model.spec;
    let mut table = TextTable::new(["component", "nominal", "empirical", "paper (nom/emp)"]);
    let rows: [(&str, f64, f64); 5] = [
        (
            "CPUs (Gcycles/s)",
            spec.cycle_budget() / 1e9,
            spec.cycle_budget() / 1e9,
        ),
        (
            "Memory (Gbps)",
            spec.memory.nominal_bps / 1e9,
            spec.memory.empirical_bps / 1e9,
        ),
        (
            "Inter-socket link (Gbps)",
            spec.inter_socket.nominal_bps / 1e9,
            spec.inter_socket.empirical_bps / 1e9,
        ),
        (
            "I/O-socket links (Gbps)",
            spec.io_link.nominal_bps / 1e9,
            spec.io_link.empirical_bps / 1e9,
        ),
        (
            "PCIe buses (Gbps)",
            spec.pcie.nominal_bps / 1e9,
            spec.pcie.empirical_bps / 1e9,
        ),
    ];
    for ((name, nom, emp), (_, p_nom, p_emp)) in rows.into_iter().zip(paper::TABLE2) {
        table.row([
            name.to_string(),
            format!("{nom:.2}"),
            format!("{emp:.2}"),
            format!("{p_nom:.1} / {p_emp:.2}"),
        ]);
    }
    println!("{table}");

    println!("Utilisation at the 64 B minimal-forwarding saturation point:\n");
    let cost = CostModel::tuned(Application::MinimalForwarding);
    let rate = model.rate(Application::MinimalForwarding, 64.0);
    let mut util = TextTable::new(["component", "load at saturation", "capacity", "utilisation"]);
    for component in [
        Component::Cpu,
        Component::Memory,
        Component::IoLink,
        Component::InterSocket,
        Component::Pcie,
    ] {
        let (load, cap, unit) = match component {
            Component::Cpu => (
                cost.cpu_cycles(64) * rate.pps / 1e9,
                spec.cycle_budget() / 1e9,
                "Gcyc/s",
            ),
            other => (
                cost.bus_bytes(other, 64) * 8.0 * rate.pps / 1e9,
                spec.empirical_capacity(other) / 1e9,
                "Gbps",
            ),
        };
        util.row([
            component.to_string(),
            format!("{load:.1} {unit}"),
            format!("{cap:.1} {unit}"),
            format!("{:.0}%", 100.0 * load / cap),
        ]);
    }
    println!("{util}");
    println!("Only the CPU reaches its bound — the paper's §5.3 conclusion.\n");

    // Measured counterpart: what the worker cores of the REAL minimal
    // forwarding graph actually did on this host, per regime. The
    // nominal/empirical gap above is a hardware property; the per-worker
    // split below is the software one (shard imbalance, kp across the
    // thread hop).
    let cores = measured::warn_if_undersized();
    let workers = measured::workers();
    println!(
        "Measured — minimal forwarding graph on the MT runtime \
         ({workers} worker(s), {cores} core(s), 64 B packets)\n"
    );
    let packets = measured::traffic(40_000);
    let make_graph = || RouterBuilder::minimal_forwarder().build_graph().unwrap();
    let mut mtable = TextTable::new(["regime", "Mpps", "achieved kp", "imbalance"]);
    for r in measured::run_regimes(&make_graph, workers, &packets) {
        mtable.row([
            r.regime.to_string(),
            format!("{:.2}", r.pps / 1e6),
            format!("{:.1}", r.achieved_batch),
            format!("{:.2}", r.imbalance),
        ]);
    }
    println!("{mtable}");
    println!(
        "An achieved kp > 1 under every regime shows poll batching\n\
         survives the core-to-core hop (PacketBatches, not packets, cross\n\
         the SPSC rings); imbalance near 1.0 shows RSS flow sharding\n\
         spreads the load evenly."
    );
}
