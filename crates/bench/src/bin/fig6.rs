//! Regenerates **Fig. 6**: forwarding rates with and without multiple
//! queues for the toy core-layout scenarios.

use rb_bench::{compare, paper};
use routebricks::hw::scenarios::{evaluate_all, Scenario};
use routebricks::report::TextTable;

fn main() {
    println!("Fig. 6 — per-forwarding-path rates under core/queue layouts (64 B)\n");
    let mut table = TextTable::new(["scenario", "Gbps/FP (vs paper)", "aggregate Gbps"]);
    for result in evaluate_all() {
        let paper_rate = match result.scenario {
            Scenario::Parallel => Some(paper::FIG6_PARALLEL),
            Scenario::PipelineSharedCache => Some(paper::FIG6_PIPELINE_SHARED),
            Scenario::PipelineCrossCache => Some(paper::FIG6_PIPELINE_CROSS),
            Scenario::OverlapWithoutMultiQueue => Some(paper::FIG6_OVERLAP_NO_MQ),
            Scenario::OverlapWithMultiQueue => Some(paper::FIG6_OVERLAP_MQ),
            _ => None,
        };
        let rate_cell = match paper_rate {
            Some(p) => compare(result.gbps_per_path, p),
            None => format!("{:.2}", result.gbps_per_path),
        };
        table.row([
            result.scenario.label().to_string(),
            rate_cell,
            format!("{:.2}", result.gbps_total),
        ]);
    }
    println!("{table}");
    println!(
        "The two rules of §4.2 fall out: (1) one core per packet — parallel\n\
         beats pipelined by the sync/cache-miss overheads; (2) one core per\n\
         queue — multi-queue NICs recover the losses in the split and\n\
         overlapping-path scenarios (≈3x and ≈2.4x respectively)."
    );
}
