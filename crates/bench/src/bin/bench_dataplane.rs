//! Machine-readable dataplane benchmark: arena vs heap across `kp`.
//!
//! Runs the minimal-forwarding and IP-routing graphs end to end (source →
//! check → app → queue → ToDevice) at 64 B for `kp ∈ {1, 8, 32}`, once
//! with heap-allocated packet buffers and once with the packet arena
//! (`RouterBuilder::pool_slots`), and writes `BENCH_dataplane.json` with
//! packets/sec per row plus the arena-over-heap speedup at each point.
//!
//!     bench_dataplane [--smoke] [--out PATH]
//!
//! `--smoke` shrinks the workload so CI can validate the harness and the
//! JSON schema in well under a second; its numbers are not meaningful.

use routebricks::builder::RouterBuilder;
use routebricks::telemetry::TelemetryLevel;
use std::time::Instant;

const FRAME_BYTES: usize = 64;

struct Row {
    app: &'static str,
    kp: usize,
    backend: &'static str,
    pps: f64,
    packets: u64,
}

fn builder(app: &'static str) -> RouterBuilder {
    match app {
        "minimal_forwarding" => RouterBuilder::minimal_forwarder(),
        "ip_routing" => RouterBuilder::ip_router()
            .route("10.0.0.0/8", 0)
            .route("172.16.0.0/12", 1)
            .route("0.0.0.0/0", 1),
        other => unreachable!("unknown app {other}"),
    }
}

/// One timed run; returns packets/sec (best of `reps`, first run warm-up).
fn measure(app: &'static str, kp: usize, arena: bool, packets: u64, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..=reps {
        // Size the egress queues (and the arena) for the whole workload:
        // at small kp the source outruns ToDevice and the queue absorbs
        // the difference; lost packets would corrupt the pps comparison.
        let mut b = builder(app)
            .batch_size(kp)
            .queue_capacity(packets as usize + 64)
            .source_packets(FRAME_BYTES, packets);
        if arena {
            // Slot geometry matched to the workload: 64 B frames + default
            // head/tailroom fit a 256 B slot, keeping the arena's working
            // set cache-resident like a NIC ring sized for small frames.
            b = b.pool_slots(packets as usize + 1024).slot_size(256);
        }
        let mut router = b.build().expect("builder config is valid");
        let start = Instant::now();
        router.run_until_idle(u64::MAX);
        let elapsed = start.elapsed().as_secs_f64();
        let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
        assert_eq!(sent, packets, "every packet must be transmitted");
        if rep > 0 {
            best = best.max(sent as f64 / elapsed);
        }
    }
    best
}

/// Observability overhead on the hot loop: minimal forwarding at kp=32
/// on the arena, measured with everything off (the baseline the other
/// rows use), count telemetry, and 1/64 sampled path tracing. The
/// trace-off acceptance bar is that `off` matches the plain arena row
/// within noise — tracing disabled must cost only its branch.
fn observability_rows(packets: u64, reps: usize) -> Vec<(&'static str, f64)> {
    let variants: [(&'static str, TelemetryLevel, u64); 3] = [
        ("off", TelemetryLevel::Off, 0),
        ("counts", TelemetryLevel::Counts, 0),
        ("trace_1_64", TelemetryLevel::Off, 64),
    ];
    variants
        .iter()
        .map(|&(label, level, trace_sample)| {
            let mut best = 0.0f64;
            for rep in 0..=reps {
                let mut router = builder("minimal_forwarding")
                    .batch_size(32)
                    .queue_capacity(packets as usize + 64)
                    .source_packets(FRAME_BYTES, packets)
                    .pool_slots(packets as usize + 1024)
                    .slot_size(256)
                    .telemetry(level)
                    .trace_sample(trace_sample)
                    .build()
                    .expect("builder config is valid");
                let start = Instant::now();
                router.run_until_idle(u64::MAX);
                let elapsed = start.elapsed().as_secs_f64();
                let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
                assert_eq!(sent, packets, "every packet must be transmitted");
                assert!(
                    router.ledger().balances(),
                    "{label}: conservation must hold under load"
                );
                if rep > 0 {
                    best = best.max(sent as f64 / elapsed);
                }
            }
            eprintln!("     observability  {label:<10} {best:>12.0} pps");
            (label, best)
        })
        .collect()
}

/// One instrumented pass (kp=32, arena) with cycle telemetry on; returns
/// the snapshot as a JSON object for per-stage attribution in the output.
/// Telemetry runs are kept separate from the timed rows so the report
/// never perturbs the numbers it annotates.
fn instrumented_pass(app: &'static str, packets: u64) -> String {
    let mut router = builder(app)
        .batch_size(32)
        .queue_capacity(packets as usize + 64)
        .source_packets(FRAME_BYTES, packets)
        .pool_slots(packets as usize + 1024)
        .slot_size(256)
        .telemetry(routebricks::telemetry::TelemetryLevel::Cycles)
        .build()
        .expect("builder config is valid");
    router.run_until_idle(u64::MAX);
    router.telemetry_snapshot().to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dataplane.json".to_string());
    let (packets, reps) = if smoke { (2_000, 1) } else { (40_000, 5) };

    let mut rows: Vec<Row> = Vec::new();
    for app in ["minimal_forwarding", "ip_routing"] {
        for kp in [1usize, 8, 32] {
            for (backend, arena) in [("heap", false), ("arena", true)] {
                let pps = measure(app, kp, arena, packets, reps);
                eprintln!("{app:>18}  kp={kp:<3} {backend:<5} {pps:>12.0} pps");
                rows.push(Row {
                    app,
                    kp,
                    backend,
                    pps,
                    packets,
                });
            }
        }
    }

    // Hand-rolled JSON: the workspace is offline and carries no serde.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"dataplane\",\n  \"frame_bytes\": {FRAME_BYTES},\n  \"smoke\": {smoke},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"kp\": {}, \"backend\": \"{}\", \"pps\": {:.1}, \"packets\": {}}}{}\n",
            r.app, r.kp, r.backend, r.pps, r.packets, comma
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"arena_speedup\": {\n");
    let mut pairs: Vec<String> = Vec::new();
    for app in ["minimal_forwarding", "ip_routing"] {
        for kp in [1usize, 8, 32] {
            let pps_of = |backend: &str| {
                rows.iter()
                    .find(|r| r.app == app && r.kp == kp && r.backend == backend)
                    .map(|r| r.pps)
                    .unwrap_or(0.0)
            };
            let heap = pps_of("heap");
            let arena = pps_of("arena");
            let speedup = if heap > 0.0 { arena / heap } else { 0.0 };
            pairs.push(format!("    \"{app}/kp{kp}\": {speedup:.3}"));
        }
    }
    json.push_str(&pairs.join(",\n"));
    json.push_str("\n  },\n");
    // Observability overhead: pps with telemetry/tracing off, count
    // telemetry, and 1/64 sampled path tracing, plus each variant's
    // slowdown relative to `off`.
    let obs = observability_rows(packets, reps);
    let off_pps = obs
        .iter()
        .find(|(l, _)| *l == "off")
        .map(|(_, pps)| *pps)
        .unwrap_or(0.0);
    json.push_str("  \"observability_overhead\": {\n");
    let obs_rows: Vec<String> = obs
        .iter()
        .map(|(label, pps)| {
            let relative = if off_pps > 0.0 { pps / off_pps } else { 0.0 };
            format!("    \"{label}\": {{\"pps\": {pps:.1}, \"relative\": {relative:.3}}}")
        })
        .collect();
    json.push_str(&obs_rows.join(",\n"));
    json.push_str("\n  },\n");
    // Per-stage cycle attribution from a separate instrumented pass
    // (telemetry cycles, kp=32, arena) — which element is the bottleneck.
    json.push_str("  \"telemetry\": {\n");
    let snaps: Vec<String> = ["minimal_forwarding", "ip_routing"]
        .iter()
        .map(|app| {
            let snap = instrumented_pass(app, packets);
            let indented = snap.replace('\n', "\n    ");
            format!("    \"{app}\": {indented}")
        })
        .collect();
    json.push_str(&snaps.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    // The headline the experiment log quotes: arena over heap at kp=32.
    if let Some(line) = pairs.iter().find(|p| p.contains("minimal_forwarding/kp32")) {
        eprintln!(
            "headline (64 B minimal forwarding, kp=32):{}",
            line.trim_start_matches(' ')
        );
    }
}
