//! Machine-readable dataplane benchmark: arena vs heap across `kp`.
//!
//! Runs the minimal-forwarding and IP-routing graphs end to end (source →
//! check → app → queue → ToDevice) at 64 B for `kp ∈ {1, 8, 32}`, once
//! with heap-allocated packet buffers and once with the packet arena
//! (`RouterBuilder::pool_slots`), and writes `BENCH_dataplane.json` with
//! packets/sec per row plus the arena-over-heap speedup at each point.
//!
//!     bench_dataplane [--smoke] [--out PATH]
//!
//! `--smoke` shrinks the workload so CI can validate the harness and the
//! JSON schema in well under a second; its numbers are not meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routebricks::builder::RouterBuilder;
use routebricks::lookup::{Dir24_8, LpmLookup};
use routebricks::telemetry::{DropCause, TelemetryLevel};
use routebricks::workload::{churn_stream, rib_full_table, ChurnConfig};
use routebricks::Regime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const FRAME_BYTES: usize = 64;

struct Row {
    app: &'static str,
    kp: usize,
    backend: &'static str,
    pps: f64,
    packets: u64,
}

fn builder(app: &'static str) -> RouterBuilder {
    match app {
        "minimal_forwarding" => RouterBuilder::minimal_forwarder(),
        "ip_routing" => RouterBuilder::ip_router()
            .route("10.0.0.0/8", 0)
            .route("172.16.0.0/12", 1)
            .route("0.0.0.0/0", 1),
        other => unreachable!("unknown app {other}"),
    }
}

/// One timed run; returns packets/sec (best of `reps`, first run warm-up).
fn measure(app: &'static str, kp: usize, arena: bool, packets: u64, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for rep in 0..=reps {
        // Size the egress queues (and the arena) for the whole workload:
        // at small kp the source outruns ToDevice and the queue absorbs
        // the difference; lost packets would corrupt the pps comparison.
        let mut b = builder(app)
            .batch_size(kp)
            .queue_capacity(packets as usize + 64)
            .source_packets(FRAME_BYTES, packets);
        if arena {
            // Slot geometry matched to the workload: 64 B frames + default
            // head/tailroom fit a 256 B slot, keeping the arena's working
            // set cache-resident like a NIC ring sized for small frames.
            b = b.pool_slots(packets as usize + 1024).slot_size(256);
        }
        let mut router = b.build().expect("builder config is valid");
        let start = Instant::now();
        router.run_until_idle(u64::MAX);
        let elapsed = start.elapsed().as_secs_f64();
        let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
        assert_eq!(sent, packets, "every packet must be transmitted");
        if rep > 0 {
            best = best.max(sent as f64 / elapsed);
        }
    }
    best
}

/// Observability overhead on the hot loop: minimal forwarding at kp=32
/// on the arena, measured with everything off (the baseline the other
/// rows use), count telemetry, and 1/64 sampled path tracing. The
/// trace-off acceptance bar is that `off` matches the plain arena row
/// within noise — tracing disabled must cost only its branch.
fn observability_rows(packets: u64, reps: usize) -> Vec<(&'static str, f64)> {
    let variants: [(&'static str, TelemetryLevel, u64); 3] = [
        ("off", TelemetryLevel::Off, 0),
        ("counts", TelemetryLevel::Counts, 0),
        ("trace_1_64", TelemetryLevel::Off, 64),
    ];
    variants
        .iter()
        .map(|&(label, level, trace_sample)| {
            let mut best = 0.0f64;
            for rep in 0..=reps {
                let mut router = builder("minimal_forwarding")
                    .batch_size(32)
                    .queue_capacity(packets as usize + 64)
                    .source_packets(FRAME_BYTES, packets)
                    .pool_slots(packets as usize + 1024)
                    .slot_size(256)
                    .telemetry(level)
                    .trace_sample(trace_sample)
                    .build()
                    .expect("builder config is valid");
                let start = Instant::now();
                router.run_until_idle(u64::MAX);
                let elapsed = start.elapsed().as_secs_f64();
                let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
                assert_eq!(sent, packets, "every packet must be transmitted");
                assert!(
                    router.ledger().balances(),
                    "{label}: conservation must hold under load"
                );
                if rep > 0 {
                    best = best.max(sent as f64 / elapsed);
                }
            }
            eprintln!("     observability  {label:<10} {best:>12.0} pps");
            (label, best)
        })
        .collect()
}

struct FibRow {
    routes: usize,
    kp: usize,
    churn: bool,
    pps: f64,
    routes_per_sec: f64,
    packets: u64,
    /// Compiled `Dir24_8` footprint for this table size (same per size).
    fib_mem_bytes: usize,
    /// RCU `apply_and_publish` wall latency percentiles; 0 when churn off.
    publish_p50_us: f64,
    publish_p99_us: f64,
}

/// Percentile over a sorted sample set (nearest-rank); 0 when empty.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

/// Uniform-random destinations so a full-table FIB is exercised across
/// its whole index range (DRAM-resident at 1M prefixes), instead of the
/// builder source's two cache-hot prefixes. The synthetic RIB carries a
/// default route, so every destination resolves.
fn fib_traffic(count: u64) -> Vec<routebricks::packet::Packet> {
    let mut rng = StdRng::seed_from_u64(0xd57);
    (0..count)
        .map(|i| {
            let dst: u32 = rng.gen();
            routebricks::packet::builder::PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(192, 168, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::from(dst), 80),
                )
                .ttl(64)
                .build()
        })
        .collect()
}

/// Internet-scale FIB rows: IP routing over an RCU FIB at `routes`
/// prefixes, scalar (`kp = 1`, one lookup per dispatch) vs batched
/// (`kp = 32`, one prefetched `lookup_batch` + epoch pin per batch), with
/// and without a concurrent control-plane thread applying and publishing
/// route updates for the entire duration of the timed runs. Routers are
/// built once per row; the RIB is generated once per size.
fn fib_scale_rows(packets: u64, reps: usize, smoke: bool) -> Vec<FibRow> {
    // Next hops (32 for both the RIB generator and the churn generator)
    // stay below the port count, so every announced route is routable.
    const PORTS: usize = 32;
    let sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 64_000, 1_000_000]
    };
    let traffic = fib_traffic(packets);
    let mut rows = Vec::new();
    for &n_routes in sizes {
        let table = rib_full_table(n_routes, 0xf1b);
        // Footprint of the compiled lookup structure at this size — what
        // one worker's FIB replica costs in DRAM/cache.
        let fib_mem_bytes = Dir24_8::compile(&table)
            .expect("RIB compiles")
            .memory_bytes();
        // One long coherent churn stream per size, applied in slices.
        let updates = churn_stream(
            &table,
            &ChurnConfig {
                updates: if smoke { 2_000 } else { 20_000 },
                next_hops: PORTS as u16,
                seed: 0xc0ffee,
                ..ChurnConfig::default()
            },
        );
        for kp in [1usize, 32] {
            for churn in [false, true] {
                let mut router = RouterBuilder::ip_router()
                    .ports(PORTS)
                    .rcu_fib(true)
                    .routes_from_table(table.clone())
                    .batch_size(kp)
                    .queue_capacity(packets as usize + 64)
                    .build()
                    .expect("builder config is valid");
                let ctl = router.route_control().expect("RCU control");
                let stop = AtomicBool::new(false);
                let applied = AtomicU64::new(0);
                let publish_us: Mutex<Vec<u64>> = Mutex::new(Vec::new());
                let wall = Instant::now();
                let pps = std::thread::scope(|s| {
                    if churn {
                        let ctl = ctl.clone();
                        let (stop, applied) = (&stop, &applied);
                        let publish_us = &publish_us;
                        let updates = updates.as_slice();
                        s.spawn(move || {
                            // A paced control plane: batch ~1000 routes
                            // per publish at ~2.5 publishes/sec (≈2.5K
                            // routes/sec), cycling through the stream —
                            // the BGP-burst shape the paper's churn story
                            // assumes, not a publisher spinning flat out
                            // (which on a single-core host would measure
                            // scheduler sharing instead of reader-side
                            // overhead).
                            const SLICE: usize = 1_000;
                            let interval = std::time::Duration::from_millis(400);
                            let mut at = 0usize;
                            while !stop.load(Ordering::Acquire) {
                                let end = (at + SLICE).min(updates.len());
                                let t0 = Instant::now();
                                ctl.apply_and_publish(&updates[at..end])
                                    .expect("hops encodable");
                                publish_us
                                    .lock()
                                    .unwrap()
                                    .push(t0.elapsed().as_micros() as u64);
                                applied.fetch_add((end - at) as u64, Ordering::Relaxed);
                                at = if end == updates.len() { 0 } else { end };
                                let pause = std::time::Instant::now();
                                while pause.elapsed() < interval && !stop.load(Ordering::Acquire) {
                                    std::thread::sleep(std::time::Duration::from_millis(5));
                                }
                            }
                        });
                    }
                    let mut best = 0.0f64;
                    let mut sent_before = 0u64;
                    for rep in 0..=reps {
                        for pkt in &traffic {
                            assert!(router.inject(0, pkt.clone()));
                        }
                        let start = Instant::now();
                        router.run_until_idle(u64::MAX);
                        let elapsed = start.elapsed().as_secs_f64();
                        let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
                        assert_eq!(
                            sent - sent_before,
                            packets,
                            "default route forwards everything"
                        );
                        sent_before = sent;
                        if rep > 0 {
                            best = best.max(packets as f64 / elapsed);
                        }
                    }
                    stop.store(true, Ordering::Release);
                    best
                });
                assert!(router.ledger().balances(), "conservation under churn");
                let routes_per_sec = if churn {
                    applied.load(Ordering::Relaxed) as f64 / wall.elapsed().as_secs_f64()
                } else {
                    0.0
                };
                let mut lat = publish_us.into_inner().unwrap();
                lat.sort_unstable();
                let publish_p50_us = percentile_us(&lat, 50.0);
                let publish_p99_us = percentile_us(&lat, 99.0);
                eprintln!(
                    "         fib_scale  routes={n_routes:<8} kp={kp:<3} churn={} {pps:>12.0} pps  {routes_per_sec:>8.0} routes/s  publish p50={publish_p50_us:.0}us p99={publish_p99_us:.0}us",
                    if churn { "on " } else { "off" }
                );
                rows.push(FibRow {
                    routes: n_routes,
                    kp,
                    churn,
                    pps,
                    routes_per_sec,
                    packets,
                    fib_mem_bytes,
                    publish_p50_us,
                    publish_p99_us,
                });
            }
        }
    }
    rows
}

struct RegimeRow {
    regime: Regime,
    pps: f64,
    elapsed_us: f64,
    offered: u64,
    delivered: u64,
    drop_rate: f64,
    no_rx_descriptor: u64,
    credit_stalls: u64,
    credit_peak_outstanding: u64,
    /// Sampled per-packet latency percentiles (µs) from a separate
    /// 1/16-traced pass — the latency cost of each regime's answer to
    /// overload: shedding keeps the survivors fast, credit backpressure
    /// queues everyone at the dispatcher.
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Scheduling regimes under overload: 2 workers, each replica backed by
/// a 32-slot arena, fed with a poll burst of 64 — the offered load runs
/// at 2× what a replica's pool can hold in flight. Push/SPSC admit
/// blindly and shed the excess as `NoRxDescriptor` drops; the pull regime
/// holds packets at the dispatcher behind a credit window and stalls
/// instead, trading latency (longer wall time) for zero loss. Every
/// regime's ledger must balance either way — stalled is not dropped.
fn regime_overload_rows(packets: u64, reps: usize) -> Vec<RegimeRow> {
    const POOL_SLOTS: usize = 32;
    const BURST: usize = 64; // 2x the arena: guaranteed overload.
    let traffic: Vec<routebricks::packet::Packet> = (0..packets)
        .map(|i| {
            routebricks::packet::builder::PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(172, 16, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 80),
                )
                .build()
        })
        .collect();
    [
        Regime::Push,
        Regime::Spsc,
        Regime::Pipeline,
        Regime::PullCredit,
    ]
    .into_iter()
    .map(|regime| {
        let build = |trace: u64| {
            RouterBuilder::minimal_forwarder()
                .workers(2)
                .batch_size(32)
                .poll_burst(BURST)
                .pool_slots(POOL_SLOTS)
                .queue_capacity(packets as usize + 64)
                .keep_tx_frames(true)
                .regime(regime)
                .credit_window(2 * POOL_SLOTS)
                .trace_sample(trace)
                .build_mt()
                .expect("builder config is valid")
        };
        let mut best_pps = 0.0f64;
        let mut elapsed_us = f64::MAX;
        let mut row = None;
        for rep in 0..=reps {
            let mt = build(0);
            let start = Instant::now();
            let out = mt.run(traffic.clone()).expect("regime run");
            let elapsed = start.elapsed();
            let delivered: u64 = out.egress.iter().map(|v| v.len() as u64).sum();
            assert!(
                out.report.ledger.balances(),
                "{regime}: conservation must hold under overload"
            );
            if rep > 0 {
                best_pps = best_pps.max(delivered as f64 / elapsed.as_secs_f64());
                elapsed_us = elapsed_us.min(elapsed.as_secs_f64() * 1e6);
            }
            let no_rx_descriptor = out.report.ledger.dropped(DropCause::NoRxDescriptor);
            row = Some(RegimeRow {
                regime,
                pps: 0.0,
                elapsed_us: 0.0,
                offered: packets,
                delivered,
                drop_rate: (packets - delivered) as f64 / packets as f64,
                no_rx_descriptor,
                credit_stalls: out.report.credit_stalls,
                credit_peak_outstanding: out.report.credit_peak_outstanding,
                p50_us: 0.0,
                p99_us: 0.0,
                p999_us: 0.0,
            });
        }
        let mut row = row.expect("at least one rep ran");
        row.pps = best_pps;
        row.elapsed_us = elapsed_us;
        // Latency percentiles from a separate 1/16-sampled traced pass,
        // so the timed reps above stay unperturbed (same pattern as the
        // Table-1 grid). Trace timestamps are host ticks.
        let traced = build(16).run(traffic.clone()).expect("traced regime run");
        let (p50, p99, p999) = traced.trace.latency_percentiles();
        let ticks_per_us = routebricks::telemetry::cycles::ticks_per_sec() / 1e6;
        row.p50_us = p50 as f64 / ticks_per_us;
        row.p99_us = p99 as f64 / ticks_per_us;
        row.p999_us = p999 as f64 / ticks_per_us;
        eprintln!(
            "   regime_overload  {:<9} {:>12.0} pps  drop_rate={:.3}  stalls={}  peak={}  p50={:.1}us p99={:.1}us p99.9={:.1}us",
            row.regime.as_str(),
            row.pps,
            row.drop_rate,
            row.credit_stalls,
            row.credit_peak_outstanding,
            row.p50_us,
            row.p99_us,
            row.p999_us
        );
        row
    })
    .collect()
}

struct GridRow {
    kp: usize,
    kn: usize,
    pps: f64,
    gbps: f64,
    /// Measured host ticks per packet end to end (best rep).
    cycles_per_packet: f64,
    /// The calibrated model's prediction for this (kp, kn) cell, in
    /// prototype cycles/packet: `C_BASE + C_POLL/kp + C_PCIE/kn`.
    model_cpp: f64,
    doorbells: u64,
    reclaim_batches: u64,
    desc_stalls: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// The paper's Table 1 as a measured grid: minimal forwarding at 64 B
/// swept over poll-driven batching `kp ∈ {1, 8, 32}` × NIC-driven
/// batching `kn ∈ {1, 4, 16}`. Traffic is injected through `FromDevice`
/// so every packet crosses both descriptor rings (RX poll + TX
/// completion); the rings charge writeback + doorbell cost once per `kn`
/// descriptors, so the grid should reproduce the table's shape — `kn = 1`
/// pays the device boundary regardless of `kp`, and the tuned (32, 16)
/// corner is fastest. A separate 1/16-sampled traced pass per cell adds
/// packet-latency percentiles without perturbing the timed numbers.
fn table1_grid_rows(packets: u64, reps: usize) -> Vec<GridRow> {
    let ticks_per_sec = routebricks::telemetry::cycles::ticks_per_sec();
    let traffic: Vec<routebricks::packet::Packet> = (0..packets)
        .map(|i| {
            routebricks::packet::builder::PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(192, 168, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 80),
                )
                .frame_len(FRAME_BYTES)
                .build()
        })
        .collect();
    let build = |kp: usize, kn: usize, trace: u64| {
        RouterBuilder::minimal_forwarder()
            .batch_size(kp)
            .nic_batch(kn)
            .queue_capacity(packets as usize + 64)
            .trace_sample(trace)
            .build()
            .expect("builder config is valid")
    };
    let mut rows = Vec::new();
    for kp in [1usize, 8, 32] {
        for kn in [1usize, 4, 16] {
            let mut best_pps = 0.0f64;
            let mut router = build(kp, kn, 0);
            let mut sent_before = 0u64;
            for rep in 0..=reps {
                for pkt in &traffic {
                    assert!(router.inject(0, pkt.clone()));
                }
                let start = Instant::now();
                router.run_until_idle(u64::MAX);
                let elapsed = start.elapsed().as_secs_f64();
                let sent: u64 = (0..router.ports()).map(|p| router.transmitted(p)).sum();
                assert_eq!(sent - sent_before, packets, "every frame forwarded");
                sent_before = sent;
                if rep > 0 {
                    best_pps = best_pps.max(packets as f64 / elapsed);
                }
            }
            assert!(router.ledger().balances(), "conservation across the grid");
            let stats = router.run_until_idle(0);
            // Latency percentiles from a separate sampled traced pass.
            let mut traced = build(kp, kn, 16);
            for pkt in &traffic {
                assert!(traced.inject(0, pkt.clone()));
            }
            traced.run_until_idle(u64::MAX);
            let log = traced.take_trace_log();
            let (p50, p99, p999) = log.latency_percentiles();
            let ticks_per_us = ticks_per_sec / 1e6;
            let row = GridRow {
                kp,
                kn,
                pps: best_pps,
                gbps: best_pps * FRAME_BYTES as f64 * 8.0 / 1e9,
                cycles_per_packet: ticks_per_sec / best_pps.max(1.0),
                model_cpp: routebricks::hw::CostModel {
                    app: routebricks::hw::Application::MinimalForwarding,
                    batching: routebricks::hw::BatchingConfig {
                        kp: kp as u32,
                        kn: kn as u32,
                    },
                }
                .cpu_cycles(FRAME_BYTES),
                doorbells: stats.nic_doorbells,
                reclaim_batches: stats.nic_reclaim_batches,
                desc_stalls: stats.nic_desc_stalls,
                p50_us: p50 as f64 / ticks_per_us,
                p99_us: p99 as f64 / ticks_per_us,
                p999_us: p999 as f64 / ticks_per_us,
            };
            eprintln!(
                "       table1_grid  kp={kp:<3} kn={kn:<3} {:>12.0} pps  {:>7.0} ticks/pkt  model={:>5.0} cyc/pkt  doorbells={}  p99={:.1}us",
                row.pps, row.cycles_per_packet, row.model_cpp, row.doorbells, row.p99_us
            );
            rows.push(row);
        }
    }
    rows
}

/// One instrumented pass (kp=32, arena) with cycle telemetry on; returns
/// the snapshot as a JSON object for per-stage attribution in the output.
/// Telemetry runs are kept separate from the timed rows so the report
/// never perturbs the numbers it annotates.
fn instrumented_pass(app: &'static str, packets: u64) -> String {
    let mut router = builder(app)
        .batch_size(32)
        .queue_capacity(packets as usize + 64)
        .source_packets(FRAME_BYTES, packets)
        .pool_slots(packets as usize + 1024)
        .slot_size(256)
        .telemetry(routebricks::telemetry::TelemetryLevel::Cycles)
        .build()
        .expect("builder config is valid");
    router.run_until_idle(u64::MAX);
    router.telemetry_snapshot().to_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dataplane.json".to_string());
    let (packets, reps) = if smoke { (2_000, 1) } else { (40_000, 5) };

    let mut rows: Vec<Row> = Vec::new();
    for app in ["minimal_forwarding", "ip_routing"] {
        for kp in [1usize, 8, 32] {
            for (backend, arena) in [("heap", false), ("arena", true)] {
                let pps = measure(app, kp, arena, packets, reps);
                eprintln!("{app:>18}  kp={kp:<3} {backend:<5} {pps:>12.0} pps");
                rows.push(Row {
                    app,
                    kp,
                    backend,
                    pps,
                    packets,
                });
            }
        }
    }

    // Hand-rolled JSON: the workspace is offline and carries no serde.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"dataplane\",\n  \"frame_bytes\": {FRAME_BYTES},\n  \"smoke\": {smoke},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"kp\": {}, \"backend\": \"{}\", \"pps\": {:.1}, \"packets\": {}}}{}\n",
            r.app, r.kp, r.backend, r.pps, r.packets, comma
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"arena_speedup\": {\n");
    let mut pairs: Vec<String> = Vec::new();
    for app in ["minimal_forwarding", "ip_routing"] {
        for kp in [1usize, 8, 32] {
            let pps_of = |backend: &str| {
                rows.iter()
                    .find(|r| r.app == app && r.kp == kp && r.backend == backend)
                    .map(|r| r.pps)
                    .unwrap_or(0.0)
            };
            let heap = pps_of("heap");
            let arena = pps_of("arena");
            let speedup = if heap > 0.0 { arena / heap } else { 0.0 };
            pairs.push(format!("    \"{app}/kp{kp}\": {speedup:.3}"));
        }
    }
    json.push_str(&pairs.join(",\n"));
    json.push_str("\n  },\n");
    // Internet-scale FIB: batched + prefetched lookup vs scalar, with
    // and without live RCU route churn.
    let fib_rows = fib_scale_rows(packets, reps, smoke);
    json.push_str("  \"fib_scale\": [\n");
    for (i, r) in fib_rows.iter().enumerate() {
        let comma = if i + 1 < fib_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"routes\": {}, \"kp\": {}, \"churn\": {}, \"pps\": {:.1}, \"routes_per_sec\": {:.1}, \"packets\": {}, \"fib_mem_bytes\": {}, \"publish_p50_us\": {:.1}, \"publish_p99_us\": {:.1}}}{}\n",
            r.routes, r.kp, r.churn, r.pps, r.routes_per_sec, r.packets, r.fib_mem_bytes,
            r.publish_p50_us, r.publish_p99_us, comma
        ));
    }
    json.push_str("  ],\n");
    // Scheduling regimes under 2x overload: drop rate vs latency for
    // push/spsc/pipeline (shed load) against pull (credit backpressure).
    let regime_rows = regime_overload_rows(packets, reps);
    json.push_str("  \"regime_overload\": [\n");
    for (i, r) in regime_rows.iter().enumerate() {
        let comma = if i + 1 < regime_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"regime\": \"{}\", \"pps\": {:.1}, \"elapsed_us\": {:.1}, \"offered\": {}, \"delivered\": {}, \"drop_rate\": {:.4}, \"no_rx_descriptor\": {}, \"credit_stalls\": {}, \"credit_peak_outstanding\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}}}{}\n",
            r.regime.as_str(), r.pps, r.elapsed_us, r.offered, r.delivered, r.drop_rate,
            r.no_rx_descriptor, r.credit_stalls, r.credit_peak_outstanding,
            r.p50_us, r.p99_us, r.p999_us, comma
        ));
    }
    json.push_str("  ],\n");
    {
        // Credit backpressure trades tail latency for zero loss: under 2x
        // overload the pull regime queues packets at the dispatcher that
        // push would have shed, so its sampled p99 must not undercut
        // push's. Only assertable on real multi-core runs — smoke traces
        // sample too few packets, and on a starved host the scheduler
        // noise swamps the regime signal.
        let p99_of = |want: Regime| {
            regime_rows
                .iter()
                .find(|r| r.regime == want)
                .map(|r| r.p99_us)
                .unwrap_or(0.0)
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (push_p99, pull_p99) = (p99_of(Regime::Push), p99_of(Regime::PullCredit));
        if !smoke && cores >= 4 {
            assert!(
                pull_p99 >= push_p99,
                "pull-credit p99 {pull_p99:.1}us undercuts push p99 {push_p99:.1}us under 2x overload"
            );
        } else if pull_p99 < push_p99 {
            eprintln!(
                "   regime_overload  WARNING: pull p99 {pull_p99:.1}us < push p99 {push_p99:.1}us \
                 (not asserted: smoke={smoke}, cores={cores})"
            );
        }
    }
    // The paper's Table 1 as a measured (kp, kn) grid on the minimal
    // forwarder: poll batching x NIC descriptor batching.
    let grid_rows = table1_grid_rows(packets, reps);
    json.push_str("  \"table1_grid\": [\n");
    for (i, r) in grid_rows.iter().enumerate() {
        let comma = if i + 1 < grid_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"kp\": {}, \"kn\": {}, \"pps\": {:.1}, \"gbps\": {:.4}, \"cycles_per_packet\": {:.1}, \"model_cpp\": {:.1}, \"doorbells\": {}, \"reclaim_batches\": {}, \"desc_stalls\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}}}{}\n",
            r.kp, r.kn, r.pps, r.gbps, r.cycles_per_packet, r.model_cpp, r.doorbells,
            r.reclaim_batches, r.desc_stalls, r.p50_us, r.p99_us, r.p999_us, comma
        ));
    }
    json.push_str("  ],\n");
    let grid_pps = |kp: usize, kn: usize| {
        grid_rows
            .iter()
            .find(|r| r.kp == kp && r.kn == kn)
            .map(|r| r.pps)
            .unwrap_or(0.0)
    };
    let tuned = grid_pps(32, 16);
    let poll_only = grid_pps(32, 1);
    let untuned = grid_pps(1, 1);
    eprintln!(
        "       table1_grid  headline: tuned (32,16) {tuned:.0} pps > poll-only (32,1) \
         {poll_only:.0} pps > untuned (1,1) {untuned:.0} pps"
    );
    if !smoke {
        // The paper's Table 1 ordering: kn = 1 stays bottlenecked at the
        // device boundary no matter how far kp rises, and the tuned
        // corner is fastest. Smoke runs are too short to assert on.
        assert!(
            tuned > poll_only && poll_only > untuned,
            "Table 1 ordering violated: (32,16)={tuned:.0} (32,1)={poll_only:.0} (1,1)={untuned:.0}"
        );
    }
    // Headline ratios: batched-over-scalar lookup speedup (churn off)
    // and the churn throughput penalty at kp=32, per table size.
    json.push_str("  \"fib_scale_summary\": {\n");
    let mut fib_pairs: Vec<String> = Vec::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = fib_rows.iter().map(|r| r.routes).collect();
        s.dedup();
        s
    };
    for n in sizes {
        let pps_of = |kp: usize, churn: bool| {
            fib_rows
                .iter()
                .find(|r| r.routes == n && r.kp == kp && r.churn == churn)
                .map(|r| r.pps)
                .unwrap_or(0.0)
        };
        let batch_speedup = if pps_of(1, false) > 0.0 {
            pps_of(32, false) / pps_of(1, false)
        } else {
            0.0
        };
        let churn_relative = if pps_of(32, false) > 0.0 {
            pps_of(32, true) / pps_of(32, false)
        } else {
            0.0
        };
        fib_pairs.push(format!(
            "    \"routes{n}\": {{\"batch_speedup\": {batch_speedup:.3}, \"churn_relative\": {churn_relative:.3}}}"
        ));
    }
    json.push_str(&fib_pairs.join(",\n"));
    json.push_str("\n  },\n");
    // Observability overhead: pps with telemetry/tracing off, count
    // telemetry, and 1/64 sampled path tracing, plus each variant's
    // slowdown relative to `off`.
    let obs = observability_rows(packets, reps);
    let off_pps = obs
        .iter()
        .find(|(l, _)| *l == "off")
        .map(|(_, pps)| *pps)
        .unwrap_or(0.0);
    json.push_str("  \"observability_overhead\": {\n");
    let obs_rows: Vec<String> = obs
        .iter()
        .map(|(label, pps)| {
            let relative = if off_pps > 0.0 { pps / off_pps } else { 0.0 };
            format!("    \"{label}\": {{\"pps\": {pps:.1}, \"relative\": {relative:.3}}}")
        })
        .collect();
    json.push_str(&obs_rows.join(",\n"));
    json.push_str("\n  },\n");
    // Per-stage cycle attribution from a separate instrumented pass
    // (telemetry cycles, kp=32, arena) — which element is the bottleneck.
    json.push_str("  \"telemetry\": {\n");
    let snaps: Vec<String> = ["minimal_forwarding", "ip_routing"]
        .iter()
        .map(|app| {
            let snap = instrumented_pass(app, packets);
            let indented = snap.replace('\n', "\n    ");
            format!("    \"{app}\": {indented}")
        })
        .collect();
    json.push_str(&snaps.join(",\n"));
    json.push_str("\n  }\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");

    // The headline the experiment log quotes: arena over heap at kp=32.
    if let Some(line) = pairs.iter().find(|p| p.contains("minimal_forwarding/kp32")) {
        eprintln!(
            "headline (64 B minimal forwarding, kp=32):{}",
            line.trim_start_matches(' ')
        );
    }
    // And the FIB headline: batched lookup over scalar, plus the cost of
    // live churn, at the largest table measured.
    if let Some(line) = fib_pairs.last() {
        eprintln!("headline (fib_scale):{}", line.trim_start_matches(' '));
    }
}
