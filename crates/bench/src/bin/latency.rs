//! Regenerates the **§6.2 latency decomposition**: the analytic 24 µs
//! per-server estimate next to the discrete-event simulator's measured
//! distribution, across load levels and batching settings.

use routebricks::hw::cost::{Application, BatchingConfig, CostModel};
use routebricks::hw::sim::{SimConfig, Simulator};
use routebricks::report::TextTable;

fn main() {
    println!("§6.2 — per-server packet latency (64 B IP routing)\n");

    // The paper's analytic decomposition.
    let cycles = CostModel::tuned(Application::IpRouting).cpu_cycles(64);
    let proc_us = cycles / 2.8e9 * 1e6;
    let dma_us = 4.0 * 2.56;
    let batch_us = 16.0 * proc_us;
    println!("analytic decomposition (paper's method, our calibrated cycles):");
    println!("  4 DMA transfers        : {dma_us:>6.2} µs");
    println!("  16-packet batch wait   : {batch_us:>6.2} µs");
    println!("  processing             : {proc_us:>6.2} µs");
    println!(
        "  total                  : {:>6.2} µs   (paper: ≈24 µs)\n",
        dma_us + batch_us + proc_us
    );

    // The simulator's emergent distribution.
    println!("simulated latency vs load and batching:");
    let mut table = TextTable::new(["batching", "load", "mean (µs)", "p99 (µs)", "loss %"]);
    for (name, batching) in [
        ("kp=32 kn=16", BatchingConfig::tuned()),
        ("kp=32 kn=1", BatchingConfig::poll_only()),
    ] {
        let cost = CostModel {
            app: Application::IpRouting,
            batching,
        };
        // Saturation differs per batching config; sweep relative loads.
        let cap = 22.4e9 / cost.cpu_cycles(64);
        for load in [0.5, 0.8, 0.95] {
            let mut cfg = SimConfig::prototype(cost, cap * load);
            cfg.duration_ns = 3_000_000;
            let r = Simulator::new(cfg).run();
            table.row([
                name.to_string(),
                format!("{:.0}%", load * 100.0),
                format!("{:.1}", r.mean_latency_ns / 1e3),
                format!("{:.1}", r.p99_latency_ns as f64 / 1e3),
                format!("{:.2}", 100.0 * r.loss()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Batching is the latency tax the paper acknowledges: the kn=16\n\
         transmit batch adds the ~{batch_us:.0} µs wait that dominates the per-server\n\
         figure, while kn=1 transmits immediately at a large throughput cost\n\
         (Table 1). Cluster traversal multiplies the per-server figure by the\n\
         2–3 VLB hops: see `cargo run -p rb-bench --bin rb4`."
    );
}
