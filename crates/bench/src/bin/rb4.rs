//! Regenerates the **§6.2 RB4 results**: throughput, reordering and
//! latency of the four-node prototype, plus the Direct-vs-classic VLB
//! ablation.

use rb_bench::{compare, paper};
use routebricks::cluster::model::ClusterModel;
use routebricks::cluster::Rb4Results;
use routebricks::report::TextTable;

fn main() {
    println!("§6.2 — the RB4 four-node parallel router\n");
    let r = Rb4Results::compute(100_000);

    let mut table = TextTable::new(["metric", "model (vs paper)"]);
    table.row([
        "throughput, 64 B workload".to_string(),
        compare(r.gbps_64b, paper::RB4_64B_GBPS),
    ]);
    table.row([
        "throughput, Abilene workload".to_string(),
        compare(r.gbps_abilene, paper::RB4_ABILENE_GBPS),
    ]);
    table.row([
        "64 B without avoidance overhead".to_string(),
        format!(
            "{:.1} Gbps (paper expected {:.1}–{:.1})",
            r.gbps_64b_no_avoidance,
            paper::RB4_EXPECTED_64B_RANGE.0,
            paper::RB4_EXPECTED_64B_RANGE.1
        ),
    ]);
    table.row([
        "reordering, with flowlets".to_string(),
        format!(
            "{:.2}% (paper {:.2}%)",
            100.0 * r.reorder_with_avoidance.reorder_fraction,
            100.0 * paper::RB4_REORDER_WITH
        ),
    ]);
    table.row([
        "reordering, plain Direct VLB".to_string(),
        format!(
            "{:.2}% (paper {:.2}%)",
            100.0 * r.reorder_without_avoidance.reorder_fraction,
            100.0 * paper::RB4_REORDER_WITHOUT
        ),
    ]);
    table.row([
        "per-server latency".to_string(),
        format!(
            "{:.1} µs (paper ≈{:.0} µs)",
            r.per_server_latency_us,
            paper::RB4_PER_SERVER_LATENCY_US
        ),
    ]);
    table.row([
        "cluster latency range".to_string(),
        format!(
            "{:.1}–{:.1} µs (paper {:.1}–{:.1})",
            r.cluster_latency_us.0,
            r.cluster_latency_us.1,
            paper::RB4_CLUSTER_LATENCY_US.0,
            paper::RB4_CLUSTER_LATENCY_US.1
        ),
    ]);
    println!("{table}");

    println!("Ablation — Direct VLB vs classic VLB (64 B workload):\n");
    let m = ClusterModel::rb4();
    let mut ab = TextTable::new(["routing", "total Gbps", "per-node processing"]);
    for (name, direct) in [("Direct VLB (uniform matrix)", 1.0), ("classic VLB", 0.0)] {
        let t = m.throughput(64.0, direct);
        ab.row([
            name.to_string(),
            format!("{:.1}", t.total_bps / 1e9),
            format!("{}R", if direct == 1.0 { "2" } else { "3" }),
        ]);
    }
    println!("{ab}");
}
