//! Regenerates the **§5.3 scaling projections**: expected rates on the
//! 4-socket, 8-core-per-socket follow-up server, plus the
//! unconstrained-NIC Abilene estimate.

use rb_bench::{compare, paper};
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::Application;
use routebricks::hw::spec::{Capacity, ServerSpec};
use routebricks::report::TextTable;
use routebricks::workload::SizeDist;

fn main() {
    println!("§5.3 — projections for the next-generation server (64 B packets)\n");
    let ng = ServerModel::new(ServerSpec::nehalem_next_gen());
    let apps = [
        Application::MinimalForwarding,
        Application::IpRouting,
        Application::Ipsec,
    ];
    let mut table = TextTable::new(["application", "projected Gbps (vs paper)", "bottleneck"]);
    for (app, (name, p)) in apps.into_iter().zip(paper::SCALING) {
        let r = ng.rate(app, 64.0);
        table.row([
            name.to_string(),
            compare(r.gbps(), p),
            r.bottleneck.to_string(),
        ]);
    }
    println!("{table}");

    // The "had we not been limited to just two NIC slots" estimate.
    let mut spec = ServerSpec::nehalem();
    spec.nic_input_bps = f64::INFINITY;
    spec.pcie = Capacity::exact(f64::INFINITY);
    spec.io_link.empirical_bps = 0.8 * spec.io_link.nominal_bps;
    let unconstrained = ServerModel::new(spec);
    let mean = SizeDist::abilene().mean();
    let r = unconstrained.rate(Application::MinimalForwarding, mean);
    println!(
        "Current server, unconstrained NICs, Abilene workload: {}\n(limited by the {})",
        compare(r.gbps(), 70.0),
        r.bottleneck
    );
}
