//! CI gate for the live-telemetry layer: interval conservation, the
//! Prometheus/JSON exporters, and the SLO burn-rate engine.
//!
//! Four checks, each fatal on violation:
//!
//! 1. **Conservation while live.** The minimal forwarder runs the pull
//!    regime at a guaranteed 2× overload with a 1 ms interval clock; the
//!    dispatcher harvests worker rings *while they run*. The merged
//!    series must sum exactly to the final conservation ledger, span
//!    ≥ 10 non-empty intervals, and have been read live (not just at the
//!    end-of-run flush).
//! 2. **Exporters re-parse.** The Prometheus text exposition lints clean
//!    (unique well-formed families, HELP+TYPE, cumulative histogram) and
//!    is written to `target/slo_smoke.prom` for `scripts/promlint.sh`;
//!    the JSON time series round-trips through the JSON parser.
//! 3. **Burn-rate flips.** A synthetic healthy → overloaded → recovered
//!    series must read ok → burning → ok off [`SloReport::timeline`] —
//!    the alert fires while the budget burns and clears on recovery
//!    without waiting for the slow window to age out.
//! 4. **DES cross-check.** The measured interval latency sketch is
//!    compared against the `rb-hw` discrete-event latency model — the
//!    closing sanity check that live percentiles and the calibrated
//!    model talk about the same router.

use routebricks::builder::RouterBuilder;
use routebricks::hw::sim::{SimConfig, Simulator};
use routebricks::hw::{Application, CostModel};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;
use routebricks::telemetry::{
    cycles, json, prometheus, render_top, DropCause, IntervalStats, Log2Histogram, SloReport,
    SloSpec, SloState,
};
use routebricks::Regime;

const OFFERED: u64 = 60_000;
const POOL_SLOTS: usize = 32;
const BURST: usize = 64; // 2x the arena per admission attempt.

fn traffic() -> Vec<Packet> {
    (0..OFFERED)
        .map(|i| {
            PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(172, 16, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 80),
                )
                .build()
        })
        .collect()
}

/// A one-second synthetic interval at `tps = 1e9`.
fn synthetic(seq: u64, forwarded: u64, dropped: u64) -> IntervalStats {
    let mut b = IntervalStats::empty(seq, 0, seq * 1_000_000_000);
    b.end_tick = (seq + 1) * 1_000_000_000;
    b.quanta = 10;
    b.sourced = forwarded + dropped;
    b.forwarded = forwarded;
    b.tx_bytes = forwarded * 64;
    b.drops[0] = dropped;
    let mut lat = Log2Histogram::new();
    for _ in 0..10 {
        lat.record(2_000);
    }
    b.latency = lat;
    b
}

fn main() {
    let tps = cycles::ticks_per_sec();

    // 1. Conservation under live harvest at 2x overload.
    let spec = SloSpec::parse("loss:0.01/floor:1000").expect("spec parses");
    let mt = RouterBuilder::minimal_forwarder()
        .workers(2)
        .batch_size(32)
        .poll_burst(BURST)
        .pool_slots(POOL_SLOTS)
        .queue_capacity(OFFERED as usize + 64)
        .keep_tx_frames(true)
        .regime(Regime::PullCredit)
        .credit_window(2 * POOL_SLOTS)
        .interval_ms(1)
        .slo(spec)
        .build_mt()
        .expect("builder config is valid");
    let out = mt.run(traffic()).expect("overload run succeeds");
    assert!(out.report.ledger.balances(), "overload ledger balances");
    let series = out
        .report
        .timeseries
        .as_ref()
        .expect("interval clock was on");
    let led = series.ledger();
    assert_eq!(led.sourced, out.report.ledger.sourced, "sourced conserves");
    assert_eq!(
        led.forwarded, out.report.ledger.forwarded,
        "forwarded conserves"
    );
    for cause in DropCause::ALL {
        assert_eq!(
            led.dropped(cause),
            out.report.ledger.dropped(cause),
            "drops[{}] conserve",
            cause.as_str()
        );
    }
    assert!(
        series.non_empty_intervals() >= 10,
        "a 2x-overload run must span >= 10 non-empty intervals, got {} \
         (total {}, live {})",
        series.non_empty_intervals(),
        series.intervals.len(),
        series.live_harvested
    );
    assert!(
        series.live_harvested >= 10,
        "intervals must be harvested while workers run, got {} live",
        series.live_harvested
    );
    let report = mt.slo_report(&out).expect("objectives were set");
    eprintln!(
        "slo_smoke  overload  intervals={} live={} graded={} verdict={}",
        series.intervals.len(),
        series.live_harvested,
        report.graded_intervals,
        report.state.as_str()
    );
    eprint!("{}", render_top(&series.intervals, Some(&report), tps, 5));

    // 2. Exporters: Prometheus lints + re-parses, JSON round-trips.
    let prom = prometheus::render(series, Some(&report), tps);
    prometheus::lint(&prom).expect("exposition must lint clean");
    assert!(prom.contains("rb_sourced_packets_total"));
    assert!(prom.contains("rb_quantum_latency_seconds_bucket{le=\"+Inf\"}"));
    assert!(prom.contains("rb_slo_state"));
    std::fs::create_dir_all("target").expect("target/ is writable");
    std::fs::write("target/slo_smoke.prom", &prom).expect("write .prom");
    let ts_json = series.to_json(tps);
    let v = json::parse(&ts_json).expect("time-series JSON parses");
    assert!(v.get("intervals").is_some(), "JSON carries the intervals");
    let report_json = json::parse(&report.to_json()).expect("SLO JSON parses");
    assert!(report_json.get("state").is_some());
    eprintln!(
        "slo_smoke  export    {} prom lines -> target/slo_smoke.prom, json ok",
        prom.lines().count()
    );

    // 3. Burn-rate verdict flips ok -> burning -> ok.
    let spec = SloSpec::parse("loss:0.01/fast:3/slow:8").expect("spec parses");
    let mut synth: Vec<IntervalStats> = Vec::new();
    for seq in 0..25 {
        synth.push(synthetic(seq, 1000, 0)); // Healthy.
    }
    for seq in 25..35 {
        synth.push(synthetic(seq, 500, 500)); // 50% loss: overload.
    }
    for seq in 35..50 {
        synth.push(synthetic(seq, 1000, 0)); // Recovered.
    }
    let timeline = SloReport::timeline(&spec, &synth, 1e9);
    assert_eq!(timeline[24], SloState::Ok, "healthy prefix reads ok");
    assert_eq!(
        timeline[34],
        SloState::Burning,
        "sustained 50% loss must burn: {:?}",
        &timeline[25..35]
    );
    assert_eq!(
        *timeline.last().unwrap(),
        SloState::Ok,
        "recovery clears the alert: {:?}",
        &timeline[35..]
    );
    let flips: Vec<&SloState> = {
        let mut dedup = Vec::new();
        for s in &timeline {
            if dedup.last() != Some(&s) {
                dedup.push(s);
            }
        }
        dedup
    };
    eprintln!("slo_smoke  burnrate  timeline arc: {flips:?}");

    // 4. Closing DES comparison: measured interval percentiles next to
    // the calibrated latency model. Units differ by design — the sketch
    // holds per-quantum processing spans on this host, the DES predicts
    // per-packet latency on the prototype — so this is a sanity
    // cross-check of magnitudes, not an equality.
    let merged = series.merged_latency();
    let measured_p50_ns = merged.quantile(0.50).unwrap_or(0) as f64 / tps * 1e9;
    let measured_p99_ns = merged.quantile(0.99).unwrap_or(0) as f64 / tps * 1e9;
    let cost = CostModel::tuned(Application::MinimalForwarding);
    let des = Simulator::new(SimConfig::prototype(cost, 1e6)).run();
    assert!(measured_p99_ns > 0.0, "sketch recorded quanta");
    assert!(des.p99_latency_ns > 0, "DES produced latencies");
    eprintln!(
        "slo_smoke  des       measured quantum p50={measured_p50_ns:.0}ns p99={measured_p99_ns:.0}ns \
         vs model packet p99={}ns (mean {:.0}ns) at 1 Mpps",
        des.p99_latency_ns, des.mean_latency_ns
    );
    eprintln!("slo_smoke  OK: series conserves, exporters re-parse, burn rate flips and clears");
}
