//! Regenerates **Fig. 9**: CPU load (cycles/packet) vs input rate, with
//! the available-cycles bound, for all three applications — then runs
//! the REAL element graphs for the same applications on the MT runtime
//! under the three threading regimes to show where this host saturates.

use rb_bench::measured;
use routebricks::builder::RouterBuilder;
use routebricks::hw::accounting::load_series;
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::{Application, CostModel};
use routebricks::hw::spec::Component;
use routebricks::report::TextTable;

fn main() {
    println!("Fig. 9 — CPU cycles/packet vs input rate (64 B packets)\n");
    let model = ServerModel::prototype();
    let rates: Vec<f64> = (1..=20).map(|m| m as f64 * 1e6).collect();
    let mut table = TextTable::new(["rate (Mpps)", "available cyc/pkt", "fwd", "rtr", "ipsec"]);
    let series: Vec<_> = [
        Application::MinimalForwarding,
        Application::IpRouting,
        Application::Ipsec,
    ]
    .into_iter()
    .map(|app| load_series(&model, &CostModel::tuned(app), Component::Cpu, 64, &rates))
    .collect();
    for (i, &rate) in rates.iter().enumerate() {
        table.row([
            format!("{:.0}", rate / 1e6),
            format!("{:.0}", series[0].points[i].nominal_bound),
            format!("{:.0}", series[0].points[i].measured),
            format!("{:.0}", series[1].points[i].measured),
            format!("{:.0}", series[2].points[i].measured),
        ]);
    }
    println!("{table}");
    for (s, name) in series.iter().zip(["fwd", "rtr", "ipsec"]) {
        match s.saturation_pps() {
            Some(pps) => println!("{name}: CPU saturates at {:.2} Mpps", pps / 1e6),
            None => println!("{name}: CPU does not saturate in range"),
        }
    }
    println!(
        "\nPer-packet cycles are flat in the input rate — so the curves'\n\
         intersection with the available-cycles bound pinpoints the\n\
         saturation rates, and the CPU is the bottleneck for all three\n\
         applications (§5.3, conclusion 1).\n"
    );

    // Measured counterpart: the real element graphs, replicated per core
    // and driven under all three regimes on this host.
    let cores = measured::warn_if_undersized();
    let workers = measured::workers();
    println!(
        "Measured — real graphs on the MT runtime \
         ({workers} worker(s), {cores} core(s), 64 B packets)\n"
    );
    let packets = measured::traffic(40_000);
    let apps: [(&str, &dyn Fn() -> routebricks::click::Graph); 3] = [
        ("fwd", &|| {
            RouterBuilder::minimal_forwarder().build_graph().unwrap()
        }),
        ("rtr", &|| {
            RouterBuilder::ip_router()
                .route("10.0.0.0/9", 0)
                .route("0.0.0.0/0", 1)
                .build_graph()
                .unwrap()
        }),
        ("ipsec", &|| {
            RouterBuilder::ipsec_gateway().build_graph().unwrap()
        }),
    ];
    let mut mtable = TextTable::new(["app", "regime", "Mpps", "achieved kp", "imbalance"]);
    for (name, make_graph) in apps {
        for r in measured::run_regimes(make_graph, workers, &packets) {
            mtable.row([
                name.to_string(),
                r.regime.to_string(),
                format!("{:.2}", r.pps / 1e6),
                format!("{:.1}", r.achieved_batch),
                format!("{:.2}", r.imbalance),
            ]);
        }
    }
    println!("{mtable}");
}
