//! CI smoke test for the observability path: runs a sampled-trace MT
//! graph (2 workers, streaming SPSC ingress) and a traced cluster-sim
//! replay, exports both as Chrome trace-event JSON, re-parses the JSON
//! with the workspace's own parser, and asserts span nesting, at least
//! one cross-core ring-hop edge, and an exactly-balanced conservation
//! ledger. Exits nonzero on any violation so `scripts/ci.sh` can gate
//! on it.

use routebricks::builder::RouterBuilder;
use routebricks::cluster::sim::{Policy, ReorderExperiment};
use routebricks::packet::builder::PacketSpec;
use routebricks::packet::Packet;
use routebricks::telemetry::{cycles, json, TraceKind, TraceLog};

/// Varied-flow traffic so RSS sharding spreads packets across workers.
fn traffic(count: usize) -> Vec<Packet> {
    (0..count)
        .map(|i| {
            PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(192, 168, (i >> 8) as u8, i as u8),
                        1024 + (i % 1000) as u16,
                    ),
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(10, (i % 7) as u8, 1, 2),
                        80,
                    ),
                )
                .ttl(64)
                .build()
        })
        .collect()
}

/// Parses Chrome trace JSON and asserts the structural invariants: a
/// non-empty `traceEvents` array and, when ring hops are present, at
/// least one send/recv flow pair sharing an `id` across distinct `tid`s.
fn check_chrome_json(label: &str, text: &str, expect_cross_core: bool) {
    let v = json::parse(text).unwrap_or_else(|e| panic!("{label}: chrome JSON must parse: {e:?}"));
    let events = v
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .unwrap_or_else(|| panic!("{label}: traceEvents array present"));
    assert!(!events.is_empty(), "{label}: trace exported no events");
    if !expect_cross_core {
        return;
    }
    let field = |e: &json::Value, k: &str| e.get(k).and_then(json::Value::as_f64);
    let mut cross_core_edges = 0usize;
    for send in events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("s"))
    {
        let id = field(send, "id");
        let matched = events.iter().any(|recv| {
            recv.get("ph").and_then(json::Value::as_str) == Some("f")
                && field(recv, "id") == id
                && field(recv, "tid") != field(send, "tid")
        });
        if matched {
            cross_core_edges += 1;
        }
    }
    assert!(
        cross_core_edges > 0,
        "{label}: no ring-hop edge crosses cores"
    );
    eprintln!(
        "{label}: {} event(s), {cross_core_edges} cross-core edge(s)",
        events.len()
    );
}

/// Asserts every traced packet's path is time-ordered and that element
/// spans nest between the hop endpoints they ride through.
fn check_span_nesting(label: &str, log: &TraceLog) {
    let mut ids: Vec<u64> = log.spans.iter().map(|s| s.event.trace_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert!(!ids.is_empty(), "{label}: no packets were traced");
    for id in ids {
        let path = log.path_of(id);
        assert!(
            path.windows(2).all(|w| w[0].event.ts <= w[1].event.ts),
            "{label}: path of trace {id:#x} is not time-ordered"
        );
        // A ring send must not come after the matching receive.
        let send = path
            .iter()
            .position(|s| s.event.kind == TraceKind::RingSend);
        let recv = path
            .iter()
            .position(|s| s.event.kind == TraceKind::RingRecv);
        if let (Some(send), Some(recv)) = (send, recv) {
            assert!(
                send < recv,
                "{label}: trace {id:#x} received from a ring before sending"
            );
        }
    }
}

fn mt_smoke() {
    const PACKETS: usize = 3_000;
    let mt = RouterBuilder::minimal_forwarder()
        .workers(2)
        .batch_size(32)
        .trace_sample(8)
        .build_mt()
        .expect("builder config is valid");
    let outcome = mt.run_spsc(traffic(PACKETS)).expect("graph runs");

    let ledger = outcome.report.ledger;
    assert!(
        ledger.balances(),
        "mt: ledger must balance: {}",
        ledger.to_json()
    );
    assert_eq!(ledger.sourced, PACKETS as u64, "mt: every packet sourced");
    assert_eq!(
        ledger.in_flight, 0,
        "mt: nothing left in flight after drain"
    );

    check_span_nesting("mt", &outcome.trace);
    assert!(
        outcome
            .trace
            .spans
            .iter()
            .any(|s| s.event.kind == TraceKind::Element),
        "mt: element-level spans present"
    );
    let chrome = outcome.trace.to_chrome_json(cycles::ticks_per_sec() / 1e6);
    check_chrome_json("mt", &chrome, true);
    eprint!(
        "{}",
        routebricks::trace_report(&outcome.trace, &ledger, cycles::ticks_per_sec() / 1e6)
    );
}

fn cluster_smoke() {
    let mut exp = ReorderExperiment::default();
    exp.trace.packets = 20_000;
    let (res, run) = exp.run_traced(Policy::Flowlet, 64);
    assert_eq!(
        res,
        exp.run(Policy::Flowlet),
        "cluster: tracing must not perturb the replay"
    );
    assert!(
        run.ledger.balances(),
        "cluster: ledger must balance: {}",
        run.ledger.to_json()
    );
    assert_eq!(
        run.ledger.sourced, res.packets,
        "cluster: every replayed packet sourced"
    );
    check_span_nesting("cluster", &run.trace);
    // The simulator records complete cluster-hop spans, not ring edges.
    check_chrome_json("cluster", &run.trace.to_chrome_json(1000.0), false);
    eprint!(
        "{}",
        routebricks::trace_report(&run.trace, &run.ledger, 1000.0)
    );
}

fn main() {
    mt_smoke();
    cluster_smoke();
    eprintln!("trace smoke OK: spans nest, edges cross cores, ledgers balance");
}
