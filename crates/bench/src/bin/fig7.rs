//! Regenerates **Fig. 7**: cumulative impact of the new server
//! architecture, multi-queue NICs and batching on the aggregate
//! forwarding rate.

use rb_bench::{compare, paper};
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::{Application, BatchingConfig};
use routebricks::hw::spec::ServerSpec;
use routebricks::report::TextTable;

fn main() {
    println!("Fig. 7 — aggregate 64 B forwarding rate per design stage\n");
    let app = Application::MinimalForwarding;
    let stages: [(&str, ServerModel, BatchingConfig); 4] = [
        (
            "Xeon, single queue, no batching",
            ServerModel::new(ServerSpec::xeon_shared_bus()),
            BatchingConfig::none(),
        ),
        (
            "Nehalem, single queue, no batching",
            ServerModel::new(ServerSpec::nehalem_single_queue()),
            BatchingConfig::none(),
        ),
        (
            "Nehalem, multiple queues, no batching",
            ServerModel::prototype(),
            BatchingConfig::none(),
        ),
        (
            "Nehalem, multiple queues, with batching",
            ServerModel::prototype(),
            BatchingConfig::tuned(),
        ),
    ];
    let mut table = TextTable::new(["configuration", "Mpps", "bottleneck"]);
    let mut rates = Vec::new();
    for (name, model, batching) in &stages {
        let r = model.rate_with_batching(app, *batching, 64.0);
        table.row([
            name.to_string(),
            format!("{:.2}", r.mpps()),
            r.bottleneck.to_string(),
        ]);
        rates.push(r.pps);
    }
    println!("{table}");
    println!(
        "full config:        {}",
        compare(rates[3] / 1e6, paper::FIG7_FULL_MPPS)
    );
    println!(
        "vs Nehalem baseline: {}",
        compare(rates[3] / rates[1], paper::FIG7_VS_NEHALEM_BASE)
    );
    println!(
        "vs shared-bus Xeon:  {}",
        compare(rates[3] / rates[0], paper::FIG7_VS_XEON)
    );
}
