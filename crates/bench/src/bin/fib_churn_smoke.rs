//! CI smoke test for the RCU FIB: multi-threaded forwarding over a
//! synthetic RIB while a concurrent control-plane thread announces,
//! withdraws and publishes routes as fast as it can. Asserts exact
//! packet conservation, zero torn lookups (the RIB's default route makes
//! any `NoRoute` drop a reader-side consistency violation), and full
//! grace-period reclamation once the run quiesces. Exits nonzero on any
//! violation, so `scripts/ci.sh` can gate on it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routebricks::builder::RouterBuilder;
use routebricks::workload::{churn_stream, rib_full_table, ChurnConfig};
use std::sync::atomic::{AtomicBool, Ordering};

const PREFIXES: usize = 2_000;
const PACKETS: usize = 60_000;
const RIB_SEED: u64 = 0xc4c4;
/// Next hops stay below the port count so a freshly announced route can
/// never point at a nonexistent output (which would drop the packet and
/// masquerade as a torn lookup).
const PORTS: usize = 32;

fn traffic(count: usize) -> Vec<routebricks::packet::Packet> {
    let mut rng = StdRng::seed_from_u64(0x7ea5);
    (0..count)
        .map(|i| {
            let dst: u32 = rng.gen();
            routebricks::packet::builder::PacketSpec::udp()
                .endpoints(
                    std::net::SocketAddrV4::new(
                        std::net::Ipv4Addr::new(192, 168, (i >> 8) as u8, i as u8),
                        1024 + (i % 40_000) as u16,
                    ),
                    std::net::SocketAddrV4::new(std::net::Ipv4Addr::from(dst), 80),
                )
                .ttl(64)
                .build()
        })
        .collect()
}

fn main() {
    let mt = RouterBuilder::ip_router()
        .ports(PORTS)
        .rcu_fib(true)
        .synthetic_routes(PREFIXES, RIB_SEED)
        .workers(3)
        .batch_size(32)
        .telemetry(routebricks::telemetry::TelemetryLevel::Counts)
        .trace_sample(512)
        .build_mt()
        .expect("builder config is valid");
    let ctl = mt.route_control().expect("RCU router exposes control");

    let base = rib_full_table(PREFIXES, RIB_SEED);
    let done = AtomicBool::new(false);
    let (outcome, updates_applied, publishes) = std::thread::scope(|s| {
        let churner = {
            let ctl = ctl.clone();
            let done = &done;
            let base = &base;
            s.spawn(move || {
                let mut applied = 0u64;
                let mut publishes = 0u64;
                let mut round = 0u64;
                // Keep churning until the data plane finishes, in small
                // apply+publish slices so readers see many generations.
                while !done.load(Ordering::Acquire) || round < 20 {
                    let updates = churn_stream(
                        base,
                        &ChurnConfig {
                            updates: 50,
                            next_hops: PORTS as u16,
                            seed: 0xbeef ^ round,
                            ..ChurnConfig::default()
                        },
                    );
                    for slice in updates.chunks(10) {
                        ctl.apply_and_publish(slice).expect("hops encodable");
                        applied += slice.len() as u64;
                        publishes += 1;
                    }
                    round += 1;
                }
                (applied, publishes)
            })
        };
        let outcome = mt.run(traffic(PACKETS)).expect("graph runs");
        done.store(true, Ordering::Release);
        let (applied, publishes) = churner.join().expect("churner thread");
        (outcome, applied, publishes)
    });

    let ledger = &outcome.report.ledger;
    assert!(
        ledger.balances(),
        "ledger must balance under churn: {}",
        ledger.to_json()
    );
    assert_eq!(ledger.sourced, PACKETS as u64, "every packet sourced");
    assert_eq!(ledger.in_flight, 0, "nothing in flight after drain");
    assert_eq!(
        ledger.dropped_total(),
        0,
        "the default route resolves every destination; any drop is a torn \
         or inconsistent lookup: {}",
        ledger.to_json()
    );
    assert_eq!(
        ledger.forwarded, PACKETS as u64,
        "all packets reach an egress"
    );

    let snap = &outcome.report.telemetry;
    assert_eq!(
        snap.route_lookups, PACKETS as u64,
        "every packet goes through the FIB"
    );
    assert_eq!(snap.route_misses, 0, "zero torn lookups");

    // Once the data plane is idle every reader is quiescent, so all
    // retired snapshots must reclaim.
    ctl.try_reclaim();
    let stats = ctl.stats();
    assert_eq!(
        stats.pending_retired, 0,
        "grace periods complete after quiesce: {stats:?}"
    );
    assert!(
        stats.publishes >= publishes,
        "every publish counted: {stats:?}"
    );
    assert!(
        stats.delta_publishes > 0,
        "steady-state publishes should recycle a reclaimed snapshot \
         (delta patch) instead of cloning the table: {stats:?}"
    );

    eprint!(
        "{}",
        routebricks::trace_report_with_metrics(
            &outcome.trace,
            ledger,
            snap,
            routebricks::telemetry::cycles::ticks_per_sec() / 1e6,
        )
    );
    eprintln!(
        "fib churn smoke OK: {} packets forwarded by {} workers across {} \
         generations ({} route updates applied concurrently), {} snapshots reclaimed",
        PACKETS,
        mt.workers(),
        stats.generation,
        updates_applied,
        stats.reclaimed,
    );
}
