//! CI gate for the simulated NIC descriptor rings.
//!
//! Drives `FromDevice`/`ToDevice` directly (no scheduler in the way) and
//! asserts the ring invariants the rest of the workspace builds on:
//!
//! * **Conservation** — on every ring, `posted = reclaimed + in-ring`;
//!   no descriptor is ever lost or double-reclaimed, across `kn` values
//!   and many wraparounds of a small ring.
//! * **Losslessness below capacity** — offered load the ring can hold
//!   never drops a frame: overflow waits on the wire and stalls are
//!   recorded, `rx_dropped` stays zero without a pool bound.
//! * **Stalls at overload** — a burst larger than the ring depth records
//!   descriptor stalls (the device boundary is visibly the bottleneck).
//! * **Amortisation** — for the same frame count, `kn = 16` rings at
//!   least 8× fewer doorbells than `kn = 1` on both RX and TX rings.
//!
//! Exits non-zero on any violation; prints one summary line per check.

use routebricks::click::elements::{FromDevice, ToDevice};
use routebricks::click::{Element, Output};
use routebricks::packet::{NicStats, Packet};

const FRAMES: usize = 4_096;
const RING: usize = 64;

fn conserved(s: &NicStats, in_ring: usize) -> bool {
    s.posted == s.reclaimed + in_ring as u64
}

/// Pushes `n` frames through a FromDevice with the given geometry,
/// polling to empty, and returns (polled, stats).
fn rx_pass(kn: usize, n: usize) -> (usize, NicStats, u64) {
    let mut dev = FromDevice::new(0, 32);
    dev.set_ring_depth(RING);
    dev.set_nic_batch(kn);
    for i in 0..n {
        dev.inject(Packet::from_slice(&(i as u32).to_be_bytes()));
    }
    let mut out = Output::new();
    let mut polled = 0;
    while dev.run_task(&mut out) {
        polled += out.len();
        out.drain().for_each(drop);
    }
    let stats = dev.rx_ring_stats();
    assert!(
        conserved(&stats, dev.pending()),
        "RX kn={kn}: posted {} != reclaimed {} + in-ring",
        stats.posted,
        stats.reclaimed
    );
    (polled, stats, dev.rx_dropped())
}

/// Pushes `n` frames through a ToDevice and returns its ring stats.
fn tx_pass(kn: usize, n: usize) -> (u64, NicStats) {
    let mut dev = ToDevice::new(32, false);
    dev.set_ring_depth(RING);
    dev.set_nic_batch(kn);
    let mut out = Output::new();
    for i in 0..n {
        dev.push(0, Packet::from_slice(&(i as u32).to_be_bytes()), &mut out);
    }
    let stats = dev.tx_ring_stats();
    assert!(
        conserved(&stats, 0),
        "TX kn={kn}: posted {} != reclaimed {} with ring drained",
        stats.posted,
        stats.reclaimed
    );
    (dev.sent_packets(), stats)
}

fn main() {
    // Conservation + losslessness, across kn and ~64 ring wraparounds.
    for kn in [1usize, 4, 16] {
        let (polled, rx, dropped) = rx_pass(kn, FRAMES);
        assert_eq!(polled, FRAMES, "RX kn={kn}: every frame polled");
        assert_eq!(dropped, 0, "RX kn={kn}: below-capacity load never drops");
        let (sent, _tx) = tx_pass(kn, FRAMES);
        assert_eq!(sent as usize, FRAMES, "TX kn={kn}: every frame sent");
        eprintln!(
            "nic_smoke  kn={kn:2}  frames={FRAMES} posted={} reclaimed={} \
             doorbells={} stalls={}",
            rx.posted, rx.reclaimed, rx.doorbells, rx.stalls
        );
    }

    // Overload: a 4096-frame offered burst against a 64-deep ring must
    // record descriptor stalls (frames wait on the wire, none drop).
    let (_, rx, dropped) = rx_pass(1, FRAMES);
    assert!(
        rx.stalls > 0,
        "a {FRAMES}-frame burst against a {RING}-deep ring must stall"
    );
    assert_eq!(dropped, 0, "overload waits on the wire, never drops");
    eprintln!(
        "nic_smoke  overload: {} descriptor stalls, 0 drops",
        rx.stalls
    );

    // Amortisation: kn=16 rings at least 8x fewer doorbells than kn=1.
    let (_, rx1, _) = rx_pass(1, FRAMES);
    let (_, rx16, _) = rx_pass(16, FRAMES);
    assert!(
        rx16.doorbells * 8 <= rx1.doorbells,
        "RX doorbells must amortise: kn=1 {} vs kn=16 {}",
        rx1.doorbells,
        rx16.doorbells
    );
    let (_, tx1) = tx_pass(1, FRAMES);
    let (_, tx16) = tx_pass(16, FRAMES);
    assert!(
        tx16.doorbells * 8 <= tx1.doorbells,
        "TX doorbells must amortise: kn=1 {} vs kn=16 {}",
        tx1.doorbells,
        tx16.doorbells
    );
    eprintln!(
        "nic_smoke  amortisation: rx {} -> {} doorbells, tx {} -> {} (kn 1 -> 16)",
        rx1.doorbells, rx16.doorbells, tx1.doorbells, tx16.doorbells
    );
    eprintln!("nic_smoke  OK: conservation, losslessness, stalls and amortisation hold");
}
