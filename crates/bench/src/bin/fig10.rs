//! Regenerates **Fig. 10**: per-packet load on memory buses, socket-I/O
//! links, PCIe buses and the inter-socket link vs input rate, with
//! nominal and empirical bounds.

use routebricks::hw::accounting::load_series;
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::{Application, CostModel};
use routebricks::hw::spec::Component;
use routebricks::report::TextTable;

fn main() {
    println!("Fig. 10 — bus loads (bytes/packet) vs input rate (64 B packets)\n");
    let model = ServerModel::prototype();
    let rates: Vec<f64> = [2.0, 5.0, 10.0, 15.0, 19.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let apps = [
        ("fwd", Application::MinimalForwarding),
        ("rtr", Application::IpRouting),
        ("ipsec", Application::Ipsec),
    ];
    for component in [
        Component::Memory,
        Component::IoLink,
        Component::Pcie,
        Component::InterSocket,
    ] {
        println!("{component}:");
        let mut table = TextTable::new([
            "rate (Mpps)",
            "fwd B/pkt",
            "rtr B/pkt",
            "ipsec B/pkt",
            "empirical bound",
            "nominal bound",
        ]);
        let series: Vec<_> = apps
            .iter()
            .map(|(_, app)| load_series(&model, &CostModel::tuned(*app), component, 64, &rates))
            .collect();
        for (i, &rate) in rates.iter().enumerate() {
            table.row([
                format!("{:.0}", rate / 1e6),
                format!("{:.0}", series[0].points[i].measured),
                format!("{:.0}", series[1].points[i].measured),
                format!("{:.0}", series[2].points[i].measured),
                format!("{:.0}", series[0].points[i].empirical_bound),
                format!("{:.0}", series[0].points[i].nominal_bound),
            ]);
        }
        println!("{table}");
        let saturates = series.iter().any(|s| !s.never_saturates());
        println!(
            "  → {}\n",
            if saturates {
                "saturates in range"
            } else {
                "well below both bounds at every rate (non-bottleneck)"
            }
        );
    }
    println!(
        "All four bus families stay clear of their empirical bounds across\n\
         the sweep: \"these traditional problem areas for packet processing\n\
         are no longer the primary performance limiters\" (§5.3, item 3)."
    );
}
