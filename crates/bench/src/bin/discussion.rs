//! Regenerates the **§8 discussion** data points: form factor, power
//! and cost of server-based routers versus the contemporary hardware
//! reference points the paper quotes.

use routebricks::report::TextTable;
use routebricks::vlb::sizing::{layout, Layout, ServerConfig};

/// §8's per-server figures for the RB4-era machines.
const SERVER_POWER_W: f64 = 650.0; // RB4: 2.6 kW / 4 servers.
const SERVER_COST_USD: f64 = 3_625.0; // RB4: $14,500 / 4 servers.
const SERVER_RACK_UNITS: f64 = 1.0;

fn main() {
    println!("§8 — form factor, power and cost\n");

    // The RB4 data points, straight from the model.
    let mut table = TextTable::new(["metric", "RB4 (model)", "paper reference point"]);
    table.row([
        "power, 40 Gbps router".to_string(),
        format!("{:.1} kW (4 servers)", 4.0 * SERVER_POWER_W / 1e3),
        "RB4: 2.6 kW; Cisco 7603: 1.6 kW".to_string(),
    ]);
    table.row([
        "cost, 40 Gbps router".to_string(),
        format!("${:.1}k (4 servers)", 4.0 * SERVER_COST_USD / 1e3),
        "RB4 parts: $14.5k; Cisco 7603 quote: $70k".to_string(),
    ]);
    table.row([
        "form factor, 40 Gbps".to_string(),
        format!("{:.0}U", 4.0 * SERVER_RACK_UNITS),
        "4U (paper: \"not unreasonable\")".to_string(),
    ]);
    table.row([
        "form factor, 300–400 Gbps".to_string(),
        "30–40 × 1U servers = 30–40U".to_string(),
        "paper estimate: 30U; Cisco 7600: 360 Gbps in 21U".to_string(),
    ]);
    println!("{table}");

    // Scale-out projection: power/cost for larger port counts using the
    // Fig. 3 layouts (current-server configuration).
    println!("scale-out projection (current servers, 10 Gbps ports):\n");
    let mut proj = TextTable::new([
        "ext. ports",
        "servers",
        "power (kW)",
        "cost ($k)",
        "rack units",
    ]);
    for n in [4usize, 16, 64, 256, 1024] {
        let servers = match layout(&ServerConfig::current(), n, 10e9) {
            Layout::Mesh { servers } => servers,
            Layout::NFly {
                port_servers,
                relay_servers,
                ..
            } => port_servers + relay_servers,
            Layout::Infeasible => continue,
        };
        proj.row([
            n.to_string(),
            servers.to_string(),
            format!("{:.1}", servers as f64 * SERVER_POWER_W / 1e3),
            format!("{:.0}", servers as f64 * SERVER_COST_USD / 1e3),
            format!("{:.0}", servers as f64 * SERVER_RACK_UNITS),
        ]);
    }
    println!("{proj}");
    println!(
        "The paper's verdict stands: the server cluster pays ~60% more power\n\
         than the equivalent hardware router and wins heavily on parts cost,\n\
         with programmability as the qualitative differentiator (§8)."
    );
}
