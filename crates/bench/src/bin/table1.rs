//! Regenerates **Table 1**: forwarding rate vs polling configuration.
//!
//! Prints both the closed-form model and the discrete-event simulator's
//! emergent rate for each (kp, kn) batching configuration, next to the
//! paper's measurement.

use rb_bench::{compare, paper};
use routebricks::hw::analytic::ServerModel;
use routebricks::hw::cost::{Application, BatchingConfig, CostModel};
use routebricks::hw::sim::{SimConfig, Simulator};
use routebricks::report::TextTable;

fn main() {
    println!("Table 1 — forwarding rates vs polling configuration (64 B packets)\n");
    let model = ServerModel::prototype();
    let mut table = TextTable::new([
        "configuration",
        "model Gbps (vs paper)",
        "DES Gbps",
        "bottleneck",
    ]);
    for (kp, kn, paper_gbps) in paper::TABLE1 {
        let batching = BatchingConfig { kp, kn };
        let rate = model.rate_with_batching(Application::MinimalForwarding, batching, 64.0);

        // Drive the simulator into saturation and read the carried rate.
        let cost = CostModel {
            app: Application::MinimalForwarding,
            batching,
        };
        let mut cfg = SimConfig::prototype(cost, rate.pps * 1.3);
        cfg.duration_ns = 4_000_000;
        let sim = Simulator::new(cfg).run();

        table.row([
            format!("kp={kp:<2} kn={kn:<2}"),
            compare(rate.gbps(), paper_gbps),
            format!("{:.2}", sim.achieved_pps * 64.0 * 8.0 / 1e9),
            rate.bottleneck.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Poll-driven batching (kp) amortises per-poll book-keeping; NIC-driven\n\
         batching (kn) amortises descriptor DMA. Both are needed to reach the\n\
         ~9.7 Gbps CPU-bound ceiling the paper reports."
    );
}
