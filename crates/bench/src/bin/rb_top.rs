//! `top`-style live view of a running router, over the embedded scrape
//! endpoint.
//!
//! Points at a router built with `serve_metrics` (or the
//! `RuntimeConfig(serve_metrics ...)` knob), polls the JSON routes and
//! redraws the interval table, per-stage shares, and journal tail with
//! [`render_top_with_events`] — the same formatter the in-process
//! harvest path uses, fed from the wire instead of from shared rings.
//!
//!     rb_top 127.0.0.1:9898              # redraw every second
//!     rb_top 127.0.0.1:9898 --ms 250     # faster refresh
//!     rb_top 127.0.0.1:9898 --polls 3    # fixed number of polls (CI)
//!
//! The JSON exposition carries interval quantiles rather than the full
//! latency sketch, so the rebuilt histogram holds one sample per
//! exported quantile — the p50/p99 columns show the served values, not
//! a re-aggregation.

use routebricks::telemetry::http::http_get;
use routebricks::telemetry::{
    json, render_top_with_events, DropCause, Event, EventKind, EventLog, IntervalStats,
    Log2Histogram, SloState, StageDelta,
};
use std::net::SocketAddr;
use std::time::Duration;

const ROWS: usize = 10;

fn num(v: &json::Value, key: &str) -> u64 {
    v.get(key).and_then(json::Value::as_f64).unwrap_or(0.0) as u64
}

/// Interval series + stage labels + tick rate, as served on the wire.
type WireSeries = (Vec<IntervalStats>, Vec<(String, String)>, f64);

/// Rebuilds the interval series (and the tick rate) from the
/// `/timeseries.json` body.
fn parse_series(body: &str) -> Option<WireSeries> {
    let v = json::parse(body).ok()?;
    let tps = v.get("ticks_per_sec").and_then(json::Value::as_f64)?;
    let ticks_per_us = tps / 1e6;
    let names: Vec<(String, String)> = v
        .get("stage_names")
        .and_then(json::Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|s| {
                    Some((
                        s.get("name")?.as_str()?.to_string(),
                        s.get("class")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let mut series = Vec::new();
    for b in v.get("intervals").and_then(json::Value::as_array)? {
        let mut out = IntervalStats::empty(num(b, "seq"), 0, num(b, "start_tick"));
        out.end_tick = num(b, "end_tick");
        out.quanta = num(b, "quanta");
        out.empty_polls = num(b, "empty_polls");
        out.sourced = num(b, "sourced");
        out.forwarded = num(b, "forwarded");
        out.tx_bytes = num(b, "tx_bytes");
        out.credit_stalls = num(b, "credit_stalls");
        out.nic_desc_stalls = num(b, "nic_desc_stalls");
        if let Some(json::Value::Obj(drops)) = b.get("drops") {
            for (cause, n) in drops {
                if let Some(i) = DropCause::ALL.iter().position(|c| c.as_str() == cause) {
                    out.drops[i] = n.as_f64().unwrap_or(0.0) as u64;
                }
            }
        }
        if let Some(stages) = b.get("stages").and_then(json::Value::as_array) {
            out.stages = stages
                .iter()
                .map(|d| StageDelta {
                    packets: num(d, "packets"),
                    cycles: num(d, "cycles"),
                })
                .collect();
        }
        let mut lat = Log2Histogram::new();
        for q in ["lat_p50_us", "lat_p99_us"] {
            let us = b.get(q).and_then(json::Value::as_f64).unwrap_or(0.0);
            if us > 0.0 {
                lat.record((us * ticks_per_us) as u64);
            }
        }
        out.latency = lat;
        series.push(out);
    }
    Some((series, names, tps))
}

/// Rebuilds the journal from the `/events.json` body.
fn parse_events(body: &str) -> EventLog {
    let mut log = EventLog::default();
    for (i, line) in body.lines().enumerate() {
        let Ok(v) = json::parse(line) else { continue };
        if i == 0 {
            log.overflow = num(&v, "overflow");
            continue;
        }
        let Some(kind) = v
            .get("kind")
            .and_then(json::Value::as_str)
            .and_then(|s| EventKind::ALL.iter().find(|k| k.as_str() == s).copied())
        else {
            continue;
        };
        log.events.push(Event {
            seq: log.events.len() as u64,
            core: num(&v, "core") as usize,
            tick: num(&v, "tick"),
            kind,
            arg: num(&v, "arg"),
        });
    }
    log
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<SocketAddr> = None;
    let mut period_ms = 1000u64;
    let mut polls = 0u64; // 0 = until interrupted.
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ms" => {
                period_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ms takes milliseconds")
            }
            "--polls" => {
                polls = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--polls takes a count")
            }
            other => {
                addr = Some(
                    other
                        .parse()
                        .unwrap_or_else(|e| panic!("bad address `{other}`: {e}")),
                )
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: rb_top <host:port> [--ms <period>] [--polls <n>]");
        std::process::exit(2);
    };

    let mut done = 0u64;
    loop {
        match http_get(addr, "/timeseries.json") {
            Ok((200, body)) => {
                let Some((series, names, tps)) = parse_series(&body) else {
                    eprintln!("rb_top: unparsable /timeseries.json from {addr}");
                    std::process::exit(1);
                };
                let log = http_get(addr, "/events.json")
                    .ok()
                    .map(|(_, b)| parse_events(&b))
                    .unwrap_or_default();
                let health = http_get(addr, "/healthz")
                    .ok()
                    .and_then(|(status, b)| {
                        let state = json::parse(&b)
                            .ok()?
                            .get("state")
                            .and_then(json::Value::as_str)
                            .map(str::to_string)?;
                        Some((status, state))
                    })
                    .unwrap_or((0, "unknown".to_string()));
                // Clear + home, like top(1); harmless when piped.
                print!("\x1b[2J\x1b[H");
                println!(
                    "rb_top {addr}  health={} ({})  intervals={}  events={}",
                    health.1,
                    health.0,
                    series.len(),
                    log.len()
                );
                print!(
                    "{}",
                    render_top_with_events(&series, None, tps, ROWS, Some((&log, &names)))
                );
                if health.1 == SloState::Burning.as_str() {
                    println!("ALERT: SLO burning — see /events.json for the transition arc");
                }
            }
            Ok((status, _)) => {
                eprintln!("rb_top: {addr}/timeseries.json returned {status}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("rb_top: cannot reach {addr}: {e}");
                std::process::exit(1);
            }
        }
        done += 1;
        if polls > 0 && done >= polls {
            break;
        }
        std::thread::sleep(Duration::from_millis(period_ms));
    }
}
