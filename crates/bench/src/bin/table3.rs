//! Regenerates **Table 3**: instructions/packet and CPI per application.

use rb_bench::{compare, paper};
use routebricks::hw::cost::{Application, CostModel};
use routebricks::report::TextTable;

fn main() {
    println!("Table 3 — instructions per packet and cycles per instruction (64 B)\n");
    let mut table = TextTable::new([
        "application",
        "instr/packet",
        "model CPI (vs paper)",
        "cycles/packet",
    ]);
    let apps = [
        Application::MinimalForwarding,
        Application::IpRouting,
        Application::Ipsec,
    ];
    for (app, (name, ipp, cpi_paper)) in apps.into_iter().zip(paper::TABLE3) {
        let m = CostModel::tuned(app);
        table.row([
            name.to_string(),
            format!("{ipp:.0}"),
            compare(m.cpi(), cpi_paper),
            format!("{:.0}", m.cpu_cycles(64)),
        ]);
    }
    println!("{table}");
    println!(
        "CPI near 1.2 for the memory-touching applications and ~0.55 for the\n\
         compute-dense IPsec matches the paper's \"the CPUs are efficiently\n\
         used\" reading: performance is limited by cycle count, not stalls."
    );
}
