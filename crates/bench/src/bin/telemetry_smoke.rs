//! CI smoke test for the telemetry path: builds a graph with
//! `RuntimeConfig(telemetry cycles)` from configuration text, runs it,
//! serializes the snapshot, re-parses the JSON and asserts every element
//! that handled packets has a nonzero cycle row. Exits nonzero on any
//! violation, so `scripts/ci.sh` can gate on it.

use routebricks::click::build_router;
use routebricks::telemetry::json;

fn main() {
    let config = "
        RuntimeConfig(telemetry cycles, batch_size 32);
        src :: InfiniteSource(64, 5000);
        chk :: CheckIPHeader(14);
        cnt :: Counter;
        q   :: Queue(8192);
        tx  :: ToDevice(32);
        bad :: Discard;

        src -> chk;
        chk [0] -> cnt -> q -> tx;
        chk [1] -> bad;
    ";
    let mut router = build_router(config).expect("config parses");
    router.run_until_idle(u64::MAX);

    let snap = router.telemetry_snapshot();
    let text = snap.to_json();
    let parsed = json::parse(&text).expect("snapshot JSON parses");

    assert_eq!(
        parsed.get("level").and_then(json::Value::as_str),
        Some("cycles"),
        "level survives the round trip"
    );
    let stages = parsed
        .get("stages")
        .and_then(json::Value::as_array)
        .expect("stages array present");
    assert!(!stages.is_empty(), "instrumented run produced stage rows");

    let mut active = 0usize;
    for stage in stages {
        let name = stage
            .get("name")
            .and_then(json::Value::as_str)
            .expect("stage has a name");
        let packets = stage
            .get("packets")
            .and_then(json::Value::as_f64)
            .expect("stage has packets");
        let cycles = stage
            .get("cycles")
            .and_then(json::Value::as_f64)
            .expect("stage has cycles");
        if packets > 0.0 {
            assert!(
                cycles > 0.0,
                "element `{name}` handled packets but recorded no cycles"
            );
            active += 1;
        }
    }
    // src, chk, cnt, q, tx all carry traffic; only `bad` may be idle.
    assert!(active >= 5, "expected >= 5 active elements, saw {active}");
    assert!(
        parsed
            .get("busy_cycles")
            .and_then(json::Value::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "busy cycles accounted"
    );
    eprintln!("telemetry smoke OK: {active} active elements with nonzero cycle rows");
}
