//! The Fig. 3 cost model: servers required for an N-port router.
//!
//! The paper evaluates three server configurations at R = 10 Gbps/port
//! with NICs of 2×10 GbE or 8×1 GbE per slot:
//!
//! 1. *Current*: one external port per server, 5 NIC slots.
//! 2. *More NICs*: one external port per server, 20 NIC slots.
//! 3. *Faster servers*: two external ports per server, 20 NIC slots.
//!
//! For each port count `N` we compute the cheapest feasible layout: a
//! full mesh while the per-server fanout allows (internal links need
//! `2sR/N` each, §3.3), otherwise a k-ary n-fly whose relay ranks add
//! intermediate servers. An Ethernet-switched Clos alternative is costed
//! in "server equivalents" using the paper's conversion (one $2,000
//! server ≈ four $500 Arista 10 GbE switch ports).
//!
//! The exact n-fly construction in the paper is under-specified; our
//! reconstruction (one relay rank per base-k digit, each relay handling
//! ≤ 2R of traffic so its processing requirement matches a port server's)
//! is conservative — see EXPERIMENTS.md for the fidelity notes.

/// Per-slot NIC options (the paper's §3.3 assumptions).
const PORTS_1G_PER_SLOT: usize = 8;
const PORTS_10G_PER_SLOT: usize = 2;

/// A server configuration from Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Human-readable label.
    pub name: &'static str,
    /// External router ports each server can terminate (`s`).
    pub external_ports: usize,
    /// Total NIC slots.
    pub nic_slots: usize,
}

impl ServerConfig {
    /// Configuration 1: current servers.
    pub fn current() -> ServerConfig {
        ServerConfig {
            name: "one ext. port/server, 5 NIC slots",
            external_ports: 1,
            nic_slots: 5,
        }
    }

    /// Configuration 2: more NICs.
    pub fn more_nics() -> ServerConfig {
        ServerConfig {
            name: "one ext. port/server, 20 NIC slots",
            external_ports: 1,
            nic_slots: 20,
        }
    }

    /// Configuration 3: faster servers with more NICs.
    pub fn faster() -> ServerConfig {
        ServerConfig {
            name: "two ext. ports/server, 20 NIC slots",
            external_ports: 2,
            nic_slots: 20,
        }
    }

    /// NIC slots left for internal links after terminating the external
    /// ports (10 GbE external ports, 2 per slot).
    pub fn internal_slots(&self) -> usize {
        self.nic_slots - self.external_ports.div_ceil(PORTS_10G_PER_SLOT)
    }

    /// Internal 1 GbE port budget.
    pub fn internal_1g_ports(&self) -> usize {
        self.internal_slots() * PORTS_1G_PER_SLOT
    }

    /// Internal 10 GbE port budget.
    pub fn internal_10g_ports(&self) -> usize {
        self.internal_slots() * PORTS_10G_PER_SLOT
    }
}

/// How a router of a given port count is realised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Layout {
    /// Full mesh of port servers.
    Mesh {
        /// Number of servers (= port servers).
        servers: usize,
    },
    /// k-ary n-fly with relay ranks.
    NFly {
        /// Radix chosen.
        k: usize,
        /// Relay stages.
        stages: usize,
        /// Port servers.
        port_servers: usize,
        /// Intermediate relay servers.
        relay_servers: usize,
    },
    /// No feasible layout at this scale for this server configuration.
    Infeasible,
}

impl Layout {
    /// Total servers (infinity-like sentinel for infeasible layouts).
    pub fn servers(&self) -> Option<usize> {
        match self {
            Layout::Mesh { servers } => Some(*servers),
            Layout::NFly {
                port_servers,
                relay_servers,
                ..
            } => Some(port_servers + relay_servers),
            Layout::Infeasible => None,
        }
    }
}

/// Physical ports needed on each server to realise `links` internal
/// links of `link_bps` each, preferring whichever NIC flavour needs
/// fewer slots. Returns `None` when neither fits the slot budget.
fn links_fit(config: &ServerConfig, links: usize, link_bps: f64) -> bool {
    // 1 GbE bonding.
    let bond_1g = (link_bps / 1e9).ceil().max(1.0) as usize;
    let fits_1g = links * bond_1g <= config.internal_1g_ports();
    // 10 GbE bonding.
    let bond_10g = (link_bps / 10e9).ceil().max(1.0) as usize;
    let fits_10g = links * bond_10g <= config.internal_10g_ports();
    fits_1g || fits_10g
}

/// Computes the cheapest layout for `n_ports` external ports at
/// `line_rate_bps` per port under `config`.
pub fn layout(config: &ServerConfig, n_ports: usize, line_rate_bps: f64) -> Layout {
    assert!(n_ports >= 2, "a router needs at least two ports");
    let s = config.external_ports;
    let port_servers = n_ports.div_ceil(s);

    // Full mesh: N/s − 1 links of 2sR/N each (§3.3).
    let mesh_link = 2.0 * s as f64 * line_rate_bps / n_ports as f64;
    if links_fit(config, port_servers - 1, mesh_link) {
        return Layout::Mesh {
            servers: port_servers,
        };
    }

    // k-ary n-fly. Relay servers dedicate every NIC slot to internal
    // 1 GbE links; Ethernet is full duplex, so a relay with P ports has
    // radix k = P (P inbound and P outbound gigabits). Each node spreads
    // its VLB load over its k next-rank links, keeping links at or below
    // 1 Gbps once k ≥ 2sR/1G. Relay ranks are sized by the processing
    // budget: a dedicated relay forwards at up to 3sR (§3.2's ceiling),
    // and a rank must absorb the cluster's total 2·M·sR of VLB traffic,
    // so a rank needs ⌈2M/3⌉ relays. Stage count follows the base-k
    // digit decomposition of the port-server index.
    let relay_ports = config.nic_slots * PORTS_1G_PER_SLOT;
    let k = relay_ports;
    let min_k = (2.0 * s as f64 * line_rate_bps / 1e9).ceil() as usize;
    if k < min_k.max(2) {
        return Layout::Infeasible;
    }
    let mut stages = 0usize;
    let mut reach = 1usize;
    while reach < port_servers {
        reach = reach.saturating_mul(k);
        stages += 1;
    }
    let relays_per_stage = (2 * port_servers).div_ceil(3);
    Layout::NFly {
        k,
        stages,
        port_servers,
        relay_servers: stages * relays_per_stage,
    }
}

/// Cost of the rejected switched-cluster alternative, in server
/// equivalents: N packet-processing servers plus a strictly non-blocking
/// Clos of 48-port 10 GbE switches at 4 switch ports per server
/// equivalent (§3.3's Arista arithmetic).
pub fn switched_cluster_server_equivalents(n_ports: usize) -> f64 {
    let switch_ports = clos_switch_ports(n_ports);
    n_ports as f64 + switch_ports as f64 / 4.0
}

/// Switch ports consumed by a strictly non-blocking Clos built from
/// 48-port switches serving `n` endpoints.
fn clos_switch_ports(n: usize) -> usize {
    const RADIX: usize = 48;
    if n <= RADIX {
        return n;
    }
    // Three-stage Clos: ingress/egress switches with `in_ports = 16`
    // endpoint ports and `m = 2·16 − 1 = 31 ≤ 32` middle links (strictly
    // non-blocking, n + m ≤ 48). Middle switches are recursively sized.
    let in_ports = 16;
    let middles = 2 * in_ports - 1;
    let edge_switches = n.div_ceil(in_ports);
    // Each edge switch burns all 48 ports; middle fabric serves
    // edge_switches endpoints per middle plane.
    let edge_ports = edge_switches * RADIX;
    let middle_ports = middles * clos_switch_ports(edge_switches);
    edge_ports + middle_ports
}

/// One row of the Fig. 3 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCost {
    /// External ports.
    pub n_ports: usize,
    /// Servers per configuration (order: current, more NICs, faster);
    /// `None` = infeasible.
    pub servers: [Option<usize>; 3],
    /// Layout chosen per configuration.
    pub layouts: [Layout; 3],
    /// Switched-cluster cost in server equivalents.
    pub switched_equivalents: f64,
}

/// Computes the Fig. 3 dataset for the given port counts.
pub fn fig3_dataset(port_counts: &[usize], line_rate_bps: f64) -> Vec<ClusterCost> {
    let configs = [
        ServerConfig::current(),
        ServerConfig::more_nics(),
        ServerConfig::faster(),
    ];
    port_counts
        .iter()
        .map(|&n| {
            let layouts = [
                layout(&configs[0], n, line_rate_bps),
                layout(&configs[1], n, line_rate_bps),
                layout(&configs[2], n, line_rate_bps),
            ];
            ClusterCost {
                n_ports: n,
                servers: [
                    layouts[0].servers(),
                    layouts[1].servers(),
                    layouts[2].servers(),
                ],
                layouts,
                switched_equivalents: switched_cluster_server_equivalents(n),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 10e9;

    #[test]
    fn internal_port_budgets() {
        assert_eq!(ServerConfig::current().internal_1g_ports(), 32);
        assert_eq!(ServerConfig::more_nics().internal_1g_ports(), 152);
        // Faster servers: 2 external ports fit one dual-10G slot.
        assert_eq!(ServerConfig::faster().internal_1g_ports(), 152);
    }

    #[test]
    fn mesh_transitions_match_paper() {
        // §3.3: mesh feasible to N=32 (current) and N=128 (more NICs).
        assert!(matches!(
            layout(&ServerConfig::current(), 32, R),
            Layout::Mesh { servers: 32 }
        ));
        assert!(!matches!(
            layout(&ServerConfig::current(), 64, R),
            Layout::Mesh { .. }
        ));
        assert!(matches!(
            layout(&ServerConfig::more_nics(), 128, R),
            Layout::Mesh { servers: 128 }
        ));
        assert!(!matches!(
            layout(&ServerConfig::more_nics(), 256, R),
            Layout::Mesh { .. }
        ));
    }

    #[test]
    fn faster_servers_halve_the_mesh() {
        // Two ports per server → N=256 needs 128 servers, still a mesh.
        match layout(&ServerConfig::faster(), 256, R) {
            Layout::Mesh { servers } => assert_eq!(servers, 128),
            other => panic!("expected mesh, got {other:?}"),
        }
    }

    #[test]
    fn beyond_mesh_uses_relays() {
        // §3.3: "even with current servers, we need 2 intermediate
        // servers per port to provide N = 1024 external ports."
        match layout(&ServerConfig::current(), 1024, R) {
            Layout::NFly {
                port_servers,
                relay_servers,
                stages,
                ..
            } => {
                assert_eq!(port_servers, 1024);
                assert_eq!(stages, 2);
                let per_port = relay_servers as f64 / 1024.0;
                assert!(
                    (1.0..=2.0).contains(&per_port),
                    "relays per port: {per_port:.2}"
                );
            }
            other => panic!("expected n-fly, got {other:?}"),
        }
    }

    #[test]
    fn servers_grow_monotonically_with_ports() {
        let data = fig3_dataset(&[4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048], R);
        for cfg in 0..3 {
            let counts: Vec<usize> = data.iter().filter_map(|row| row.servers[cfg]).collect();
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "config {cfg}: {counts:?}"
            );
            assert!(!counts.is_empty());
        }
    }

    #[test]
    fn better_servers_never_need_more_machines() {
        let data = fig3_dataset(&[16, 64, 256, 1024], R);
        for row in &data {
            if let (Some(a), Some(b)) = (row.servers[0], row.servers[1]) {
                assert!(
                    b <= a,
                    "more NICs should not cost more at N={}",
                    row.n_ports
                );
            }
            if let (Some(b), Some(c)) = (row.servers[1], row.servers[2]) {
                assert!(c <= b, "faster should not cost more at N={}", row.n_ports);
            }
        }
    }

    #[test]
    fn switched_cluster_costs_more() {
        // §3.3: the Arista-based Clos is more expensive than the server
        // cluster. We assert it strictly for the cheapest configuration
        // at every port count (the paper's conclusion), and within a
        // small tolerance for the weakest configuration, whose n-fly
        // overhead brings it close to the switch line at mid scales.
        let data = fig3_dataset(&[8, 32, 128, 512, 2048], R);
        for row in &data {
            let cheapest = row
                .servers
                .into_iter()
                .flatten()
                .min()
                .expect("some config is feasible");
            assert!(
                row.switched_equivalents > cheapest as f64,
                "N={}: switched {} vs best cluster {}",
                row.n_ports,
                row.switched_equivalents,
                cheapest
            );
            for servers in row.servers.into_iter().flatten() {
                assert!(
                    row.switched_equivalents > 0.8 * servers as f64,
                    "N={}: switched {} far below cluster {}",
                    row.n_ports,
                    row.switched_equivalents,
                    servers
                );
            }
        }
    }

    #[test]
    fn small_switched_cluster_is_n_plus_switch() {
        // N=32 fits one switch: N servers + 32 ports / 4.
        let eq = switched_cluster_server_equivalents(32);
        assert!((eq - (32.0 + 8.0)).abs() < 1e-9);
    }
}
