//! The §6.2 reordering metric.
//!
//! "We measure reordering as the fraction of same-flow packet sequences
//! that were reordered within their TCP/UDP flow; for instance, if a TCP
//! flow consists of 5 packets that enter the cluster in sequence
//! ⟨p1..p5⟩ and exit in ⟨p1, p4, p2, p3, p5⟩, we count one reordered
//! sequence." We interpret a "reordered sequence" as a maximal run of
//! consecutive exits that are out of order relative to the entry
//! sequence: each descent (a packet arriving with a lower sequence
//! number than the highest seen) *starts* a reordered sequence, and
//! subsequent descents inside the same disturbance do not double-count.

use rb_packet::FiveTuple;
use std::collections::HashMap;

/// RFC 1982 serial-number comparison: `true` when `a` is ahead of `b` in
/// wrapping u32 sequence space. A delta of more than half the space is
/// read as a wrap, not a huge jump — so `0` is *ahead of* `u32::MAX`,
/// and long-lived flows survive their sequence counters rolling over.
fn seq_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < 1 << 31
}

/// Per-flow reordering tracker state.
#[derive(Debug, Default, Clone, Copy)]
struct FlowState {
    highest_seen: Option<u32>,
    packets: u64,
    in_disturbance: bool,
    reordered_sequences: u64,
}

/// Counts reordered sequences per flow at the cluster egress.
#[derive(Debug, Default)]
pub struct ReorderCounter {
    flows: HashMap<FiveTuple, FlowState>,
}

impl ReorderCounter {
    /// Creates an empty counter.
    pub fn new() -> ReorderCounter {
        ReorderCounter::default()
    }

    /// Observes a packet of `flow` with ingress-assigned sequence number
    /// `seq` exiting the cluster.
    pub fn observe(&mut self, flow: &FiveTuple, seq: u32) {
        let state = self.flows.entry(*flow).or_default();
        state.packets += 1;
        match state.highest_seen {
            Some(high) if seq_newer(high, seq) => {
                // Behind the highest seen (wrap-aware): starts (or
                // continues) a disturbance.
                if !state.in_disturbance {
                    state.in_disturbance = true;
                    state.reordered_sequences += 1;
                }
            }
            Some(high) => {
                // Equal, or ahead — including a wrapped-forward advance
                // past `u32::MAX`, which plain `max` would discard.
                if seq_newer(seq, high) {
                    state.highest_seen = Some(seq);
                }
                state.in_disturbance = false;
            }
            None => {
                state.highest_seen = Some(seq);
                state.in_disturbance = false;
            }
        }
    }

    /// Total packets observed.
    pub fn packets(&self) -> u64 {
        self.flows.values().map(|s| s.packets).sum()
    }

    /// Total reordered sequences across flows.
    pub fn reordered_sequences(&self) -> u64 {
        self.flows.values().map(|s| s.reordered_sequences).sum()
    }

    /// The paper's metric: reordered sequences as a fraction of observed
    /// same-flow sequences (approximated by packets, as in the paper's
    /// percentage figures).
    pub fn reorder_fraction(&self) -> f64 {
        let packets = self.packets();
        if packets == 0 {
            return 0.0;
        }
        self.reordered_sequences() as f64 / packets as f64
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
        }
    }

    #[test]
    fn in_order_flow_counts_zero() {
        let mut c = ReorderCounter::new();
        for seq in 0..100 {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.reordered_sequences(), 0);
        assert_eq!(c.reorder_fraction(), 0.0);
    }

    #[test]
    fn papers_worked_example_counts_one() {
        // Enter ⟨1,2,3,4,5⟩, exit ⟨1,4,2,3,5⟩ → one reordered sequence.
        let mut c = ReorderCounter::new();
        for seq in [1u32, 4, 2, 3, 5] {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.reordered_sequences(), 1);
    }

    #[test]
    fn separate_disturbances_count_separately() {
        // ⟨1, 3, 2, 4, 6, 5, 7⟩: two distinct descents.
        let mut c = ReorderCounter::new();
        for seq in [1u32, 3, 2, 4, 6, 5, 7] {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.reordered_sequences(), 2);
    }

    #[test]
    fn flows_are_tracked_independently() {
        let mut c = ReorderCounter::new();
        let mut other = flow();
        other.src_port = 99;
        c.observe(&flow(), 2);
        c.observe(&other, 1); // Not reordering: different flow.
        assert_eq!(c.reordered_sequences(), 0);
        assert_eq!(c.flow_count(), 2);
    }

    #[test]
    fn duplicate_seq_is_not_reordering() {
        let mut c = ReorderCounter::new();
        c.observe(&flow(), 1);
        c.observe(&flow(), 1);
        assert_eq!(c.reordered_sequences(), 0);
    }

    #[test]
    fn wraparound_advance_is_not_reordering() {
        // A long-lived flow rolling its u32 sequence counter over:
        // …MAX-1, MAX, 0, 1, 2 is perfectly in order.
        let mut c = ReorderCounter::new();
        for seq in [u32::MAX - 1, u32::MAX, 0, 1, 2] {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.reordered_sequences(), 0, "wrap is an advance");
        assert_eq!(c.packets(), 5);
    }

    #[test]
    fn stale_packet_behind_a_wrap_counts_as_reordered() {
        // After the counter wraps to 1, a straggler from before the wrap
        // (MAX - 2) is behind, not 4 billion ahead.
        let mut c = ReorderCounter::new();
        for seq in [u32::MAX, 0, 1] {
            c.observe(&flow(), seq);
        }
        c.observe(&flow(), u32::MAX - 2);
        assert_eq!(c.reordered_sequences(), 1, "straggler is a descent");
        // Recovery: the next in-order packet ends the disturbance.
        c.observe(&flow(), 2);
        c.observe(&flow(), 3);
        assert_eq!(c.reordered_sequences(), 1);
    }

    #[test]
    fn wrap_disturbance_does_not_double_count() {
        // Several stale pre-wrap packets inside one disturbance still
        // count one reordered sequence, same as the non-wrapping rule.
        let mut c = ReorderCounter::new();
        for seq in [u32::MAX, 0, u32::MAX - 1, u32::MAX - 3, 1] {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.reordered_sequences(), 1);
    }

    #[test]
    fn fraction_is_sequences_over_packets() {
        let mut c = ReorderCounter::new();
        for seq in [0u32, 1, 5, 2, 3, 4, 6, 7, 8, 9] {
            c.observe(&flow(), seq);
        }
        assert_eq!(c.packets(), 10);
        assert_eq!(c.reordered_sequences(), 1);
        assert!((c.reorder_fraction() - 0.1).abs() < 1e-12);
    }
}
