//! Valiant load-balanced (VLB) distributed switching for cluster routers.
//!
//! This crate implements §3 of the paper:
//!
//! * [`routing`] — classic two-phase VLB and *Direct VLB* (adaptive
//!   load-balancing with local information, after Zhang-Shen & McKeown):
//!   each input node sends up to `R/N` of the traffic addressed to an
//!   output node directly and load-balances the excess.
//! * [`flowlet`] — the Flare-style flowlet scheme of §6.1 that keeps
//!   same-flow packet bursts on one path to avoid TCP reordering, falling
//!   back to packet-level balancing when a flowlet would overload its
//!   path.
//! * [`topology`] — full-mesh and k-ary n-fly interconnects with
//!   per-link capacity accounting.
//! * [`sizing`] — the Fig. 3 cost model: how many servers an N-port,
//!   R-per-port router needs under three server generations, versus an
//!   Ethernet-switched Clos cluster.
//! * [`reorder`] — the §6.2 reordering metric (fraction of same-flow
//!   sequences delivered out of order).

pub mod flowlet;
pub mod reorder;
pub mod routing;
pub mod sizing;
pub mod topology;
pub mod torus;

pub use flowlet::FlowletBalancer;
pub use reorder::ReorderCounter;
pub use routing::{DirectVlb, PathChoice, VlbConfig};
pub use sizing::{ClusterCost, ServerConfig};
pub use topology::{FullMesh, KAryNFly, Topology};
pub use torus::KAryNCube;

/// A cluster node identifier.
pub type NodeId = usize;
