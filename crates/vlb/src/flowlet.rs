//! Flowlet-based reordering avoidance (§6.1, after Flare).
//!
//! Two rules keep TCP flows in order:
//!
//! 1. Same-flow packets arriving within `δ` of each other use the same
//!    intermediate node ("flowlet" stickiness).
//! 2. When sending the whole flowlet down its pinned path would overload
//!    the corresponding link, the flowlet spills to packet-level VLB —
//!    reordering is *mostly* avoided, not guaranteed gone.
//!
//! The paper found `δ = 100 ms` ("a number well above the per-packet
//! latency introduced by the cluster") lets most flowlets stay on one
//! path.

use crate::routing::{DirectVlb, PathChoice, VlbConfig};
use crate::NodeId;
use rand::rngs::StdRng;
use rb_packet::FiveTuple;
use std::collections::HashMap;

/// The paper's flowlet gap threshold.
pub const DEFAULT_DELTA_NS: u64 = 100_000_000;

/// Per-flowlet state.
#[derive(Debug, Clone, Copy)]
struct FlowletState {
    last_seen_ns: u64,
    path: PathChoice,
}

/// Tracks per-link load for the overload check, over short windows.
#[derive(Debug)]
struct LinkMeter {
    window_ns: u64,
    capacity_bytes_per_window: f64,
    windows: HashMap<NodeId, (u64, f64)>,
}

impl LinkMeter {
    fn new(link_capacity_bps: f64, window_ns: u64) -> LinkMeter {
        LinkMeter {
            window_ns,
            capacity_bytes_per_window: link_capacity_bps / 8.0 * (window_ns as f64 / 1e9),
            windows: HashMap::new(),
        }
    }

    /// Records `bytes` to the link toward `next` and returns `true` if it
    /// fits the link's capacity in the current window.
    fn charge(&mut self, next: NodeId, bytes: usize, now_ns: u64) -> bool {
        let (start, used) = self.windows.entry(next).or_insert((now_ns, 0.0));
        if now_ns.saturating_sub(*start) >= self.window_ns {
            *start = now_ns;
            *used = 0.0;
        }
        *used += bytes as f64;
        *used <= self.capacity_bytes_per_window
    }
}

/// The flowlet-aware VLB balancer at one input node.
pub struct FlowletBalancer {
    vlb: DirectVlb,
    delta_ns: u64,
    flowlets: HashMap<FiveTuple, FlowletState>,
    links: LinkMeter,
    sticky_hits: u64,
    spills: u64,
}

impl FlowletBalancer {
    /// Creates a balancer with the paper's δ and the mesh link capacity
    /// `2R/N` (§3.2).
    pub fn new(config: VlbConfig, node: NodeId) -> FlowletBalancer {
        let link_capacity = 2.0 * config.line_rate_bps / config.nodes as f64;
        FlowletBalancer::with_params(config, node, DEFAULT_DELTA_NS, link_capacity)
    }

    /// Creates a balancer with explicit δ and per-link capacity.
    pub fn with_params(
        config: VlbConfig,
        node: NodeId,
        delta_ns: u64,
        link_capacity_bps: f64,
    ) -> FlowletBalancer {
        let window = config.window_ns;
        FlowletBalancer {
            vlb: DirectVlb::new(config, node),
            delta_ns,
            flowlets: HashMap::new(),
            links: LinkMeter::new(link_capacity_bps, window),
            sticky_hits: 0,
            spills: 0,
        }
    }

    /// Chooses the path for one packet of `flow`.
    pub fn choose(
        &mut self,
        flow: &FiveTuple,
        dst: NodeId,
        bytes: usize,
        now_ns: u64,
        rng: &mut StdRng,
    ) -> PathChoice {
        if let Some(state) = self.flowlets.get_mut(flow) {
            if now_ns.saturating_sub(state.last_seen_ns) < self.delta_ns {
                // Same flowlet: stick to its path if the link can take it.
                let next_hop = match state.path {
                    PathChoice::Direct => dst,
                    PathChoice::ViaIntermediate(mid) => mid,
                };
                if self.links.charge(next_hop, bytes, now_ns) {
                    state.last_seen_ns = now_ns;
                    self.sticky_hits += 1;
                    return state.path;
                }
                // Flowlet does not fit: spill to packet-level VLB.
                self.spills += 1;
            }
        }
        // New flowlet (or gap exceeded, or spilled): pick fresh.
        let path = self.vlb.choose(dst, bytes, now_ns, rng);
        let next_hop = match path {
            PathChoice::Direct => dst,
            PathChoice::ViaIntermediate(mid) => mid,
        };
        self.links.charge(next_hop, bytes, now_ns);
        self.flowlets.insert(
            *flow,
            FlowletState {
                last_seen_ns: now_ns,
                path,
            },
        );
        path
    }

    /// `(sticky, spilled)` packet counts: how often flowlet affinity held
    /// versus fell back to per-packet balancing.
    pub fn counts(&self) -> (u64, u64) {
        (self.sticky_hits, self.spills)
    }

    /// Evicts idle flowlet entries older than `max_idle_ns` (housekeeping
    /// for long runs).
    pub fn expire(&mut self, now_ns: u64, max_idle_ns: u64) {
        self.flowlets
            .retain(|_, s| now_ns.saturating_sub(s.last_seen_ns) < max_idle_ns);
    }

    /// Number of tracked flowlets.
    pub fn tracked(&self) -> usize {
        self.flowlets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn flow(port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a000001,
            dst_ip: 0x0a000002,
            src_port: port,
            dst_port: 80,
            proto: 6,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn packets_within_delta_share_a_path() {
        let mut b = FlowletBalancer::new(VlbConfig::classic(8), 0);
        let mut rng = rng();
        let f = flow(1000);
        let first = b.choose(&f, 3, 1000, 0, &mut rng);
        for i in 1..50u64 {
            let next = b.choose(&f, 3, 1000, i * 10_000, &mut rng);
            assert_eq!(next, first, "packet {i} switched path");
        }
        assert_eq!(b.counts().0, 49);
    }

    #[test]
    fn gap_beyond_delta_may_repath() {
        let mut b = FlowletBalancer::new(VlbConfig::classic(32), 0);
        let mut rng = rng();
        let f = flow(2000);
        // With 30 eligible intermediates, 40 fresh flowlet decisions are
        // overwhelmingly unlikely to always agree.
        let mut paths = std::collections::HashSet::new();
        for i in 0..40u64 {
            let t = i * (DEFAULT_DELTA_NS + 1);
            paths.insert(b.choose(&f, 3, 1000, t, &mut rng));
        }
        assert!(paths.len() > 1, "paths never changed across flowlet gaps");
    }

    #[test]
    fn distinct_flows_get_independent_paths() {
        let mut b = FlowletBalancer::new(VlbConfig::classic(32), 0);
        let mut rng = rng();
        let paths: std::collections::HashSet<_> = (0..64u16)
            .map(|p| b.choose(&flow(1000 + p), 3, 1000, 0, &mut rng))
            .collect();
        assert!(paths.len() > 4, "flows not spread: {}", paths.len());
    }

    #[test]
    fn oversized_flowlet_spills() {
        // Tiny link capacity: the second packet cannot stick.
        let mut b =
            FlowletBalancer::with_params(VlbConfig::classic(8), 0, DEFAULT_DELTA_NS, 8_000.0);
        let mut rng = rng();
        let f = flow(3000);
        b.choose(&f, 3, 1000, 0, &mut rng);
        for i in 1..20u64 {
            b.choose(&f, 3, 1000, i * 1000, &mut rng);
        }
        let (_, spills) = b.counts();
        assert!(spills > 0, "expected spills on an overloaded link");
    }

    #[test]
    fn expire_drops_idle_entries() {
        let mut b = FlowletBalancer::new(VlbConfig::classic(8), 0);
        let mut rng = rng();
        for p in 0..10u16 {
            b.choose(&flow(p), 3, 100, 0, &mut rng);
        }
        assert_eq!(b.tracked(), 10);
        b.expire(10 * DEFAULT_DELTA_NS, DEFAULT_DELTA_NS);
        assert_eq!(b.tracked(), 0);
    }
}
