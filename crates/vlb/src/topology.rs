//! Cluster interconnect topologies.
//!
//! Both topologies expose the same [`Topology`] interface: path lookup
//! between nodes and per-link capacity accounting, so the cluster
//! simulator can run VLB over either.

use crate::NodeId;

/// A cluster interconnect.
pub trait Topology {
    /// Number of nodes carrying external router ports.
    fn port_nodes(&self) -> usize;

    /// Total nodes including any intermediate (switching-only) servers.
    fn total_nodes(&self) -> usize;

    /// The node sequence a packet takes from `src` to `dst` (inclusive of
    /// both endpoints). `src == dst` yields a single-node path.
    fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId>;

    /// Per-server fanout (number of physical neighbours).
    fn fanout(&self) -> usize;

    /// Capacity each internal link needs for full-rate VLB operation,
    /// given the external line rate.
    fn required_link_bps(&self, line_rate_bps: f64) -> f64;
}

/// The full mesh: every node directly connected to every other (Fig. 2).
#[derive(Debug, Clone)]
pub struct FullMesh {
    nodes: usize,
}

impl FullMesh {
    /// Creates an `n`-node mesh.
    ///
    /// # Panics
    ///
    /// Panics for `n < 2`.
    pub fn new(nodes: usize) -> FullMesh {
        assert!(nodes >= 2, "a mesh needs at least two nodes");
        FullMesh { nodes }
    }
}

impl Topology for FullMesh {
    fn port_nodes(&self) -> usize {
        self.nodes
    }

    fn total_nodes(&self) -> usize {
        self.nodes
    }

    fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        assert!(src < self.nodes && dst < self.nodes, "node out of range");
        if src == dst {
            vec![src]
        } else {
            vec![src, dst]
        }
    }

    fn fanout(&self) -> usize {
        self.nodes - 1
    }

    fn required_link_bps(&self, line_rate_bps: f64) -> f64 {
        // §3.2: VLB spreads 2R uniformly, so each of the N links out of a
        // node carries 2R/N.
        2.0 * line_rate_bps / self.nodes as f64
    }
}

/// A k-ary n-fly butterfly with `stages` ranks of `port_nodes` relay
/// servers between input and output port nodes.
///
/// Layout: nodes `0..N` are the port servers; stage `s` relay `i` is node
/// `N + s·N + i`. A packet from port node `src` to `dst` traverses one
/// relay per stage; the relay index at each stage is determined by the
/// destination digit in base `k` (destination-tag routing), so distinct
/// destinations spread over distinct relays.
#[derive(Debug, Clone)]
pub struct KAryNFly {
    port_nodes: usize,
    k: usize,
    stages: usize,
}

impl KAryNFly {
    /// Creates a butterfly over `port_nodes` terminals with radix `k`.
    ///
    /// The number of stages is `ceil(log_k port_nodes)`.
    ///
    /// # Panics
    ///
    /// Panics for fewer than two terminals or radix below two.
    pub fn new(port_nodes: usize, k: usize) -> KAryNFly {
        assert!(port_nodes >= 2, "need at least two port nodes");
        assert!(k >= 2, "radix must be at least 2");
        let mut stages = 0usize;
        let mut reach = 1usize;
        while reach < port_nodes {
            reach = reach.saturating_mul(k);
            stages += 1;
        }
        KAryNFly {
            port_nodes,
            k,
            stages,
        }
    }

    /// The butterfly radix.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Number of relay stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Relay node id for stage `s`, position `i`.
    fn relay(&self, stage: usize, position: usize) -> NodeId {
        self.port_nodes + stage * self.port_nodes + position
    }
}

impl Topology for KAryNFly {
    fn port_nodes(&self) -> usize {
        self.port_nodes
    }

    fn total_nodes(&self) -> usize {
        self.port_nodes * (1 + self.stages)
    }

    fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        assert!(
            src < self.port_nodes && dst < self.port_nodes,
            "path endpoints must be port nodes"
        );
        if src == dst {
            return vec![src];
        }
        let mut path = vec![src];
        // Destination-tag routing: progressively replace src digits with
        // dst digits, one base-k digit per stage (most significant
        // first). The relay position after stage s agrees with dst on the
        // top s+1 digits and with src below.
        let mut position = src;
        let mut divisor = self.k.pow(self.stages.saturating_sub(1) as u32);
        for stage in 0..self.stages {
            let digit = (dst / divisor.max(1)) % self.k;
            let above = position / (divisor.max(1) * self.k) * (divisor.max(1) * self.k);
            let below = position % divisor.max(1);
            position = (above + digit * divisor.max(1) + below) % self.port_nodes;
            path.push(self.relay(stage, position));
            divisor /= self.k.max(1);
            if divisor == 0 {
                divisor = 1;
            }
        }
        path.push(dst);
        path
    }

    fn fanout(&self) -> usize {
        // Each relay has k inputs and k outputs.
        2 * self.k
    }

    fn required_link_bps(&self, line_rate_bps: f64) -> f64 {
        // Each node spreads its 2R VLB load over its k next-stage links.
        2.0 * line_rate_bps / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_paths_are_one_hop() {
        let mesh = FullMesh::new(8);
        assert_eq!(mesh.path(2, 5), vec![2, 5]);
        assert_eq!(mesh.path(3, 3), vec![3]);
        assert_eq!(mesh.fanout(), 7);
        assert_eq!(mesh.total_nodes(), 8);
    }

    #[test]
    fn mesh_link_rate_matches_paper() {
        // N=8, R=10G → 2R/N = 2.5 Gbps per internal link.
        let mesh = FullMesh::new(8);
        assert!((mesh.required_link_bps(10e9) - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn butterfly_stage_count() {
        assert_eq!(KAryNFly::new(64, 2).stages(), 6);
        assert_eq!(KAryNFly::new(64, 4).stages(), 3);
        assert_eq!(KAryNFly::new(64, 8).stages(), 2);
        assert_eq!(KAryNFly::new(1024, 32).stages(), 2);
    }

    #[test]
    fn butterfly_total_nodes_counts_relays() {
        let fly = KAryNFly::new(64, 8);
        assert_eq!(fly.total_nodes(), 64 * 3); // Ports + 2 relay stages.
    }

    #[test]
    fn butterfly_paths_have_one_relay_per_stage() {
        let fly = KAryNFly::new(64, 8);
        for (src, dst) in [(0usize, 63usize), (5, 40), (63, 0), (17, 18)] {
            let path = fly.path(src, dst);
            assert_eq!(path.len(), 2 + fly.stages(), "{src}->{dst}: {path:?}");
            assert_eq!(path[0], src);
            assert_eq!(*path.last().unwrap(), dst);
            // Interior hops are relay nodes.
            for hop in &path[1..path.len() - 1] {
                assert!(*hop >= 64, "interior hop {hop} is a port node");
            }
        }
    }

    #[test]
    fn butterfly_distinct_destinations_use_distinct_final_relays() {
        let fly = KAryNFly::new(16, 4);
        let mut finals = std::collections::HashSet::new();
        for dst in 0..16 {
            if dst == 3 {
                continue;
            }
            let path = fly.path(3, dst);
            finals.insert(path[path.len() - 2]);
        }
        // Destination-tag routing: the last relay is destination-
        // determined, so 15 destinations reach many distinct relays.
        assert!(
            finals.len() >= 8,
            "only {} distinct final relays",
            finals.len()
        );
    }

    #[test]
    fn butterfly_link_rate_shrinks_with_radix() {
        let narrow = KAryNFly::new(64, 2);
        let wide = KAryNFly::new(64, 16);
        assert!(narrow.required_link_bps(10e9) > wide.required_link_bps(10e9));
        assert!((wide.required_link_bps(10e9) - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn self_path_is_trivial() {
        let fly = KAryNFly::new(16, 4);
        assert_eq!(fly.path(7, 7), vec![7]);
    }
}
