//! Classic VLB and Direct VLB path selection.
//!
//! Classic VLB (§3.2): every packet entering at node `S` bound for node
//! `D` is first sent to a uniformly random intermediate node, then to
//! `D`. This guarantees 100% throughput and fairness for any admissible
//! traffic matrix with internal links of capacity `2R/N`, at the cost of
//! each node processing up to `3R`.
//!
//! Direct VLB: node `S` may send up to `R/N` of its `D`-bound traffic
//! *directly*, load-balancing only the excess; for near-uniform matrices
//! the per-node burden drops to `2R`. We implement the "adaptive
//! load-balancing with local information" variant: each input node
//! meters its per-destination direct traffic over a sliding window using
//! only local counters.

use crate::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// Where a packet goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathChoice {
    /// Send straight to the destination node (Direct VLB phase skip).
    Direct,
    /// Send to this intermediate node first (phase 1).
    ViaIntermediate(NodeId),
}

impl PathChoice {
    /// Number of inter-node hops this choice costs.
    pub fn hops(&self) -> usize {
        match self {
            PathChoice::Direct => 1,
            PathChoice::ViaIntermediate(_) => 2,
        }
    }
}

/// Configuration of the VLB router at one input node.
#[derive(Debug, Clone)]
pub struct VlbConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// External line rate per node, bits/second.
    pub line_rate_bps: f64,
    /// Metering window for the direct-traffic allowance, nanoseconds.
    pub window_ns: u64,
    /// `false` disables the direct shortcut (classic VLB), for the
    /// ablation of Direct VLB's 2R-vs-3R benefit.
    pub direct_enabled: bool,
}

impl VlbConfig {
    /// Direct VLB over `nodes` nodes at 10 Gbps line rate.
    pub fn direct(nodes: usize) -> VlbConfig {
        VlbConfig {
            nodes,
            line_rate_bps: 10e9,
            window_ns: 1_000_000, // 1 ms metering window.
            direct_enabled: true,
        }
    }

    /// Classic VLB (no direct shortcut).
    pub fn classic(nodes: usize) -> VlbConfig {
        VlbConfig {
            direct_enabled: false,
            ..Self::direct(nodes)
        }
    }

    /// Bytes of direct traffic allowed per destination per window:
    /// `R/N × window`.
    pub fn direct_budget_bytes(&self) -> f64 {
        self.line_rate_bps / 8.0 / self.nodes as f64 * (self.window_ns as f64 / 1e9)
    }
}

/// Per-destination direct-traffic meter (local information only).
#[derive(Debug, Clone, Copy, Default)]
struct Meter {
    window_start_ns: u64,
    bytes_in_window: f64,
}

/// The VLB path selector at one input node.
#[derive(Debug)]
pub struct DirectVlb {
    config: VlbConfig,
    node: NodeId,
    meters: Vec<Meter>,
    /// Round-robin intermediate pointer; mixed with randomness so
    /// phase-1 spreading is uniform but cheap.
    next_intermediate: usize,
    direct_packets: u64,
    balanced_packets: u64,
}

impl DirectVlb {
    /// Creates the selector for input node `node`.
    ///
    /// # Panics
    ///
    /// Panics when the cluster has fewer than two nodes.
    pub fn new(config: VlbConfig, node: NodeId) -> DirectVlb {
        assert!(config.nodes >= 2, "a cluster needs at least two nodes");
        assert!(node < config.nodes, "node id out of range");
        let meters = vec![Meter::default(); config.nodes];
        DirectVlb {
            config,
            node,
            meters,
            next_intermediate: 0,
            direct_packets: 0,
            balanced_packets: 0,
        }
    }

    /// Chooses the path for a `bytes`-long packet to `dst`, arriving at
    /// local time `now_ns`.
    pub fn choose(
        &mut self,
        dst: NodeId,
        bytes: usize,
        now_ns: u64,
        rng: &mut StdRng,
    ) -> PathChoice {
        assert!(dst < self.config.nodes, "destination out of range");
        if dst == self.node {
            // Local delivery counts as direct.
            self.direct_packets += 1;
            return PathChoice::Direct;
        }
        if self.config.direct_enabled && self.try_direct(dst, bytes, now_ns) {
            self.direct_packets += 1;
            return PathChoice::Direct;
        }
        self.balanced_packets += 1;
        PathChoice::ViaIntermediate(self.pick_intermediate(dst, rng))
    }

    /// Meters the direct allowance for `dst`; returns `true` when the
    /// packet fits in this window's `R/N` budget.
    fn try_direct(&mut self, dst: NodeId, bytes: usize, now_ns: u64) -> bool {
        let meter = &mut self.meters[dst];
        if now_ns.saturating_sub(meter.window_start_ns) >= self.config.window_ns {
            meter.window_start_ns = now_ns;
            meter.bytes_in_window = 0.0;
        }
        if meter.bytes_in_window + bytes as f64 <= self.config.direct_budget_bytes() {
            meter.bytes_in_window += bytes as f64;
            true
        } else {
            false
        }
    }

    /// Picks a phase-1 intermediate uniformly among nodes other than the
    /// source and destination.
    fn pick_intermediate(&mut self, dst: NodeId, rng: &mut StdRng) -> NodeId {
        // Random starting offset plus rotation gives uniform spreading
        // even for adversarial call patterns.
        let n = self.config.nodes;
        for _ in 0..n {
            let candidate = (self.next_intermediate + rng.gen_range(0..n)) % n;
            self.next_intermediate = (self.next_intermediate + 1) % n;
            if candidate != self.node && candidate != dst {
                return candidate;
            }
        }
        // Random probing can miss in tiny clusters; fall back to a
        // deterministic rotating scan, which finds a valid intermediate
        // whenever n ≥ 3.
        for offset in 0..n {
            let candidate = (self.next_intermediate + offset) % n;
            if candidate != self.node && candidate != dst {
                self.next_intermediate = (candidate + 1) % n;
                return candidate;
            }
        }
        // n == 2: the only other node IS the destination; phase 1 and
        // phase 2 coincide in the degenerate two-node cluster.
        dst
    }

    /// `(direct, load-balanced)` packet counts so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.direct_packets, self.balanced_packets)
    }

    /// Fraction of packets routed directly.
    pub fn direct_fraction(&self) -> f64 {
        let total = self.direct_packets + self.balanced_packets;
        if total == 0 {
            return 0.0;
        }
        self.direct_packets as f64 / total as f64
    }
}

/// The per-node processing requirement implied by a routing mode (§3.2):
/// classic VLB costs `3R`, Direct VLB between `2R` (uniform matrix) and
/// `3R` (worst case), parameterised by the measured direct fraction.
pub fn per_node_processing_rate(line_rate_bps: f64, direct_fraction: f64) -> f64 {
    // Every packet is processed at its input and output node (2R); each
    // load-balanced packet adds one intermediate handling (up to +R).
    line_rate_bps * (2.0 + (1.0 - direct_fraction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn classic_vlb_always_two_phase() {
        let mut vlb = DirectVlb::new(VlbConfig::classic(8), 0);
        let mut rng = rng();
        for i in 0..100 {
            let choice = vlb.choose(3, 1500, i * 1000, &mut rng);
            assert!(matches!(choice, PathChoice::ViaIntermediate(_)));
            assert_eq!(choice.hops(), 2);
        }
        assert_eq!(vlb.counts(), (0, 100));
    }

    #[test]
    fn intermediate_is_never_source_or_destination() {
        let mut vlb = DirectVlb::new(VlbConfig::classic(8), 2);
        let mut rng = rng();
        for i in 0..1000 {
            if let PathChoice::ViaIntermediate(mid) = vlb.choose(5, 64, i, &mut rng) {
                assert_ne!(mid, 2);
                assert_ne!(mid, 5);
            }
        }
    }

    #[test]
    fn intermediates_spread_roughly_uniformly() {
        let mut vlb = DirectVlb::new(VlbConfig::classic(16), 0);
        let mut rng = rng();
        let mut counts = [0usize; 16];
        for i in 0..14_000 {
            if let PathChoice::ViaIntermediate(mid) = vlb.choose(1, 64, i, &mut rng) {
                counts[mid] += 1;
            }
        }
        // 14 eligible intermediates, expect ~1000 each.
        for (node, &c) in counts.iter().enumerate() {
            if node == 0 || node == 1 {
                assert_eq!(c, 0);
            } else {
                assert!((800..1200).contains(&c), "node {node}: {c}");
            }
        }
    }

    #[test]
    fn uniform_load_within_budget_goes_direct() {
        // Offered rate to each destination exactly R/N: all direct.
        let config = VlbConfig::direct(8);
        let budget = config.direct_budget_bytes();
        let mut vlb = DirectVlb::new(config, 0);
        let mut rng = rng();
        // Send budget worth of bytes per window to node 3, spread evenly.
        let pkt = 1250usize;
        let packets_per_window = (budget / pkt as f64).floor() as u64;
        for w in 0..5u64 {
            for p in 0..packets_per_window {
                let now = w * 1_000_000 + p * (1_000_000 / packets_per_window);
                let choice = vlb.choose(3, pkt, now, &mut rng);
                assert_eq!(choice, PathChoice::Direct, "window {w} packet {p}");
            }
        }
        assert_eq!(vlb.direct_fraction(), 1.0);
    }

    #[test]
    fn excess_traffic_is_load_balanced() {
        // Offer 4x the direct budget to one destination: ~25% direct.
        let config = VlbConfig::direct(8);
        let budget = config.direct_budget_bytes();
        let mut vlb = DirectVlb::new(config, 0);
        let mut rng = rng();
        let pkt = 1250usize;
        let packets_per_window = (4.0 * budget / pkt as f64).floor() as u64;
        for w in 0..10u64 {
            for p in 0..packets_per_window {
                let now = w * 1_000_000 + p * (1_000_000 / packets_per_window);
                vlb.choose(3, pkt, now, &mut rng);
            }
        }
        let frac = vlb.direct_fraction();
        assert!((0.2..0.3).contains(&frac), "direct fraction {frac}");
    }

    #[test]
    fn local_delivery_is_direct() {
        let mut vlb = DirectVlb::new(VlbConfig::classic(4), 1);
        let mut rng = rng();
        assert_eq!(vlb.choose(1, 64, 0, &mut rng), PathChoice::Direct);
    }

    #[test]
    fn processing_rate_bounds() {
        // All-direct: 2R. All-balanced: 3R.
        assert_eq!(per_node_processing_rate(10e9, 1.0), 20e9);
        assert_eq!(per_node_processing_rate(10e9, 0.0), 30e9);
        let mid = per_node_processing_rate(10e9, 0.5);
        assert!(mid > 20e9 && mid < 30e9);
    }

    #[test]
    fn two_node_cluster_degenerates_gracefully() {
        let mut vlb = DirectVlb::new(VlbConfig::classic(2), 0);
        let mut rng = rng();
        // The only possible "intermediate" is the destination itself.
        match vlb.choose(1, 64, 0, &mut rng) {
            PathChoice::ViaIntermediate(mid) => assert_eq!(mid, 1),
            PathChoice::Direct => {}
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_rejected() {
        DirectVlb::new(VlbConfig::classic(1), 0);
    }
}
