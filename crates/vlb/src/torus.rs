//! The k-ary n-cube (torus): the interconnect family the paper
//! evaluated and rejected in favour of the butterfly (§3.3: "Most
//! multihop interconnect topologies fall under either the butterfly or
//! the torus families. We experimented with both and chose the k-ary
//! n-fly, because it yields smaller clusters for the practical range of
//! parameters").
//!
//! The torus's problem for VLB clusters is *relaying*: every node is
//! both a port server and a transit hop, and the average VLB path
//! crosses `n·k/4` hops, so per-node processing grows with the network
//! radius and quickly exceeds the `3R` budget — exactly the effect the
//! [`torus_processing_factor`] ablation quantifies.

use crate::topology::Topology;
use crate::NodeId;

/// A k-ary n-cube: `k^n` nodes, each with `2n` neighbours, dimension-
/// ordered (shortest wrap-around) routing.
#[derive(Debug, Clone)]
pub struct KAryNCube {
    k: usize,
    n: usize,
}

impl KAryNCube {
    /// Creates a k-ary n-cube.
    ///
    /// # Panics
    ///
    /// Panics for radix below 2 or zero dimensions.
    pub fn new(k: usize, n: usize) -> KAryNCube {
        assert!(k >= 2, "radix must be at least 2");
        assert!(n >= 1, "need at least one dimension");
        KAryNCube { k, n }
    }

    /// Radix per dimension.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Number of dimensions.
    pub fn dimensions(&self) -> usize {
        self.n
    }

    /// Decomposes a node id into per-dimension coordinates.
    fn coords(&self, node: NodeId) -> Vec<usize> {
        let mut c = Vec::with_capacity(self.n);
        let mut rest = node;
        for _ in 0..self.n {
            c.push(rest % self.k);
            rest /= self.k;
        }
        c
    }

    /// Reassembles coordinates into a node id.
    fn node(&self, coords: &[usize]) -> NodeId {
        coords.iter().rev().fold(0, |acc, &c| acc * self.k + c)
    }

    /// Signed shortest step (+1 or −1 with wrap) from `a` toward `b` in
    /// one dimension; `0` when equal.
    fn step(&self, a: usize, b: usize) -> isize {
        if a == b {
            return 0;
        }
        let fwd = (b + self.k - a) % self.k;
        let back = (a + self.k - b) % self.k;
        if fwd <= back {
            1
        } else {
            -1
        }
    }

    /// Mean shortest-path hop count over all node pairs (closed form:
    /// per dimension the mean wrap distance is ~k/4).
    pub fn mean_hops(&self) -> f64 {
        let k = self.k as f64;
        let per_dim = if self.k.is_multiple_of(2) {
            k / 4.0
        } else {
            (k * k - 1.0) / (4.0 * k)
        };
        per_dim * self.n as f64
    }
}

impl Topology for KAryNCube {
    fn port_nodes(&self) -> usize {
        self.k.pow(self.n as u32)
    }

    fn total_nodes(&self) -> usize {
        self.port_nodes()
    }

    fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        assert!(
            src < self.port_nodes() && dst < self.port_nodes(),
            "node out of range"
        );
        let mut path = vec![src];
        let mut here = self.coords(src);
        let target = self.coords(dst);
        for dim in 0..self.n {
            while here[dim] != target[dim] {
                let s = self.step(here[dim], target[dim]);
                here[dim] = ((here[dim] as isize + s).rem_euclid(self.k as isize)) as usize;
                path.push(self.node(&here));
            }
        }
        path
    }

    fn fanout(&self) -> usize {
        // 2 directions per dimension; a 2-ary dimension has coincident
        // +1/−1 neighbours.
        if self.k == 2 {
            self.n
        } else {
            2 * self.n
        }
    }

    fn required_link_bps(&self, line_rate_bps: f64) -> f64 {
        // VLB moves 2R per node over mean_hops() hops; each node has
        // `fanout` links sharing the relayed load. Average link load =
        // total traffic · mean hops / total links.
        let nodes = self.port_nodes() as f64;
        let total_traffic = 2.0 * line_rate_bps * nodes;
        let total_links = nodes * self.fanout() as f64;
        total_traffic * self.mean_hops() / total_links
    }
}

/// The torus ablation metric: per-node processing requirement in units
/// of the line rate `R`. Every VLB packet is handled at its source and
/// destination (2R) plus once per intermediate transit hop
/// (`mean_hops − 1` extra handlings on average).
pub fn torus_processing_factor(k: usize, n: usize) -> f64 {
    let cube = KAryNCube::new(k, n);
    2.0 + (cube.mean_hops() - 1.0).max(0.0) * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let cube = KAryNCube::new(4, 3);
        for node in [0usize, 1, 17, 63] {
            assert_eq!(cube.node(&cube.coords(node)), node);
        }
    }

    #[test]
    fn paths_are_shortest_with_wraparound() {
        let cube = KAryNCube::new(4, 2); // 16 nodes, 4x4 grid.
                                         // 0=(0,0) to 3=(3,0): wrap −1 is one hop.
        assert_eq!(cube.path(0, 3), vec![0, 3]);
        // 0=(0,0) to 5=(1,1): two hops, dimension ordered.
        let path = cube.path(0, 5);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 5);
    }

    #[test]
    fn consecutive_hops_are_neighbours() {
        let cube = KAryNCube::new(5, 2);
        let path = cube.path(0, 18);
        for w in path.windows(2) {
            let a = cube.coords(w[0]);
            let b = cube.coords(w[1]);
            let diff: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(diff, 1, "hop {w:?} changes exactly one dimension");
        }
    }

    #[test]
    fn mean_hops_matches_enumeration() {
        let cube = KAryNCube::new(4, 2);
        let n = cube.port_nodes();
        let total: usize = (0..n)
            .flat_map(|s| (0..n).map(move |d| (s, d)))
            .map(|(s, d)| cube.path(s, d).len() - 1)
            .sum();
        let measured = total as f64 / (n * n) as f64;
        assert!(
            (measured - cube.mean_hops()).abs() < 0.01,
            "measured {measured} vs closed form {}",
            cube.mean_hops()
        );
    }

    #[test]
    fn self_path_is_trivial() {
        let cube = KAryNCube::new(3, 3);
        assert_eq!(cube.path(13, 13), vec![13]);
    }

    #[test]
    fn processing_factor_grows_with_radius() {
        // Small torus: fine. Large torus: blows the 3R budget.
        assert!(torus_processing_factor(2, 2) <= 3.0);
        let big = torus_processing_factor(16, 2); // 256 nodes.
        assert!(big > 10.0, "256-node torus factor {big}");
        // The butterfly keeps every node at ≤ 3R regardless of scale —
        // this is why the paper chose it.
    }

    #[test]
    fn link_rate_exceeds_constraint_at_scale() {
        // §3.1 constraint 1: internal links must not exceed R. A 16x16
        // torus violates it badly.
        let cube = KAryNCube::new(16, 2);
        assert!(cube.required_link_bps(10e9) > 10e9);
        // A small 4-node ring is fine.
        let ring = KAryNCube::new(4, 1);
        assert!(ring.required_link_bps(10e9) <= 10e9);
    }

    #[test]
    fn two_ary_fanout_collapses() {
        assert_eq!(KAryNCube::new(2, 3).fanout(), 3);
        assert_eq!(KAryNCube::new(4, 3).fanout(), 6);
    }
}
