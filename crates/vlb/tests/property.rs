//! Property-based tests for VLB routing, topologies and sizing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rb_vlb::reorder::ReorderCounter;
use rb_vlb::routing::{DirectVlb, PathChoice, VlbConfig};
use rb_vlb::sizing::{layout, Layout, ServerConfig};
use rb_vlb::topology::{FullMesh, KAryNFly, Topology};
use rb_vlb::torus::KAryNCube;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// VLB intermediates are never the source or destination, for any
    /// cluster size and traffic pattern.
    #[test]
    fn vlb_intermediate_validity(
        nodes in 3usize..64,
        node_seed in any::<u64>(),
        packets in 1usize..200,
    ) {
        let mut rng = StdRng::seed_from_u64(node_seed);
        let src = (node_seed as usize) % nodes;
        let mut vlb = DirectVlb::new(VlbConfig::classic(nodes), src);
        for i in 0..packets {
            let dst = (src + 1 + (i % (nodes - 1))) % nodes;
            match vlb.choose(dst, 64, i as u64 * 1000, &mut rng) {
                PathChoice::ViaIntermediate(mid) => {
                    prop_assert!(mid < nodes);
                    prop_assert_ne!(mid, src);
                    prop_assert_ne!(mid, dst);
                }
                PathChoice::Direct => prop_assert_eq!(dst, src),
            }
        }
    }

    /// Butterfly paths always run source → one relay per stage →
    /// destination, with in-range node ids.
    #[test]
    fn butterfly_path_shape(
        terminals_pow in 2u32..7,
        k in 2usize..8,
        src_i in any::<prop::sample::Index>(),
        dst_i in any::<prop::sample::Index>(),
    ) {
        let terminals = 2usize.pow(terminals_pow);
        let fly = KAryNFly::new(terminals, k);
        let src = src_i.index(terminals);
        let dst = dst_i.index(terminals);
        let path = fly.path(src, dst);
        prop_assert_eq!(path[0], src);
        prop_assert_eq!(*path.last().unwrap(), dst);
        if src != dst {
            prop_assert_eq!(path.len(), fly.stages() + 2);
            for hop in &path[1..path.len() - 1] {
                prop_assert!(*hop >= terminals && *hop < fly.total_nodes());
            }
        }
    }

    /// Torus paths are shortest: their length equals the sum of
    /// per-dimension wrap distances, and consecutive hops differ in one
    /// coordinate by one step.
    #[test]
    fn torus_paths_are_shortest(
        k in 2usize..7,
        n in 1usize..4,
        src_i in any::<prop::sample::Index>(),
        dst_i in any::<prop::sample::Index>(),
    ) {
        let cube = KAryNCube::new(k, n);
        let nodes = cube.port_nodes();
        let src = src_i.index(nodes);
        let dst = dst_i.index(nodes);
        let path = cube.path(src, dst);
        // Independent distance computation.
        let coord = |mut v: usize| -> Vec<usize> {
            let mut c = Vec::new();
            for _ in 0..n {
                c.push(v % k);
                v /= k;
            }
            c
        };
        let (a, b) = (coord(src), coord(dst));
        let dist: usize = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| {
                let fwd = (y + k - x) % k;
                fwd.min(k - fwd)
            })
            .sum();
        prop_assert_eq!(path.len() - 1, dist);
    }

    /// The mesh's required link rate scales as 2R/N and path length is
    /// always ≤ 2 nodes.
    #[test]
    fn mesh_invariants(nodes in 2usize..128, src_i in any::<prop::sample::Index>(), dst_i in any::<prop::sample::Index>()) {
        let mesh = FullMesh::new(nodes);
        let src = src_i.index(nodes);
        let dst = dst_i.index(nodes);
        prop_assert!(mesh.path(src, dst).len() <= 2);
        let link = mesh.required_link_bps(10e9);
        prop_assert!((link - 2.0 * 10e9 / nodes as f64).abs() < 1.0);
    }

    /// Sizing: every layout covers the requested ports, and total
    /// servers never decrease when ports increase.
    #[test]
    fn sizing_monotonicity(base in 2usize..512) {
        let cfg = ServerConfig::more_nics();
        let a = layout(&cfg, base, 10e9);
        let b = layout(&cfg, base * 2, 10e9);
        if let (Some(sa), Some(sb)) = (a.servers(), b.servers()) {
            prop_assert!(sb >= sa, "{base}: {sa} vs {}: {sb}", base * 2);
        }
        if let Layout::Mesh { servers } = a {
            prop_assert_eq!(servers, base.div_ceil(cfg.external_ports));
        }
    }

    /// The reorder counter never reports more reordered sequences than
    /// packets, and an in-order (sorted) delivery reports zero — as long
    /// as no sorted gap exceeds half the sequence space, past which
    /// wrap-aware serial comparison deliberately reads a jump as a wrap.
    #[test]
    fn reorder_counter_bounds(seqs in prop::collection::vec(any::<u32>(), 1..200)) {
        let flow = rb_packet::FiveTuple {
            src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6,
        };
        let mut counter = ReorderCounter::new();
        for &s in &seqs {
            counter.observe(&flow, s);
        }
        prop_assert!(counter.reordered_sequences() <= counter.packets());

        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        if sorted.windows(2).all(|w| w[1] - w[0] < 1 << 31) {
            let mut in_order = ReorderCounter::new();
            for s in sorted {
                in_order.observe(&flow, s);
            }
            prop_assert_eq!(in_order.reordered_sequences(), 0);
        }
    }

    /// A monotonically advancing flow reports zero reordering no matter
    /// where its u32 sequence counter wraps.
    #[test]
    fn reorder_counter_tolerates_wraps(
        base in any::<u32>(),
        steps in prop::collection::vec(1u32..10_000, 1..200),
    ) {
        let flow = rb_packet::FiveTuple {
            src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6,
        };
        let mut counter = ReorderCounter::new();
        let mut seq = base;
        for step in steps {
            counter.observe(&flow, seq);
            seq = seq.wrapping_add(step);
        }
        prop_assert_eq!(counter.reordered_sequences(), 0);
    }
}
