//! AES-128 block cipher (FIPS-197).
//!
//! A straightforward byte-oriented implementation: S-box substitution,
//! ShiftRows, MixColumns over GF(2⁸), and an expanded 11-round-key
//! schedule. This is representative of the portable software AES of the
//! paper's era (pre-AES-NI Nehalem prototypes), whose per-byte cost is what
//! makes the IPsec workload CPU-bound.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box, derived from [`SBOX`] at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[usize::from(s)] = i as u8;
        }
        inv
    })
}

/// Multiplies by x (i.e. 2) in GF(2⁸) modulo the AES polynomial.
#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// General GF(2⁸) multiply (small constant factors only).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            out ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    out
}

/// An expanded AES-128 key: 11 round keys of 16 bytes each.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 128-bit key into the round-key schedule.
    pub fn new(key: &[u8; 16]) -> Aes128 {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[usize::from(*b)];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[10]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..10).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 { round_keys: [redacted] }")
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[usize::from(*b)];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[usize::from(*b)];
    }
}

/// The state is column-major: byte `state[4c + r]` is row r, column c.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
        state[4 * c + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B: the worked AES-128 example.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn decrypt_inverts_encrypt_for_many_blocks() {
        let aes = Aes128::new(b"0123456789abcdef");
        for i in 0u32..64 {
            let mut block = [0u8; 16];
            block[..4].copy_from_slice(&i.to_be_bytes());
            block[12] = i as u8;
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(b"aaaaaaaaaaaaaaaa");
        let b = Aes128::new(b"aaaaaaaaaaaaaaab");
        let mut x = [7u8; 16];
        let mut y = [7u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }

    #[test]
    fn shift_rows_inverse_round_trips() {
        let mut state: [u8; 16] = core::array::from_fn(|i| i as u8);
        let original = state;
        shift_rows(&mut state);
        inv_shift_rows(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn mix_columns_inverse_round_trips() {
        let mut state: [u8; 16] = core::array::from_fn(|i| (i * 7 + 3) as u8);
        let original = state;
        mix_columns(&mut state);
        inv_mix_columns(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(b"supersecretkey!!");
        assert_eq!(format!("{aes:?}"), "Aes128 { round_keys: [redacted] }");
    }
}
