//! SHA-1 (RFC 3174), the hash inside ESP's HMAC-SHA1-96 authenticator.

/// SHA-1 digest length in bytes.
pub const DIGEST_LEN: usize = 20;

/// SHA-1 block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// An incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Nothing left for the block loop; crucially, do not let
                // the remainder handling below clobber `buffered`.
                return;
            }
        }
        let mut chunks = data.chunks_exact(BLOCK_LEN);
        for chunk in &mut chunks {
            let block: [u8; BLOCK_LEN] = chunk.try_into().expect("exact chunk");
            self.compress(&block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let length_bits = self.length_bits;
        self.update(&[0x80]);
        // `update` above counted the pad byte; correct the length after.
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.length_bits = length_bits;
        let mut block = self.buffer;
        block[56..].copy_from_slice(&length_bits.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// The SHA-1 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexdigest(data: &[u8]) -> String {
        Sha1::digest(data)
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }

    /// RFC 3174 / FIPS 180 standard test vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(hexdigest(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hexdigest(b"abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hexdigest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hexdigest(&[b'a'; 1_000_000]),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let one_shot = Sha1::digest(&data);
        // Feed in awkward chunk sizes that straddle block boundaries.
        for chunk in [1usize, 7, 63, 64, 65, 128] {
            let mut h = Sha1::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn length_extension_boundary_lengths() {
        // Lengths around the 55/56-byte padding boundary are where padding
        // bugs hide.
        for len in 50..70usize {
            let data = vec![0x5au8; len];
            // Just ensure determinism and no panic; compare against a
            // recomputation.
            assert_eq!(Sha1::digest(&data), Sha1::digest(&data));
        }
        assert_eq!(hexdigest(&[0u8; 55]).len(), 40, "digest is always 20 bytes");
    }
}
