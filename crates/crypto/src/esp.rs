//! IPsec ESP (RFC 4303) tunnel-mode encapsulation.
//!
//! Wire format produced here (the outer IP header is the caller's job —
//! in RouteBricks it is added by the `IPsecEncap` Click element):
//!
//! ```text
//! SPI (4) | sequence (4) | IV (16) | ciphertext | ICV (12)
//! ```
//!
//! where `ciphertext = AES-128-CBC(payload | padding | pad-len | next-hdr)`
//! and `ICV = HMAC-SHA1-96(SPI | seq | IV | ciphertext)`. Decapsulation
//! enforces the RFC 4303 64-packet anti-replay window.

use crate::aes::{Aes128, BLOCK_SIZE};
use crate::hmac::{HmacSha1, ICV_LEN};
use crate::modes::{cbc_decrypt, cbc_encrypt};
use crate::{CryptoError, Result};

/// Bytes of ESP header before the IV: SPI + sequence number.
pub const ESP_HEADER_LEN: usize = 8;

/// Total fixed overhead added by ESP: header + IV + ICV (padding varies).
pub const ESP_FIXED_OVERHEAD: usize = ESP_HEADER_LEN + BLOCK_SIZE + ICV_LEN;

/// The "next header" value for IPv4-in-ESP tunnel mode.
pub const NEXT_HEADER_IPV4: u8 = 4;

/// Keys and identifiers shared by both ends of an ESP tunnel.
#[derive(Clone)]
pub struct SecurityAssociation {
    /// Security parameter index carried in every packet.
    pub spi: u32,
    /// AES-128 encryption key.
    pub enc_key: [u8; 16],
    /// HMAC-SHA1 authentication key.
    pub auth_key: [u8; 20],
}

impl SecurityAssociation {
    /// Derives a deterministic test/workload SA from a small seed.
    pub fn from_seed(seed: u64) -> SecurityAssociation {
        let mut enc_key = [0u8; 16];
        let mut auth_key = [0u8; 20];
        for (i, b) in enc_key.iter_mut().enumerate() {
            *b = (seed.rotate_left(i as u32) as u8) ^ (i as u8);
        }
        for (i, b) in auth_key.iter_mut().enumerate() {
            *b = (seed.rotate_right(i as u32) as u8) ^ 0xa5;
        }
        SecurityAssociation {
            spi: (seed as u32) | 0x8000_0000,
            enc_key,
            auth_key,
        }
    }
}

impl core::fmt::Debug for SecurityAssociation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(
            f,
            "SecurityAssociation {{ spi: {:#010x}, keys: [redacted] }}",
            self.spi
        )
    }
}

/// Outbound ESP state: cipher, authenticator and the sequence counter.
pub struct EspEncryptor {
    spi: u32,
    aes: Aes128,
    hmac: HmacSha1,
    next_seq: u32,
}

impl EspEncryptor {
    /// Creates outbound state for an SA (sequence numbers start at 1, per
    /// RFC 4303).
    pub fn new(sa: &SecurityAssociation) -> EspEncryptor {
        EspEncryptor {
            spi: sa.spi,
            aes: Aes128::new(&sa.enc_key),
            hmac: HmacSha1::new(&sa.auth_key),
            next_seq: 1,
        }
    }

    /// Returns the sequence number the next packet will carry.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Encapsulates `payload` (an inner IPv4 datagram) and returns the ESP
    /// packet.
    ///
    /// The IV is derived by encrypting the sequence number under the
    /// payload key — unpredictable to attackers without the key, and
    /// deterministic so tests and the simulator reproduce byte-exact
    /// output.
    pub fn seal(&mut self, payload: &[u8]) -> Vec<u8> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);

        // RFC 4303 padding: bring (payload + 2 trailer bytes) to a block
        // multiple, pad bytes are 1, 2, 3, ...
        let pad_len = (BLOCK_SIZE - (payload.len() + 2) % BLOCK_SIZE) % BLOCK_SIZE;
        let plain_len = payload.len() + pad_len + 2;

        let mut out = Vec::with_capacity(ESP_HEADER_LEN + BLOCK_SIZE + plain_len + ICV_LEN);
        out.extend_from_slice(&self.spi.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());

        let mut iv = [0u8; BLOCK_SIZE];
        iv[..4].copy_from_slice(&seq.to_be_bytes());
        iv[4..8].copy_from_slice(&self.spi.to_be_bytes());
        self.aes.encrypt_block(&mut iv);
        out.extend_from_slice(&iv);

        let body_start = out.len();
        out.extend_from_slice(payload);
        for i in 0..pad_len {
            out.push((i + 1) as u8);
        }
        out.push(pad_len as u8);
        out.push(NEXT_HEADER_IPV4);
        cbc_encrypt(&self.aes, &iv, &mut out[body_start..]).expect("padded body is block-aligned");

        let icv = self.hmac.mac96(&out);
        out.extend_from_slice(&icv);
        out
    }
}

/// Size of the anti-replay window in sequence numbers.
const REPLAY_WINDOW: u32 = 64;

/// Inbound ESP state: cipher, authenticator and the anti-replay window.
pub struct EspDecryptor {
    aes: Aes128,
    hmac: HmacSha1,
    /// Highest sequence number accepted so far (0 = none).
    highest_seq: u32,
    /// Bitmap of the window below `highest_seq`; bit 0 = `highest_seq`.
    window: u64,
}

impl EspDecryptor {
    /// Creates inbound state for an SA.
    pub fn new(sa: &SecurityAssociation) -> EspDecryptor {
        EspDecryptor {
            aes: Aes128::new(&sa.enc_key),
            hmac: HmacSha1::new(&sa.auth_key),
            highest_seq: 0,
            window: 0,
        }
    }

    /// Verifies, replay-checks and decrypts an ESP packet, returning the
    /// inner payload.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::Truncated`] — shorter than the fixed overhead.
    /// * [`CryptoError::BadIcv`] — authenticator mismatch (checked before
    ///   decryption, per RFC 4303 §3.4.4).
    /// * [`CryptoError::Replayed`] — sequence number outside/duplicate in
    ///   the anti-replay window.
    /// * [`CryptoError::BadLength`] / [`CryptoError::BadPadding`] —
    ///   malformed ciphertext.
    pub fn open(&mut self, packet: &[u8]) -> Result<Vec<u8>> {
        if packet.len() < ESP_FIXED_OVERHEAD + BLOCK_SIZE {
            return Err(CryptoError::Truncated(packet.len()));
        }
        let (body, icv) = packet.split_at(packet.len() - ICV_LEN);
        if !self.hmac.verify96(body, icv) {
            return Err(CryptoError::BadIcv);
        }
        let seq = u32::from_be_bytes([packet[4], packet[5], packet[6], packet[7]]);
        self.check_replay(seq)?;

        let iv: [u8; BLOCK_SIZE] = body[ESP_HEADER_LEN..ESP_HEADER_LEN + BLOCK_SIZE]
            .try_into()
            .expect("slice is 16 bytes");
        let mut plain = body[ESP_HEADER_LEN + BLOCK_SIZE..].to_vec();
        cbc_decrypt(&self.aes, &iv, &mut plain)?;

        let next_header = *plain.last().ok_or(CryptoError::Truncated(0))?;
        if next_header != NEXT_HEADER_IPV4 {
            return Err(CryptoError::BadPadding);
        }
        let pad_len = usize::from(plain[plain.len() - 2]);
        if pad_len + 2 > plain.len() {
            return Err(CryptoError::BadPadding);
        }
        let payload_len = plain.len() - 2 - pad_len;
        // RFC 4303 monotone padding: 1, 2, 3, ...
        for (i, &b) in plain[payload_len..payload_len + pad_len].iter().enumerate() {
            if b != (i + 1) as u8 {
                return Err(CryptoError::BadPadding);
            }
        }
        self.mark_seen(seq);
        plain.truncate(payload_len);
        Ok(plain)
    }

    /// Rejects sequence numbers that are duplicates or too old.
    fn check_replay(&self, seq: u32) -> Result<()> {
        if seq == 0 {
            return Err(CryptoError::Replayed(0));
        }
        if seq > self.highest_seq {
            return Ok(());
        }
        let offset = self.highest_seq - seq;
        if offset >= REPLAY_WINDOW {
            return Err(CryptoError::Replayed(seq));
        }
        if self.window & (1u64 << offset) != 0 {
            return Err(CryptoError::Replayed(seq));
        }
        Ok(())
    }

    /// Records an accepted sequence number (call only after ICV passes).
    fn mark_seen(&mut self, seq: u32) {
        if seq > self.highest_seq {
            let shift = seq - self.highest_seq;
            self.window = if shift >= REPLAY_WINDOW {
                0
            } else {
                self.window << shift
            };
            self.window |= 1;
            self.highest_seq = seq;
        } else {
            self.window |= 1u64 << (self.highest_seq - seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (EspEncryptor, EspDecryptor) {
        let sa = SecurityAssociation::from_seed(0xfeed);
        (EspEncryptor::new(&sa), EspDecryptor::new(&sa))
    }

    #[test]
    fn seal_open_round_trip_various_sizes() {
        let (mut enc, mut dec) = pair();
        for len in [0usize, 1, 13, 14, 15, 16, 63, 64, 100, 1400] {
            let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let sealed = enc.seal(&payload);
            assert!(sealed.len() >= payload.len() + ESP_FIXED_OVERHEAD);
            assert_eq!(dec.open(&sealed).unwrap(), payload, "len {len}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut enc, _) = pair();
        let payload = vec![0x42u8; 64];
        let sealed = enc.seal(&payload);
        let body = &sealed[ESP_HEADER_LEN + BLOCK_SIZE..sealed.len() - ICV_LEN];
        assert!(!body.windows(16).any(|w| w == &payload[..16]));
    }

    #[test]
    fn sequence_numbers_increment_from_one() {
        let (mut enc, _) = pair();
        let a = enc.seal(b"x");
        let b = enc.seal(b"x");
        assert_eq!(u32::from_be_bytes([a[4], a[5], a[6], a[7]]), 1);
        assert_eq!(u32::from_be_bytes([b[4], b[5], b[6], b[7]]), 2);
        // Same payload, different seq → different ciphertext (IV varies).
        assert_ne!(a[8..], b[8..]);
    }

    #[test]
    fn tampering_is_detected() {
        let (mut enc, mut dec) = pair();
        let mut sealed = enc.seal(b"authentic data");
        sealed[20] ^= 0x01;
        assert_eq!(dec.open(&sealed), Err(CryptoError::BadIcv));
    }

    #[test]
    fn truncated_packet_is_rejected() {
        let (_, mut dec) = pair();
        assert!(matches!(
            dec.open(&[0u8; 20]),
            Err(CryptoError::Truncated(20))
        ));
    }

    #[test]
    fn replay_is_rejected() {
        let (mut enc, mut dec) = pair();
        let sealed = enc.seal(b"once only");
        assert!(dec.open(&sealed).is_ok());
        assert_eq!(dec.open(&sealed), Err(CryptoError::Replayed(1)));
    }

    #[test]
    fn out_of_order_within_window_is_accepted() {
        let (mut enc, mut dec) = pair();
        let first = enc.seal(b"1");
        let second = enc.seal(b"2");
        let third = enc.seal(b"3");
        assert!(dec.open(&third).is_ok());
        assert!(dec.open(&first).is_ok());
        assert!(dec.open(&second).is_ok());
        // But replays of any of them still fail.
        assert!(dec.open(&first).is_err());
    }

    #[test]
    fn far_out_of_window_is_rejected() {
        let sa = SecurityAssociation::from_seed(0xbeef);
        let mut enc = EspEncryptor::new(&sa);
        let mut dec = EspDecryptor::new(&sa);
        let old = enc.seal(b"ancient");
        // Advance far beyond the window.
        let mut latest = Vec::new();
        for _ in 0..(REPLAY_WINDOW + 5) {
            latest = enc.seal(b"new");
        }
        assert!(dec.open(&latest).is_ok());
        assert!(matches!(dec.open(&old), Err(CryptoError::Replayed(1))));
    }

    #[test]
    fn wrong_sa_cannot_open() {
        let (mut enc, _) = pair();
        let other = SecurityAssociation::from_seed(0x0bad);
        let mut dec = EspDecryptor::new(&other);
        assert_eq!(dec.open(&enc.seal(b"secret")), Err(CryptoError::BadIcv));
    }

    #[test]
    fn overhead_matches_constant() {
        let (mut enc, _) = pair();
        // A payload of 14 bytes + 2 trailer = 16, zero padding needed.
        let sealed = enc.seal(&[0u8; 14]);
        assert_eq!(sealed.len(), 14 + 2 + ESP_FIXED_OVERHEAD);
    }
}
