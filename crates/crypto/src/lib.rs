//! Cryptographic primitives for the RouteBricks IPsec application.
//!
//! The paper's third workload encrypts "every packet … using AES-128
//! encryption, as is typical in VPNs" (§5.1). This crate implements the
//! full software path a VPN gateway runs per packet, from scratch:
//!
//! * [`aes`] — the AES-128 block cipher (FIPS-197).
//! * [`modes`] — CBC (the classic ESP mode) and CTR.
//! * [`sha1`] / [`hmac`] — SHA-1 and HMAC-SHA1-96, the authentication
//!   transform standard ESP deployments paired with AES-CBC in 2009.
//! * [`esp`] — RFC 4303 ESP tunnel-mode encapsulation/decapsulation with
//!   an anti-replay window.
//!
//! Correctness is verified against FIPS-197, NIST SP 800-38A, RFC 3174 and
//! RFC 2202 test vectors.
//!
//! # Security note
//!
//! This is a research reproduction: correct against the standard vectors,
//! but with no side-channel hardening review. Do not use it to protect
//! real traffic.

pub mod aes;
pub mod esp;
pub mod hmac;
pub mod modes;
pub mod sha1;

pub use aes::Aes128;
pub use esp::{EspDecryptor, EspEncryptor, SecurityAssociation};
pub use hmac::HmacSha1;
pub use sha1::Sha1;

/// Errors surfaced by decryption / decapsulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// Ciphertext length is not a whole number of blocks.
    BadLength(usize),
    /// ESP packet too short to contain the mandatory fields.
    Truncated(usize),
    /// The integrity check value did not verify.
    BadIcv,
    /// Padding bytes did not match the RFC 4303 monotone pattern.
    BadPadding,
    /// Anti-replay window rejected the sequence number.
    Replayed(u32),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            CryptoError::BadLength(n) => write!(f, "ciphertext length {n} not block-aligned"),
            CryptoError::Truncated(n) => write!(f, "ESP packet too short: {n} bytes"),
            CryptoError::BadIcv => write!(f, "integrity check failed"),
            CryptoError::BadPadding => write!(f, "invalid ESP padding"),
            CryptoError::Replayed(seq) => write!(f, "replayed sequence number {seq}"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, CryptoError>;
