//! Block-cipher modes of operation: CBC and CTR.

use crate::aes::{Aes128, BLOCK_SIZE};
use crate::{CryptoError, Result};

/// Encrypts `data` in place with AES-128-CBC.
///
/// # Errors
///
/// Returns [`CryptoError::BadLength`] unless `data.len()` is a multiple of
/// the block size (callers pad first; ESP padding lives in [`crate::esp`]).
pub fn cbc_encrypt(aes: &Aes128, iv: &[u8; 16], data: &mut [u8]) -> Result<()> {
    if !data.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CryptoError::BadLength(data.len()));
    }
    let mut chain = *iv;
    for block in data.chunks_exact_mut(BLOCK_SIZE) {
        for (b, c) in block.iter_mut().zip(&chain) {
            *b ^= c;
        }
        // SAFETY-free conversion: chunks_exact guarantees 16 bytes.
        let arr: &mut [u8; 16] = block.try_into().expect("chunk is 16 bytes");
        aes.encrypt_block(arr);
        chain = *arr;
    }
    Ok(())
}

/// Decrypts `data` in place with AES-128-CBC.
///
/// # Errors
///
/// Returns [`CryptoError::BadLength`] for non-block-aligned input.
pub fn cbc_decrypt(aes: &Aes128, iv: &[u8; 16], data: &mut [u8]) -> Result<()> {
    if !data.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CryptoError::BadLength(data.len()));
    }
    let mut chain = *iv;
    for block in data.chunks_exact_mut(BLOCK_SIZE) {
        let arr: &mut [u8; 16] = block.try_into().expect("chunk is 16 bytes");
        let saved = *arr;
        aes.decrypt_block(arr);
        for (b, c) in arr.iter_mut().zip(&chain) {
            *b ^= c;
        }
        chain = saved;
    }
    Ok(())
}

/// Encrypts or decrypts `data` in place with AES-128-CTR (symmetric).
///
/// The 16-byte counter block is `nonce (12 bytes) || big-endian u32
/// counter` starting at `initial_counter`; any data length is allowed.
pub fn ctr_apply(aes: &Aes128, nonce: &[u8; 12], initial_counter: u32, data: &mut [u8]) {
    let mut counter = initial_counter;
    for block in data.chunks_mut(BLOCK_SIZE) {
        let mut keystream = [0u8; BLOCK_SIZE];
        keystream[..12].copy_from_slice(nonce);
        keystream[12..].copy_from_slice(&counter.to_be_bytes());
        aes.encrypt_block(&mut keystream);
        for (b, k) in block.iter_mut().zip(&keystream) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST SP 800-38A F.2.1: AES-128-CBC encryption vectors.
    #[test]
    fn sp800_38a_cbc_vectors() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        let expected = hex(concat!(
            "7649abac8119b246cee98e9b12e9197d",
            "5086cb9b507219ee95db113a917678b2",
            "73bed6b8e3c1743b7116e69e22229516",
            "3ff1caa1681fac09120eca307586e1a7",
        ));
        let aes = Aes128::new(&key);
        cbc_encrypt(&aes, &iv, &mut data).unwrap();
        assert_eq!(data, expected);
        cbc_decrypt(&aes, &iv, &mut data).unwrap();
        assert_eq!(data[..16], hex("6bc1bee22e409f96e93d7e117393172a")[..]);
    }

    /// NIST SP 800-38A F.5.1: AES-128-CTR vector (counter block split as
    /// nonce+counter to match our API).
    #[test]
    fn sp800_38a_ctr_vector() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let nonce: [u8; 12] = hex("f0f1f2f3f4f5f6f7f8f9fafb").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        let aes = Aes128::new(&key);
        ctr_apply(&aes, &nonce, 0xfcfd_feff, &mut data);
        assert_eq!(data, hex("874d6191b620e3261bef6864990db6ce"));
    }

    #[test]
    fn cbc_round_trip_multi_block() {
        let aes = Aes128::new(b"roundtripkey0000");
        let iv = [9u8; 16];
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        cbc_encrypt(&aes, &iv, &mut data).unwrap();
        assert_ne!(data, original);
        cbc_decrypt(&aes, &iv, &mut data).unwrap();
        assert_eq!(data, original);
    }

    #[test]
    fn cbc_rejects_ragged_length() {
        let aes = Aes128::new(&[0; 16]);
        let mut data = vec![0u8; 17];
        assert!(matches!(
            cbc_encrypt(&aes, &[0; 16], &mut data),
            Err(CryptoError::BadLength(17))
        ));
        assert!(cbc_decrypt(&aes, &[0; 16], &mut data).is_err());
    }

    #[test]
    fn ctr_is_its_own_inverse_any_length() {
        let aes = Aes128::new(b"ctrmodetestkey!!");
        let nonce = [3u8; 12];
        for len in [0usize, 1, 15, 16, 17, 100] {
            let original: Vec<u8> = (0..len as u8).collect();
            let mut data = original.clone();
            ctr_apply(&aes, &nonce, 1, &mut data);
            ctr_apply(&aes, &nonce, 1, &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn cbc_identical_plaintext_blocks_differ_in_ciphertext() {
        let aes = Aes128::new(&[1; 16]);
        let mut data = vec![0xabu8; 32];
        cbc_encrypt(&aes, &[0; 16], &mut data).unwrap();
        assert_ne!(data[..16], data[16..]);
    }
}
