//! HMAC-SHA1 (RFC 2104), including the truncated HMAC-SHA1-96 form ESP
//! uses as its integrity check value.

use crate::sha1::{Sha1, BLOCK_LEN, DIGEST_LEN};

/// Length in bytes of the truncated ESP authenticator (RFC 2404).
pub const ICV_LEN: usize = 12;

/// A keyed HMAC-SHA1 instance (key preprocessed into inner/outer pads).
#[derive(Clone)]
pub struct HmacSha1 {
    inner_key: [u8; BLOCK_LEN],
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha1 {
    /// Creates an instance from a key of any length (long keys are hashed
    /// first, per RFC 2104).
    pub fn new(key: &[u8]) -> HmacSha1 {
        let mut normalized = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            normalized[..DIGEST_LEN].copy_from_slice(&Sha1::digest(key));
        } else {
            normalized[..key.len()].copy_from_slice(key);
        }
        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = normalized[i] ^ 0x36;
            outer_key[i] = normalized[i] ^ 0x5c;
        }
        HmacSha1 {
            inner_key,
            outer_key,
        }
    }

    /// Computes the full 20-byte MAC of `data`.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = Sha1::new();
        inner.update(&self.inner_key);
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Computes the 96-bit truncated MAC used as the ESP ICV.
    pub fn mac96(&self, data: &[u8]) -> [u8; ICV_LEN] {
        let full = self.mac(data);
        let mut out = [0u8; ICV_LEN];
        out.copy_from_slice(&full[..ICV_LEN]);
        out
    }

    /// Verifies a 96-bit ICV in constant time.
    pub fn verify96(&self, data: &[u8], icv: &[u8]) -> bool {
        if icv.len() != ICV_LEN {
            return false;
        }
        let expected = self.mac96(data);
        // Constant-time comparison: accumulate differences, decide once.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(icv) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl core::fmt::Debug for HmacSha1 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("HmacSha1 { key: [redacted] }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 2202 HMAC-SHA1 test cases 1–7.
    #[test]
    fn rfc2202_vectors() {
        let cases: [(Vec<u8>, Vec<u8>, &str); 7] = [
            (
                vec![0x0b; 20],
                b"Hi There".to_vec(),
                "b617318655057264e28bc0b6fb378c8ef146be00",
            ),
            (
                b"Jefe".to_vec(),
                b"what do ya want for nothing?".to_vec(),
                "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
            ),
            (
                vec![0xaa; 20],
                vec![0xdd; 50],
                "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
            ),
            (
                hex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
                vec![0xcd; 50],
                "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
            ),
            (
                vec![0x0c; 20],
                b"Test With Truncation".to_vec(),
                "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
            ),
            (
                vec![0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
                "aa4ae5e15272d00e95705637ce8a3b55ed402112",
            ),
            (
                vec![0xaa; 80],
                b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data"
                    .to_vec(),
                "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
            ),
        ];
        for (key, data, expected) in cases {
            let mac = HmacSha1::new(&key).mac(&data);
            assert_eq!(mac.to_vec(), hex(expected));
        }
    }

    #[test]
    fn mac96_is_prefix_of_full_mac() {
        let h = HmacSha1::new(b"key");
        let full = h.mac(b"message");
        assert_eq!(h.mac96(b"message"), full[..12]);
    }

    #[test]
    fn verify96_accepts_good_rejects_bad() {
        let h = HmacSha1::new(b"key");
        let mut icv = h.mac96(b"payload").to_vec();
        assert!(h.verify96(b"payload", &icv));
        icv[0] ^= 1;
        assert!(!h.verify96(b"payload", &icv));
        assert!(!h.verify96(b"payload", &icv[..11]));
        assert!(!h.verify96(b"other payload", &h.mac96(b"payload")));
    }
}
