//! Property-based tests for the cryptographic path.

use proptest::prelude::*;
use rb_crypto::aes::Aes128;
use rb_crypto::modes::{cbc_decrypt, cbc_encrypt, ctr_apply};
use rb_crypto::sha1::Sha1;
use rb_crypto::{CryptoError, EspDecryptor, EspEncryptor, HmacSha1, SecurityAssociation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// AES decrypt ∘ encrypt = identity for any key and block.
    #[test]
    fn aes_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// CBC round-trips for any block-aligned data.
    #[test]
    fn cbc_roundtrip(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        blocks in prop::collection::vec(any::<[u8; 16]>(), 0..16),
    ) {
        let aes = Aes128::new(&key);
        let original: Vec<u8> = blocks.concat();
        let mut data = original.clone();
        cbc_encrypt(&aes, &iv, &mut data).unwrap();
        if !original.is_empty() {
            prop_assert_ne!(&data, &original);
        }
        cbc_decrypt(&aes, &iv, &mut data).unwrap();
        prop_assert_eq!(data, original);
    }

    /// CTR is an involution for any length and starting counter.
    #[test]
    fn ctr_involution(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        ctr in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let aes = Aes128::new(&key);
        let mut buf = data.clone();
        ctr_apply(&aes, &nonce, ctr, &mut buf);
        ctr_apply(&aes, &nonce, ctr, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// SHA-1 is chunking-invariant: any split of the input yields the
    /// same digest as one-shot hashing.
    #[test]
    fn sha1_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let one_shot = Sha1::digest(&data);
        let mut positions: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        positions.sort_unstable();
        positions.dedup();
        let mut h = Sha1::new();
        let mut prev = 0usize;
        for p in positions {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), one_shot);
    }

    /// HMAC verification accepts the genuine tag and rejects any
    /// modified message.
    #[test]
    fn hmac_verification(
        key in prop::collection::vec(any::<u8>(), 0..100),
        mut msg in prop::collection::vec(any::<u8>(), 1..200),
        flip in any::<prop::sample::Index>(),
    ) {
        let h = HmacSha1::new(&key);
        let tag = h.mac96(&msg);
        prop_assert!(h.verify96(&msg, &tag));
        let idx = flip.index(msg.len());
        msg[idx] ^= 0x01;
        prop_assert!(!h.verify96(&msg, &tag));
    }

    /// ESP seal/open round-trips arbitrary payloads, and any single-byte
    /// corruption of the sealed packet is rejected with `BadIcv` (or a
    /// structural error) — never silently accepted, never a panic.
    #[test]
    fn esp_seal_open_and_corruption(
        seed in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        corrupt_at in any::<prop::sample::Index>(),
        corrupt_with in 1u8..=255,
    ) {
        let sa = SecurityAssociation::from_seed(seed);
        let mut enc = EspEncryptor::new(&sa);
        let sealed = enc.seal(&payload);

        let mut dec = EspDecryptor::new(&sa);
        prop_assert_eq!(dec.open(&sealed).unwrap(), payload);

        // Corrupt one byte anywhere; a fresh decryptor must reject it.
        let mut bad = sealed.clone();
        let idx = corrupt_at.index(bad.len());
        bad[idx] ^= corrupt_with;
        let mut dec2 = EspDecryptor::new(&sa);
        match dec2.open(&bad) {
            Err(_) => {}
            Ok(recovered) => {
                // The only acceptable "success" would be a corruption that
                // does not change authenticated bytes — impossible since
                // every byte is authenticated. Fail loudly.
                prop_assert!(false, "corruption at {idx} accepted: {recovered:?}");
            }
        }
    }

    /// Sequence numbers are never reusable: opening the same packet
    /// twice always trips the replay window.
    #[test]
    fn esp_replay_always_detected(
        seed in any::<u64>(),
        advance in 0usize..80,
    ) {
        let sa = SecurityAssociation::from_seed(seed);
        let mut enc = EspEncryptor::new(&sa);
        let mut dec = EspDecryptor::new(&sa);
        let target = enc.seal(b"the packet");
        // Open some later packets first (possibly sliding the window far
        // past the target).
        for _ in 0..advance {
            let later = enc.seal(b"later traffic");
            dec.open(&later).unwrap();
        }
        let first_try = dec.open(&target);
        let second_try = dec.open(&target);
        match first_try {
            Ok(_) => prop_assert!(matches!(second_try, Err(CryptoError::Replayed(_)))),
            // Window already slid past the target: both rejected.
            Err(_) => prop_assert!(second_try.is_err()),
        }
    }
}
