//! The authoritative route table (RIB) that lookup structures compile from.

use crate::prefix::Prefix;
use crate::NextHop;
use std::collections::BTreeMap;

/// An authoritative set of routes: prefix → next hop.
///
/// This plays the role of the RIB; the fast lookup structures
/// ([`crate::Dir24_8`], [`crate::BinaryTrie`], …) are FIBs compiled from
/// it. Insertion and removal are cheap; compilation is where the work
/// happens, mirroring how real routers separate control-plane updates from
/// forwarding-table builds.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: BTreeMap<Prefix, NextHop>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Inserts or replaces a route; returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Prefix, next_hop: NextHop) -> Option<NextHop> {
        self.routes.insert(prefix, next_hop)
    }

    /// Removes a route; returns its next hop if it existed.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<NextHop> {
        self.routes.remove(prefix)
    }

    /// Returns the next hop stored for an exact prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<NextHop> {
        self.routes.get(prefix).copied()
    }

    /// Returns the number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns `true` when the table holds no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates over routes in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &NextHop)> {
        self.routes.iter()
    }

    /// Returns routes sorted by ascending prefix length.
    ///
    /// This is the order FIB compilers want: writing shorter prefixes first
    /// lets longer ones simply overwrite their range.
    pub fn by_ascending_length(&self) -> Vec<(Prefix, NextHop)> {
        let mut v: Vec<(Prefix, NextHop)> = self.routes.iter().map(|(p, h)| (*p, *h)).collect();
        v.sort_by_key(|(p, _)| (p.len(), p.addr()));
        v
    }

    /// Performs a reference longest-prefix-match by scanning all routes.
    ///
    /// O(n); exists as ground truth for differential tests, not for the
    /// dataplane.
    pub fn lookup_reference(&self, addr: u32) -> Option<NextHop> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, h)| *h)
    }
}

impl FromIterator<(Prefix, NextHop)> for RouteTable {
    fn from_iter<I: IntoIterator<Item = (Prefix, NextHop)>>(iter: I) -> RouteTable {
        RouteTable {
            routes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = RouteTable::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
    }

    #[test]
    fn reference_lookup_prefers_longest() {
        let t: RouteTable = [
            (p("0.0.0.0/0"), 9),
            (p("10.0.0.0/8"), 1),
            (p("10.1.0.0/16"), 2),
            (p("10.1.2.0/24"), 3),
            (p("10.1.2.3/32"), 4),
        ]
        .into_iter()
        .collect();
        let a = |s: &str| u32::from(s.parse::<std::net::Ipv4Addr>().unwrap());
        assert_eq!(t.lookup_reference(a("10.1.2.3")), Some(4));
        assert_eq!(t.lookup_reference(a("10.1.2.4")), Some(3));
        assert_eq!(t.lookup_reference(a("10.1.3.0")), Some(2));
        assert_eq!(t.lookup_reference(a("10.2.0.0")), Some(1));
        assert_eq!(t.lookup_reference(a("11.0.0.0")), Some(9));
    }

    #[test]
    fn ascending_length_order() {
        let t: RouteTable = [
            (p("10.1.2.0/24"), 3),
            (p("0.0.0.0/0"), 9),
            (p("10.1.0.0/16"), 2),
        ]
        .into_iter()
        .collect();
        let lens: Vec<u8> = t
            .by_ascending_length()
            .iter()
            .map(|(p, _)| p.len())
            .collect();
        assert_eq!(lens, vec![0, 16, 24]);
    }

    #[test]
    fn empty_table_lookup_misses() {
        assert_eq!(RouteTable::new().lookup_reference(42), None);
    }
}
