//! IPv4 longest-prefix-match (LPM) route lookup.
//!
//! The RouteBricks IP-routing application performs "a longest-prefix-match
//! lookup of the destination address in a routing table … the Click
//! distribution's implementation of the D-lookup algorithm [34] and …
//! a routing-table size of 256K entries" (§5.1). Reference [34] is
//! Gupta, Lin and McKeown's *DIR-24-8-BASIC* scheme — a full 2²⁴-entry
//! first-level table resolving almost every lookup in one memory access,
//! with a spill table for prefixes longer than /24.
//!
//! This crate provides:
//!
//! * [`Dir24_8`] — the paper's lookup structure, compiled from a
//!   [`RouteTable`].
//! * [`BinaryTrie`] — a classic one-bit-at-a-time trie, the natural
//!   baseline.
//! * [`LinearTable`] — a linear scan, useful for differential testing.
//! * [`gen`] — a generator of realistic random tables (256K entries with a
//!   backbone-like prefix-length mix) for workloads and benchmarks.
//!
//! All structures implement [`LpmLookup`], so they can be swapped under the
//! routing element and differential-tested against each other.
//!
//! # Examples
//!
//! ```
//! use rb_lookup::{Dir24_8, LpmLookup, Prefix, RouteTable};
//!
//! let mut table = RouteTable::new();
//! table.insert("10.0.0.0/8".parse().unwrap(), 1);
//! table.insert("10.1.0.0/16".parse().unwrap(), 2);
//! let fib = Dir24_8::compile(&table).unwrap();
//! assert_eq!(fib.lookup(u32::from_be_bytes([10, 1, 2, 3])), Some(2));
//! assert_eq!(fib.lookup(u32::from_be_bytes([10, 9, 9, 9])), Some(1));
//! assert_eq!(fib.lookup(u32::from_be_bytes([11, 0, 0, 1])), None);
//! ```

pub mod dir24_8;
pub mod dynamic;
pub mod gen;
pub mod linear;
pub mod prefetch;
pub mod prefix;
pub mod rcu;
pub mod table;
pub mod trie;

pub use dir24_8::Dir24_8;
pub use dynamic::{DirtyDelta, DynamicDir24_8};
pub use linear::LinearTable;
pub use prefix::Prefix;
pub use rcu::{FibGuard, FibReader, RcuFib, RcuStats, RouteControl, RouteUpdate};
pub use table::RouteTable;
pub use trie::BinaryTrie;

/// A next-hop identifier.
///
/// DIR-24-8 packs next hops into 15 bits, so identifiers must stay below
/// [`MAX_NEXT_HOP`].
pub type NextHop = u16;

/// Largest next-hop identifier DIR-24-8 can represent (15 bits, with zero
/// reserved internally).
pub const MAX_NEXT_HOP: NextHop = 0x7ffe;

/// Errors raised when building lookup structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// A next-hop identifier exceeds what the structure can encode.
    NextHopTooLarge(NextHop),
    /// A prefix string failed to parse.
    BadPrefix(&'static str),
}

impl core::fmt::Display for LookupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            LookupError::NextHopTooLarge(h) => {
                write!(
                    f,
                    "next hop {h} exceeds the encodable maximum {MAX_NEXT_HOP}"
                )
            }
            LookupError::BadPrefix(why) => write!(f, "bad prefix: {why}"),
        }
    }
}

impl std::error::Error for LookupError {}

/// Longest-prefix-match lookup over IPv4 destination addresses.
pub trait LpmLookup {
    /// Returns the next hop for `addr` (host byte order), or `None` when no
    /// prefix covers it.
    fn lookup(&self, addr: u32) -> Option<NextHop>;

    /// Returns the number of routes the structure was built from.
    fn route_count(&self) -> usize;

    /// Returns an estimate of the heap memory the structure occupies, in
    /// bytes. Used by the memory-footprint benchmarks.
    fn memory_bytes(&self) -> usize;

    /// Resolves a batch of destination addresses at once.
    ///
    /// The default is a scalar loop; implementations with exploitable
    /// memory-level parallelism (notably [`Dir24_8`]) override it with a
    /// split extract → prefetch → resolve pipeline. Results are
    /// positional: `out[i]` answers `addrs[i]`, and any result produced
    /// must be byte-identical to calling [`LpmLookup::lookup`] per
    /// address.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than `addrs`.
    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output slice too short");
        for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
            *slot = self.lookup(*addr);
        }
    }
}
