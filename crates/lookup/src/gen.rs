//! Random routing-table generation with a backbone-like prefix mix.
//!
//! The paper evaluates IP routing against a 256K-entry table ("in keeping
//! with recent reports", §5.1 — the 2009 global BGP table). This module
//! synthesizes tables of that scale with the characteristic prefix-length
//! distribution of the default-free zone: dominated by /24s, a broad
//! shoulder at /16–/22, a long tail of short prefixes, and (optionally) a
//! small fraction of more-specifics longer than /24 to exercise the
//! DIR-24-8 spill table.

use crate::prefix::Prefix;
use crate::table::RouteTable;
use crate::NextHop;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative weights of prefix lengths 8..=24, eyeballed from the 2009 CIDR
/// report: /24 carries more than half the table, /16 and /19–/22 form the
/// shoulder.
const LENGTH_WEIGHTS: [(u8, u32); 17] = [
    (8, 2),
    (9, 1),
    (10, 2),
    (11, 4),
    (12, 8),
    (13, 15),
    (14, 25),
    (15, 25),
    (16, 120),
    (17, 60),
    (18, 90),
    (19, 160),
    (20, 180),
    (21, 170),
    (22, 230),
    (23, 180),
    (24, 1100),
];

/// Configuration for table generation.
#[derive(Debug, Clone)]
pub struct TableGenConfig {
    /// Number of routes to generate.
    pub routes: usize,
    /// Number of distinct next hops (router ports) to spread routes over.
    pub next_hops: NextHop,
    /// Fraction (0.0–1.0) of routes longer than /24, to exercise the
    /// DIR-24-8 spill path. Real BGP tables have essentially none; the
    /// default is a small non-zero value so the code path stays hot.
    pub long_fraction: f64,
    /// RNG seed, so workloads are reproducible.
    pub seed: u64,
}

impl Default for TableGenConfig {
    fn default() -> Self {
        TableGenConfig {
            routes: 256 * 1024,
            next_hops: 32,
            long_fraction: 0.005,
            seed: 0x5eed_0001,
        }
    }
}

/// Generates a random route table per `config`.
///
/// The table always contains a default route (next hop 0) so every lookup
/// resolves, matching how the paper's forwarding experiments avoid drops.
///
/// # Examples
///
/// ```
/// use rb_lookup::gen::{generate_table, TableGenConfig};
///
/// let table = generate_table(&TableGenConfig {
///     routes: 1000,
///     ..TableGenConfig::default()
/// });
/// assert!(table.len() >= 1000);
/// ```
pub fn generate_table(config: &TableGenConfig) -> RouteTable {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let weights = WeightedIndex::new(LENGTH_WEIGHTS.iter().map(|(_, w)| *w))
        .expect("static weights are valid");
    let mut table = RouteTable::new();
    table.insert(Prefix::DEFAULT, 0);
    while table.len() < config.routes + 1 {
        let len = if rng.gen_bool(config.long_fraction) {
            rng.gen_range(25..=32)
        } else {
            LENGTH_WEIGHTS[weights.sample(&mut rng)].0
        };
        // Confine addresses to the historical unicast range so generated
        // tables look like real ones (no 0/8, no 224/3 multicast).
        let addr: u32 = rng.gen_range(0x0100_0000..0xe000_0000);
        let next_hop = rng.gen_range(0..config.next_hops.max(1));
        table.insert(Prefix::new(addr, len), next_hop);
    }
    table
}

/// Generates random destination addresses that hit the given table's
/// routed space (used by routing workloads so lookups exercise the table
/// rather than falling through to the default route).
pub fn addresses_within(table: &RouteTable, count: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prefixes: Vec<Prefix> = table
        .iter()
        .filter(|(p, _)| !p.is_default())
        .map(|(p, _)| *p)
        .collect();
    if prefixes.is_empty() {
        return (0..count).map(|_| rng.gen()).collect();
    }
    (0..count)
        .map(|_| {
            let p = prefixes[rng.gen_range(0..prefixes.len())];
            let span = p.last() - p.first();
            p.first()
                + if span == 0 {
                    0
                } else {
                    rng.gen_range(0..=span)
                }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dir24_8, LpmLookup};

    #[test]
    fn generates_requested_count() {
        let t = generate_table(&TableGenConfig {
            routes: 500,
            ..Default::default()
        });
        assert!(t.len() >= 501); // Includes the default route.
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = TableGenConfig {
            routes: 200,
            ..Default::default()
        };
        let a: Vec<_> = generate_table(&cfg).iter().map(|(p, h)| (*p, *h)).collect();
        let b: Vec<_> = generate_table(&cfg).iter().map(|(p, h)| (*p, *h)).collect();
        assert_eq!(a, b);
        let c = generate_table(&TableGenConfig { seed: 99, ..cfg });
        assert_ne!(a, c.iter().map(|(p, h)| (*p, *h)).collect::<Vec<_>>());
    }

    #[test]
    fn next_hops_stay_in_range() {
        let t = generate_table(&TableGenConfig {
            routes: 300,
            next_hops: 4,
            ..Default::default()
        });
        assert!(t.iter().all(|(_, h)| *h < 4));
    }

    #[test]
    fn every_lookup_resolves_thanks_to_default_route() {
        let t = generate_table(&TableGenConfig {
            routes: 300,
            ..Default::default()
        });
        let fib = Dir24_8::compile(&t).unwrap();
        for addr in [0u32, 1, 0x0a00_0001, 0x7fff_ffff, u32::MAX] {
            assert!(fib.lookup(addr).is_some());
        }
    }

    #[test]
    fn addresses_within_hit_non_default_routes() {
        let t = generate_table(&TableGenConfig {
            routes: 300,
            ..Default::default()
        });
        let addrs = addresses_within(&t, 100, 7);
        assert_eq!(addrs.len(), 100);
        let hits = addrs
            .iter()
            .filter(|a| t.iter().any(|(p, _)| !p.is_default() && p.contains(**a)))
            .count();
        assert_eq!(hits, 100);
    }

    #[test]
    fn long_fraction_produces_spill_prefixes() {
        let t = generate_table(&TableGenConfig {
            routes: 2000,
            long_fraction: 0.5,
            ..Default::default()
        });
        let long = t.iter().filter(|(p, _)| p.len() > 24).count();
        assert!(long > 500, "expected many >24 prefixes, got {long}");
    }
}
