//! Binary-trie LPM: the classic baseline DIR-24-8 is measured against.

use crate::prefix::Prefix;
use crate::table::RouteTable;
use crate::{LpmLookup, NextHop};

/// One trie node: two children plus an optional stored next hop.
#[derive(Debug, Clone, Default)]
struct Node {
    /// Children indexed by the next address bit; `u32::MAX` = absent.
    children: [u32; 2],
    /// Next hop stored at this node, `encoded + 1` (0 = none).
    next_hop: u16,
}

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

/// A one-bit-at-a-time binary trie over IPv4 prefixes.
///
/// Lookup walks up to 32 levels, remembering the deepest next hop seen —
/// up to 32 dependent memory accesses versus DIR-24-8's one or two, which
/// is exactly the contrast the `lpm` benchmark quantifies.
pub struct BinaryTrie {
    nodes: Vec<Node>,
    route_count: usize,
}

impl BinaryTrie {
    /// Builds a trie from `routes`.
    pub fn compile(routes: &RouteTable) -> BinaryTrie {
        let mut trie = BinaryTrie {
            nodes: vec![Node {
                children: [NONE, NONE],
                next_hop: 0,
            }],
            route_count: routes.len(),
        };
        for (prefix, next_hop) in routes.iter() {
            trie.insert(*prefix, *next_hop);
        }
        trie
    }

    /// Inserts one prefix, creating intermediate nodes as needed.
    fn insert(&mut self, prefix: Prefix, next_hop: NextHop) {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.addr() >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            node = if child == NONE {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    children: [NONE, NONE],
                    next_hop: 0,
                });
                self.nodes[node].children[bit] = idx as u32;
                idx
            } else {
                child as usize
            };
        }
        self.nodes[node].next_hop = next_hop + 1;
    }

    /// Returns the number of trie nodes (for memory studies).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl LpmLookup for BinaryTrie {
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let mut node = 0usize;
        let mut best = 0u16;
        for depth in 0..32 {
            let stored = self.nodes[node].next_hop;
            if stored != 0 {
                best = stored;
            }
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node].children[bit];
            if child == NONE {
                break;
            }
            node = child as usize;
        }
        // A /32 match is only visible at the leaf itself.
        let stored = self.nodes[node].next_hop;
        if stored != 0 {
            best = stored;
        }
        if best == 0 {
            None
        } else {
            Some(best - 1)
        }
    }

    fn route_count(&self) -> usize {
        self.route_count
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * core::mem::size_of::<Node>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> u32 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap())
    }

    fn trie(routes: &[(&str, NextHop)]) -> BinaryTrie {
        let table: RouteTable = routes
            .iter()
            .map(|(s, h)| (s.parse().unwrap(), *h))
            .collect();
        BinaryTrie::compile(&table)
    }

    #[test]
    fn empty_trie_misses() {
        assert_eq!(trie(&[]).lookup(123), None);
    }

    #[test]
    fn longest_match_wins() {
        let t = trie(&[("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.2.3/32", 3)]);
        assert_eq!(t.lookup(a("10.1.2.3")), Some(3));
        assert_eq!(t.lookup(a("10.1.2.4")), Some(2));
        assert_eq!(t.lookup(a("10.99.0.0")), Some(1));
        assert_eq!(t.lookup(a("11.0.0.0")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let t = trie(&[("0.0.0.0/0", 5)]);
        assert_eq!(t.lookup(0), Some(5));
        assert_eq!(t.lookup(u32::MAX), Some(5));
    }

    #[test]
    fn host_route_at_all_ones() {
        let t = trie(&[("255.255.255.255/32", 1)]);
        assert_eq!(t.lookup(u32::MAX), Some(1));
        assert_eq!(t.lookup(u32::MAX - 1), None);
    }

    #[test]
    fn node_count_grows_with_depth() {
        let shallow = trie(&[("128.0.0.0/1", 1)]);
        let deep = trie(&[("1.2.3.4/32", 1)]);
        assert!(deep.node_count() > shallow.node_count());
    }
}
