//! Linear-scan LPM: the simplest possible implementation.
//!
//! O(n) per lookup — unusable in a dataplane, invaluable as ground truth
//! for differential tests and as the lower anchor of the `lpm` benchmark.

use crate::prefix::Prefix;
use crate::table::RouteTable;
use crate::{LpmLookup, NextHop};

/// A linear route list, pre-sorted by descending prefix length so the
/// first hit is the longest match.
pub struct LinearTable {
    routes: Vec<(Prefix, NextHop)>,
}

impl LinearTable {
    /// Builds the list from `routes`.
    pub fn compile(routes: &RouteTable) -> LinearTable {
        let mut v: Vec<(Prefix, NextHop)> = routes.iter().map(|(p, h)| (*p, *h)).collect();
        v.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        LinearTable { routes: v }
    }
}

impl LpmLookup for LinearTable {
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.routes
            .iter()
            .find(|(p, _)| p.contains(addr))
            .map(|(_, h)| *h)
    }

    fn route_count(&self) -> usize {
        self.routes.len()
    }

    fn memory_bytes(&self) -> usize {
        self.routes.len() * core::mem::size_of::<(Prefix, NextHop)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_hit_is_longest_match() {
        let table: RouteTable = [
            ("10.0.0.0/8".parse().unwrap(), 1u16),
            ("10.1.0.0/16".parse().unwrap(), 2),
        ]
        .into_iter()
        .collect();
        let lin = LinearTable::compile(&table);
        assert_eq!(lin.lookup(u32::from_be_bytes([10, 1, 0, 1])), Some(2));
        assert_eq!(lin.lookup(u32::from_be_bytes([10, 2, 0, 1])), Some(1));
        assert_eq!(lin.lookup(u32::from_be_bytes([11, 0, 0, 1])), None);
    }

    #[test]
    fn agrees_with_reference() {
        let table: RouteTable = [
            ("0.0.0.0/0".parse().unwrap(), 9u16),
            ("192.168.0.0/16".parse().unwrap(), 1),
            ("192.168.1.0/24".parse().unwrap(), 2),
        ]
        .into_iter()
        .collect();
        let lin = LinearTable::compile(&table);
        for addr in [0u32, 0xc0a8_0101, 0xc0a8_0201, u32::MAX] {
            assert_eq!(lin.lookup(addr), table.lookup_reference(addr));
        }
    }
}
