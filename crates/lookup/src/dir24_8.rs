//! DIR-24-8-BASIC longest-prefix-match (Gupta, Lin, McKeown 1998).
//!
//! The scheme the paper calls "D-lookup": a flat 2²⁴-entry first-level
//! table (`TBL24`) indexed by the top 24 destination bits, plus a spill
//! table (`TBLlong`) of 256-entry segments for the rare prefixes longer
//! than /24. Lookups cost one memory access for ≤ /24 routes and two for
//! longer ones — which is why the paper's IP-routing application stays
//! CPU-bound rather than memory-bound even at 256K routes.
//!
//! Encoding of a `TBL24` entry (16 bits):
//!
//! * `0x0000` — no route.
//! * high bit clear — `entry - 1` is the next hop.
//! * high bit set — `entry & 0x7fff` is the index of a 256-entry `TBLlong`
//!   segment indexed by the low 8 destination bits.
//!
//! `TBLlong` entries are `0` for "no route" or `next_hop + 1`.

use crate::prefetch::prefetch_slice;
use crate::prefix::Prefix;
use crate::table::RouteTable;
use crate::{LookupError, LpmLookup, NextHop, MAX_NEXT_HOP};

/// Number of entries in the first-level table.
const TBL24_SIZE: usize = 1 << 24;

/// High bit marking a `TBL24` entry as a `TBLlong` segment index.
const LONG_FLAG: u16 = 0x8000;

/// A compiled DIR-24-8 forwarding table.
pub struct Dir24_8 {
    tbl24: Vec<u16>,
    tbl_long: Vec<u16>,
    route_count: usize,
}

impl Dir24_8 {
    /// Compiles a forwarding table from `routes`.
    ///
    /// Prefixes are written in ascending length order so that longer
    /// prefixes overwrite the ranges of shorter ones — the invariant the
    /// encoding relies on.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] when a next hop exceeds
    /// [`MAX_NEXT_HOP`] (the 15-bit encoding limit).
    pub fn compile(routes: &RouteTable) -> Result<Dir24_8, LookupError> {
        let mut fib = Dir24_8 {
            tbl24: vec![0u16; TBL24_SIZE],
            tbl_long: Vec::new(),
            route_count: routes.len(),
        };
        for (prefix, next_hop) in routes.by_ascending_length() {
            if next_hop > MAX_NEXT_HOP {
                return Err(LookupError::NextHopTooLarge(next_hop));
            }
            fib.write_prefix(prefix, next_hop);
        }
        Ok(fib)
    }

    /// Writes one prefix into the tables (longer prefixes must be written
    /// after shorter ones).
    fn write_prefix(&mut self, prefix: Prefix, next_hop: NextHop) {
        let encoded = next_hop + 1;
        if prefix.len() <= 24 {
            let start = (prefix.first() >> 8) as usize;
            let end = (prefix.last() >> 8) as usize;
            for slot in &mut self.tbl24[start..=end] {
                if *slot & LONG_FLAG != 0 {
                    // The slot already spilled to TBLlong (a longer prefix
                    // cannot have been written yet, but a previous same-pass
                    // long prefix of an earlier shorter route can exist only
                    // in ascending-length order if len > 24, so this arm is
                    // unreachable during ascending compilation). Keep it
                    // correct anyway: overwrite non-overridden segment slots.
                    let seg = usize::from(*slot & !LONG_FLAG) * 256;
                    for e in &mut self.tbl_long[seg..seg + 256] {
                        *e = encoded;
                    }
                } else {
                    *slot = encoded;
                }
            }
        } else {
            let idx24 = (prefix.first() >> 8) as usize;
            let slot = self.tbl24[idx24];
            let seg_index = if slot & LONG_FLAG != 0 {
                usize::from(slot & !LONG_FLAG)
            } else {
                // Allocate a fresh segment seeded with the current ≤ /24
                // result so uncovered low-byte values keep their answer.
                let seg_index = self.tbl_long.len() / 256;
                self.tbl_long.extend(std::iter::repeat_n(slot, 256));
                self.tbl24[idx24] = LONG_FLAG | seg_index as u16;
                seg_index
            };
            let lo_start = (prefix.first() & 0xff) as usize;
            let lo_end = (prefix.last() & 0xff) as usize;
            let base = seg_index * 256;
            for e in &mut self.tbl_long[base + lo_start..=base + lo_end] {
                *e = encoded;
            }
        }
    }

    /// Returns the number of `TBLlong` segments allocated.
    pub fn long_segments(&self) -> usize {
        self.tbl_long.len() / 256
    }

    /// Assembles a FIB from already-encoded tables (the snapshot path of
    /// [`crate::DynamicDir24_8`]). Both tables must use the entry
    /// encoding documented at the top of this module.
    pub(crate) fn from_parts(tbl24: Vec<u16>, tbl_long: Vec<u16>, route_count: usize) -> Dir24_8 {
        debug_assert_eq!(tbl24.len(), TBL24_SIZE);
        debug_assert_eq!(tbl_long.len() % 256, 0);
        Dir24_8 {
            tbl24,
            tbl_long,
            route_count,
        }
    }

    /// Surrenders the raw tables, letting a reclaimed snapshot's
    /// allocations be recycled into the next one (the RCU FIB's
    /// delta-patched publish).
    pub(crate) fn into_parts(self) -> (Vec<u16>, Vec<u16>) {
        (self.tbl24, self.tbl_long)
    }

    /// Destination addresses in a batch rarely share cache lines in a
    /// 32 MiB `TBL24`, so the resolve loop is latency-bound on DRAM.
    /// Splitting it into a prefetch pass (issue every `TBL24` line, plus
    /// the `TBLlong` line for entries already visible as spilled) and a
    /// resolve pass lets the memory system overlap the misses.
    fn lookup_batch_impl(&self, addrs: &[u32], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output slice too short");
        // Pass 1: prefetch. For spilled slots the TBL24 entry must be
        // read to locate the segment — that read warms the line the
        // resolve pass needs anyway, and TBLlong lines gain the most
        // from an early hint (they are the second dependent access).
        for &addr in addrs {
            let idx = (addr >> 8) as usize;
            prefetch_slice(&self.tbl24, idx);
            if !self.tbl_long.is_empty() {
                let entry = self.tbl24[idx];
                if entry & LONG_FLAG != 0 {
                    let seg = usize::from(entry & !LONG_FLAG) * 256;
                    prefetch_slice(&self.tbl_long, seg + (addr & 0xff) as usize);
                }
            }
        }
        // Pass 2: resolve, identical logic to the scalar `lookup`.
        for (&addr, slot) in addrs.iter().zip(out.iter_mut()) {
            let entry = self.tbl24[(addr >> 8) as usize];
            let resolved = if entry & LONG_FLAG == 0 {
                entry
            } else {
                let seg = usize::from(entry & !LONG_FLAG) * 256;
                self.tbl_long[seg + (addr & 0xff) as usize]
            };
            *slot = if resolved == 0 {
                None
            } else {
                Some(resolved - 1)
            };
        }
    }
}

impl LpmLookup for Dir24_8 {
    #[inline]
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let entry = self.tbl24[(addr >> 8) as usize];
        let resolved = if entry & LONG_FLAG == 0 {
            entry
        } else {
            let seg = usize::from(entry & !LONG_FLAG) * 256;
            self.tbl_long[seg + (addr & 0xff) as usize]
        };
        if resolved == 0 {
            None
        } else {
            Some(resolved - 1)
        }
    }

    fn route_count(&self) -> usize {
        self.route_count
    }

    fn memory_bytes(&self) -> usize {
        (self.tbl24.len() + self.tbl_long.len()) * core::mem::size_of::<u16>()
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [Option<NextHop>]) {
        self.lookup_batch_impl(addrs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> u32 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap())
    }

    fn fib(routes: &[(&str, NextHop)]) -> Dir24_8 {
        let table: RouteTable = routes.iter().map(|(s, h)| (p(s), *h)).collect();
        Dir24_8::compile(&table).unwrap()
    }

    #[test]
    fn empty_table_always_misses() {
        let f = fib(&[]);
        assert_eq!(f.lookup(0), None);
        assert_eq!(f.lookup(u32::MAX), None);
        assert_eq!(f.route_count(), 0);
    }

    #[test]
    fn short_prefix_hierarchy() {
        let f = fib(&[
            ("0.0.0.0/0", 0),
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
        ]);
        assert_eq!(f.lookup(a("10.1.2.200")), Some(3));
        assert_eq!(f.lookup(a("10.1.3.1")), Some(2));
        assert_eq!(f.lookup(a("10.200.0.0")), Some(1));
        assert_eq!(f.lookup(a("99.0.0.1")), Some(0));
        assert_eq!(f.long_segments(), 0);
    }

    #[test]
    fn long_prefix_spills_to_tbl_long() {
        let f = fib(&[
            ("10.1.2.0/24", 3),
            ("10.1.2.128/25", 4),
            ("10.1.2.130/32", 5),
        ]);
        assert_eq!(f.long_segments(), 1);
        assert_eq!(f.lookup(a("10.1.2.1")), Some(3));
        assert_eq!(f.lookup(a("10.1.2.129")), Some(4));
        assert_eq!(f.lookup(a("10.1.2.130")), Some(5));
        assert_eq!(f.lookup(a("10.1.2.131")), Some(4));
        assert_eq!(f.lookup(a("10.1.3.0")), None);
    }

    #[test]
    fn host_route_without_covering_prefix() {
        let f = fib(&[("1.2.3.4/32", 7)]);
        assert_eq!(f.lookup(a("1.2.3.4")), Some(7));
        assert_eq!(f.lookup(a("1.2.3.5")), None);
        assert_eq!(f.lookup(a("1.2.4.4")), None);
    }

    #[test]
    fn default_route_covers_all() {
        let f = fib(&[("0.0.0.0/0", 11)]);
        assert_eq!(f.lookup(0), Some(11));
        assert_eq!(f.lookup(u32::MAX), Some(11));
    }

    #[test]
    fn slash_25_boundaries() {
        let f = fib(&[("192.0.2.0/25", 1), ("192.0.2.128/25", 2)]);
        assert_eq!(f.lookup(a("192.0.2.0")), Some(1));
        assert_eq!(f.lookup(a("192.0.2.127")), Some(1));
        assert_eq!(f.lookup(a("192.0.2.128")), Some(2));
        assert_eq!(f.lookup(a("192.0.2.255")), Some(2));
    }

    #[test]
    fn matches_reference_on_mixed_table() {
        let routes = [
            ("0.0.0.0/0", 1),
            ("128.0.0.0/1", 2),
            ("10.0.0.0/8", 3),
            ("10.128.0.0/9", 4),
            ("172.16.0.0/12", 5),
            ("192.168.0.0/16", 6),
            ("192.168.100.0/22", 7),
            ("192.168.100.64/26", 8),
            ("192.168.100.65/32", 9),
            ("255.255.255.255/32", 10),
        ];
        let table: RouteTable = routes.iter().map(|(s, h)| (p(s), *h)).collect();
        let f = Dir24_8::compile(&table).unwrap();
        // Probe a spread of addresses including boundaries of every route.
        let mut probes = vec![0u32, 1, u32::MAX, u32::MAX - 1];
        for (s, _) in &routes {
            let pre = p(s);
            probes.extend([
                pre.first(),
                pre.last(),
                pre.first().wrapping_sub(1),
                pre.last().wrapping_add(1),
            ]);
        }
        for addr in probes {
            assert_eq!(
                f.lookup(addr),
                table.lookup_reference(addr),
                "mismatch at {addr:#010x}"
            );
        }
    }

    #[test]
    fn next_hop_overflow_is_rejected() {
        let mut table = RouteTable::new();
        table.insert(p("10.0.0.0/8"), MAX_NEXT_HOP + 1);
        assert!(matches!(
            Dir24_8::compile(&table),
            Err(LookupError::NextHopTooLarge(_))
        ));
    }

    #[test]
    fn max_next_hop_is_encodable() {
        let f = fib(&[
            ("10.0.0.0/8", MAX_NEXT_HOP),
            ("10.0.0.1/32", MAX_NEXT_HOP - 1),
        ]);
        assert_eq!(f.lookup(a("10.0.0.2")), Some(MAX_NEXT_HOP));
        assert_eq!(f.lookup(a("10.0.0.1")), Some(MAX_NEXT_HOP - 1));
    }

    #[test]
    fn memory_accounting_counts_both_tables() {
        let f = fib(&[("10.1.2.128/25", 4)]);
        assert_eq!(f.memory_bytes(), (TBL24_SIZE + 256) * 2);
    }

    #[test]
    fn batch_matches_scalar_on_mixed_table() {
        let f = fib(&[
            ("0.0.0.0/0", 1),
            ("10.0.0.0/8", 3),
            ("192.168.100.64/26", 8),
            ("192.168.100.65/32", 9),
        ]);
        let addrs: Vec<u32> = (0..2048u32)
            .map(|i| i.wrapping_mul(0x9e37_79b9) ^ a("192.168.100.60"))
            .chain([a("192.168.100.65"), a("10.1.1.1"), 0, u32::MAX])
            .collect();
        let mut batched = vec![None; addrs.len()];
        f.lookup_batch(&addrs, &mut batched);
        for (i, &addr) in addrs.iter().enumerate() {
            assert_eq!(batched[i], f.lookup(addr), "mismatch at {addr:#010x}");
        }
    }

    #[test]
    fn batch_of_zero_and_one() {
        let f = fib(&[("10.0.0.0/8", 2)]);
        let mut out: Vec<Option<NextHop>> = Vec::new();
        f.lookup_batch(&[], &mut out);
        let mut one = [None];
        f.lookup_batch(&[a("10.5.5.5")], &mut one);
        assert_eq!(one[0], Some(2));
    }

    #[test]
    #[should_panic(expected = "output slice too short")]
    fn batch_with_short_output_panics() {
        let f = fib(&[]);
        let mut out = [None];
        f.lookup_batch(&[1, 2], &mut out);
    }
}
