//! IPv4 prefixes.

use crate::LookupError;

/// An IPv4 prefix: a network address and a mask length.
///
/// The address is stored in host byte order with the host bits zeroed
/// (enforced by the constructor), so two equal prefixes always compare
/// equal bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    /// Creates a prefix, zeroing any host bits in `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `len > 32`; mask lengths above 32 are meaningless for
    /// IPv4 and indicate a programming error.
    pub fn new(addr: u32, len: u8) -> Prefix {
        assert!(len <= 32, "IPv4 prefix length must be at most 32");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// Returns the network mask for a prefix length.
    #[inline]
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Returns the network address (host bits zero, host byte order).
    #[inline]
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Returns the mask length.
    ///
    /// (`len` here is the prefix bit-length, not a container size, so no
    /// `is_empty` counterpart exists; see [`Prefix::is_default`].)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length default route.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when `addr` falls inside this prefix.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.addr
    }

    /// Returns `true` when `other` is fully contained in `self`
    /// (equal prefixes count as containment).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// Returns the first address of the prefix.
    pub fn first(&self) -> u32 {
        self.addr
    }

    /// Returns the last address of the prefix.
    pub fn last(&self) -> u32 {
        self.addr | !Self::mask(self.len)
    }
}

impl core::fmt::Display for Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let o = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

impl core::str::FromStr for Prefix {
    type Err = LookupError;

    /// Parses the `a.b.c.d/len` notation.
    fn from_str(s: &str) -> Result<Prefix, LookupError> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or(LookupError::BadPrefix("missing '/'"))?;
        let addr: std::net::Ipv4Addr = addr_s
            .parse()
            .map_err(|_| LookupError::BadPrefix("bad address"))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| LookupError::BadPrefix("bad length"))?;
        if len > 32 {
            return Err(LookupError::BadPrefix("length above 32"));
        }
        Ok(Prefix::new(u32::from(addr), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.4.0/22", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn host_bits_are_zeroed() {
        let p: Prefix = "10.1.2.3/8".parse().unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn contains_boundaries() {
        let p: Prefix = "192.168.4.0/22".parse().unwrap();
        assert!(p.contains(p.first()));
        assert!(p.contains(p.last()));
        assert!(!p.contains(p.first().wrapping_sub(1)));
        assert!(!p.contains(p.last().wrapping_add(1)));
    }

    #[test]
    fn default_route_contains_everything() {
        assert!(Prefix::DEFAULT.contains(0));
        assert!(Prefix::DEFAULT.contains(u32::MAX));
        assert!(Prefix::DEFAULT.is_default());
    }

    #[test]
    fn covers_relations() {
        let eight: Prefix = "10.0.0.0/8".parse().unwrap();
        let sixteen: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(eight.covers(&sixteen));
        assert!(!sixteen.covers(&eight));
        assert!(eight.covers(&eight));
        let other: Prefix = "11.0.0.0/16".parse().unwrap();
        assert!(!eight.covers(&other));
    }

    #[test]
    fn bad_strings_rejected() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn new_rejects_long_mask() {
        Prefix::new(0, 33);
    }

    #[test]
    fn mask_values() {
        assert_eq!(Prefix::mask(0), 0);
        assert_eq!(Prefix::mask(8), 0xff00_0000);
        assert_eq!(Prefix::mask(24), 0xffff_ff00);
        assert_eq!(Prefix::mask(32), u32::MAX);
    }
}
