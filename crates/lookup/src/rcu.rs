//! Lock-free FIB publication: RCU-style epoch reclamation over
//! [`Dir24_8`] snapshots.
//!
//! RouteBricks evaluates forwarding over a *static* full table; a
//! production router additionally absorbs continuous BGP churn. The
//! requirement (shared by the parallel-NF literature in PAPERS.md) is
//! that the read path stay wait-free: worker cores must never take a
//! lock, spin, or even dirty a shared cache line per packet while the
//! control plane installs routes.
//!
//! The scheme here is classic read-copy-update with per-reader epoch
//! announcement, hand-rolled because the vendored crossbeam subset has
//! no `epoch` module:
//!
//! * The live FIB is an [`Dir24_8`] snapshot behind an `AtomicPtr`
//!   (holding one `Arc` reference), tagged with a monotonically
//!   increasing **generation**.
//! * Writers ([`RouteControl`]) mutate a private [`DynamicDir24_8`]
//!   under a mutex (control plane only — never on the packet path),
//!   then *publish*: snapshot the tables, swap the pointer, bump the
//!   generation, and retire the old snapshot tagged with the generation
//!   that replaced it. Snapshots are built by patching a reclaimed
//!   predecessor with the slots dirtied since its generation whenever
//!   one is available — O(changed entries), not a 32 MiB clone per
//!   publish — falling back to the full clone otherwise.
//! * Readers ([`FibReader`]) *pin* once per batch: announce the current
//!   generation in their own cache-line-padded epoch slot, re-check the
//!   generation, and dereference the pointer for the whole batch. One
//!   uncontended store + two loads per batch of packets; unpinning is a
//!   single store of the [`QUIESCENT`] sentinel.
//! * A retired snapshot is reclaimed once every announced (non-
//!   quiescent) epoch has advanced to at least its retire generation —
//!   the grace period. Reclamation piggybacks on publish (and
//!   [`RouteControl::try_reclaim`]), so there is no background thread.
//!
//! Why this is safe (the grace-period argument): a reader that still
//! holds a pointer retired at generation `g` must have loaded it before
//! the swap, therefore its announced epoch — stored and re-validated
//! *before* the pointer load, with `SeqCst` ordering on both sides —
//! is at most `g - 1 < g`, and it blocks reclamation until it unpins
//! or re-pins at a newer generation.

use crate::dynamic::{DirtyDelta, DynamicDir24_8};
use crate::table::RouteTable;
use crate::{Dir24_8, LookupError, NextHop, Prefix};
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Epoch-slot value meaning "this reader is not inside a read-side
/// critical section".
const QUIESCENT: u64 = u64::MAX;

/// Default size of the epoch-slot array (upper bound on concurrently
/// live [`FibReader`]s; slots are recycled on drop).
pub const DEFAULT_MAX_READERS: usize = 64;

/// One route update for the churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteUpdate {
    /// Install (or replace) `prefix → hop`.
    Announce(Prefix, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix),
}

/// Control-plane state, touched only under the writer mutex.
struct WriterState {
    /// Authoritative table with incremental update support; snapshots
    /// are cloned from it at publish time.
    rib: DynamicDir24_8,
    /// Retired snapshots awaiting their grace period, tagged with the
    /// generation at which they were replaced.
    retired: Vec<(u64, Arc<Dir24_8>)>,
    /// A reclaimed snapshot's buffers, tagged with the generation whose
    /// state they still hold — the next publish patches them with the
    /// missed deltas instead of cloning 32 MiB.
    spare: Option<(u64, Vec<u16>, Vec<u16>)>,
    /// Dirty sets by consuming generation: entry `(g, d)` holds the
    /// slots that changed between snapshots `g - 1` and `g`.
    dirty_log: Vec<(u64, DirtyDelta)>,
    installs: u64,
    withdrawals: u64,
    publishes: u64,
    delta_publishes: u64,
    reclaimed: u64,
}

/// State shared between all readers and the writer.
struct RcuShared {
    /// Generation of the snapshot in `current`.
    gen: AtomicU64,
    /// The live snapshot; holds one `Arc<Dir24_8>` reference
    /// (`Arc::into_raw`).
    current: AtomicPtr<Dir24_8>,
    /// Per-reader epoch announcements, cache-line padded so pinning
    /// never bounces another reader's line.
    epochs: Box<[CachePadded<AtomicU64>]>,
    /// Bump allocator for epoch slots (falls back to `free_slots`).
    next_slot: AtomicUsize,
    /// Recycled epoch slots of dropped readers.
    free_slots: Mutex<Vec<usize>>,
    writer: Mutex<WriterState>,
}

impl Drop for RcuShared {
    fn drop(&mut self) {
        let ptr = *self.current.get_mut();
        // SAFETY: `current` always holds exactly one owned Arc reference
        // (installed by `new` or `publish_locked`); no readers can exist
        // here because every `FibReader`/`RouteControl` holds an
        // `Arc<RcuShared>`.
        unsafe { drop(Arc::from_raw(ptr)) };
    }
}

/// Counters describing the lifecycle of an [`RcuFib`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcuStats {
    /// Generation of the currently published snapshot.
    pub generation: u64,
    /// Routes installed (announcements applied) since creation.
    pub installs: u64,
    /// Routes withdrawn since creation.
    pub withdrawals: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Publishes that patched a recycled snapshot (copying only the
    /// changed slots) instead of cloning the full table.
    pub delta_publishes: u64,
    /// Retired snapshots still waiting out their grace period.
    pub pending_retired: usize,
    /// Retired snapshots reclaimed after a full grace period.
    pub reclaimed: u64,
}

/// A concurrently updatable FIB: wait-free batched reads over immutable
/// [`Dir24_8`] snapshots, mutations through [`RouteControl`].
///
/// Cloning the handle is cheap; [`RcuFib::reader`] and
/// [`RcuFib::control`] mint the two roles.
#[derive(Clone)]
pub struct RcuFib {
    shared: Arc<RcuShared>,
}

impl RcuFib {
    /// Builds an RCU FIB whose first published snapshot is compiled from
    /// `initial`, with room for [`DEFAULT_MAX_READERS`] concurrent
    /// readers.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] for unencodable hops.
    pub fn new(initial: &RouteTable) -> Result<RcuFib, LookupError> {
        RcuFib::with_max_readers(initial, DEFAULT_MAX_READERS)
    }

    /// [`RcuFib::new`] with an explicit epoch-slot capacity.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] for unencodable hops.
    pub fn with_max_readers(
        initial: &RouteTable,
        max_readers: usize,
    ) -> Result<RcuFib, LookupError> {
        assert!(max_readers > 0, "need at least one reader slot");
        let mut rib = DynamicDir24_8::from_table(initial)?;
        // The first snapshot is taken right here, so the dirt the initial
        // build left behind is already reflected in it.
        let _ = rib.take_dirty();
        let first = Arc::new(rib.snapshot());
        // Prime the spare with a second clone (construction is off the
        // hot path) so even the very first publish is delta-patched —
        // otherwise it pays the one full-table clone while traffic flows.
        let (spare24, spare_long) = rib.snapshot().into_parts();
        let epochs: Vec<CachePadded<AtomicU64>> = (0..max_readers)
            .map(|_| CachePadded::new(AtomicU64::new(QUIESCENT)))
            .collect();
        Ok(RcuFib {
            shared: Arc::new(RcuShared {
                gen: AtomicU64::new(0),
                current: AtomicPtr::new(Arc::into_raw(first) as *mut Dir24_8),
                epochs: epochs.into_boxed_slice(),
                next_slot: AtomicUsize::new(0),
                free_slots: Mutex::new(Vec::new()),
                writer: Mutex::new(WriterState {
                    rib,
                    retired: Vec::new(),
                    spare: Some((0, spare24, spare_long)),
                    dirty_log: Vec::new(),
                    installs: 0,
                    withdrawals: 0,
                    publishes: 0,
                    delta_publishes: 0,
                    reclaimed: 0,
                }),
            }),
        })
    }

    /// Mints a reader with its own epoch slot.
    ///
    /// # Panics
    ///
    /// Panics when more than `max_readers` readers are alive at once.
    pub fn reader(&self) -> FibReader {
        FibReader::new(Arc::clone(&self.shared))
    }

    /// Mints the writer handle (any number may exist; they serialize on
    /// the writer mutex).
    pub fn control(&self) -> RouteControl {
        RouteControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.shared.gen.load(Ordering::SeqCst)
    }

    /// Lifecycle counters (takes the writer lock briefly).
    pub fn stats(&self) -> RcuStats {
        stats_of(&self.shared)
    }
}

fn stats_of(shared: &RcuShared) -> RcuStats {
    let w = shared.writer.lock();
    RcuStats {
        generation: shared.gen.load(Ordering::SeqCst),
        installs: w.installs,
        withdrawals: w.withdrawals,
        publishes: w.publishes,
        delta_publishes: w.delta_publishes,
        pending_retired: w.retired.len(),
        reclaimed: w.reclaimed,
    }
}

/// Builds the snapshot a publish will install: patch the recycled spare
/// with the deltas it missed when possible, otherwise clone the full
/// working table.
fn snapshot_for_publish(w: &mut WriterState) -> Dir24_8 {
    if let Some((spare_gen, tbl24, tbl_long)) = w.spare.take() {
        // The spare needs every delta consumed after its generation;
        // the log holds consecutive generations, so covering the first
        // needed label means covering them all.
        let covered = w
            .dirty_log
            .first()
            .is_some_and(|(label, _)| *label <= spare_gen + 1);
        if covered {
            let mut merged = DirtyDelta::default();
            for (label, delta) in &w.dirty_log {
                if *label > spare_gen {
                    merged.merge(delta);
                }
            }
            if !merged.overflow() {
                w.delta_publishes += 1;
                return w.rib.patch_snapshot(tbl24, tbl_long, &merged);
            }
        }
        // Too stale or too much churn since: the buffers are dropped and
        // the next reclaim donates a fresh spare.
    }
    w.rib.snapshot()
}

/// Drops dirty-log entries nothing can need anymore: the spare (and any
/// retired snapshot that may yet become the spare) only ever replays
/// deltas newer than its own generation.
fn prune_dirty_log(w: &mut WriterState) {
    let mut needed_from = u64::MAX;
    if let Some((spare_gen, ..)) = &w.spare {
        needed_from = needed_from.min(spare_gen + 1);
    }
    for (retire_gen, _) in &w.retired {
        // Reclaimed at `retire_gen`, this snapshot would become a spare
        // of generation `retire_gen - 1`, needing labels ≥ `retire_gen`.
        needed_from = needed_from.min(*retire_gen);
    }
    w.dirty_log.retain(|(label, _)| *label >= needed_from);
    // Churn far outpacing reclamation (e.g. a reader pinned for a long
    // stretch): cap the log rather than grow without bound; a spare that
    // then lacks coverage falls back to a full clone.
    const LOG_CAP: usize = 16;
    if w.dirty_log.len() > LOG_CAP {
        let cut = w.dirty_log.len() - LOG_CAP;
        w.dirty_log.drain(..cut);
    }
}

impl std::fmt::Debug for RcuFib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuFib")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

fn alloc_slot(shared: &RcuShared) -> usize {
    if let Some(slot) = shared.free_slots.lock().pop() {
        return slot;
    }
    let slot = shared.next_slot.fetch_add(1, Ordering::Relaxed);
    assert!(
        slot < shared.epochs.len(),
        "too many concurrent FIB readers (capacity {})",
        shared.epochs.len()
    );
    slot
}

/// A per-core read handle: one epoch slot plus the shared state.
///
/// Not `Sync` (the pin protocol assumes one thread per slot); move it
/// into the worker, or [`FibReader::fork`] a sibling with its own slot.
pub struct FibReader {
    shared: Arc<RcuShared>,
    slot: usize,
    pinned: Cell<bool>,
}

impl FibReader {
    fn new(shared: Arc<RcuShared>) -> FibReader {
        let slot = alloc_slot(&shared);
        shared.epochs[slot].store(QUIESCENT, Ordering::SeqCst);
        FibReader {
            shared,
            slot,
            pinned: Cell::new(false),
        }
    }

    /// Mints another reader over the same FIB with a fresh epoch slot
    /// (what element replication uses).
    ///
    /// # Panics
    ///
    /// Panics when the reader capacity is exhausted.
    pub fn fork(&self) -> FibReader {
        FibReader::new(Arc::clone(&self.shared))
    }

    /// Enters a read-side critical section and returns a guard borrowing
    /// the current snapshot. One pin amortizes over a whole packet
    /// batch; the writer cannot reclaim the snapshot until the guard
    /// drops.
    ///
    /// # Panics
    ///
    /// Panics on nested pins from the same reader (one slot holds one
    /// epoch).
    pub fn pin(&self) -> FibGuard<'_> {
        assert!(!self.pinned.get(), "FibReader pinned twice");
        let epoch = &self.shared.epochs[self.slot];
        let snapshot = loop {
            // Announce the generation we are about to read, then confirm
            // it is still current. SeqCst on both sides puts the
            // announcement before the writer's post-publish epoch scan
            // in the single total order whenever the confirmation saw
            // the pre-publish generation (see module docs).
            let gen = self.shared.gen.load(Ordering::SeqCst);
            epoch.store(gen, Ordering::SeqCst);
            if self.shared.gen.load(Ordering::SeqCst) == gen {
                // An acquire load cannot be reordered before the SeqCst
                // confirmation above, so the pointer we see was current
                // no earlier than the announced generation.
                break self.shared.current.load(Ordering::Acquire);
            }
            // A publish raced the announcement; re-announce at the new
            // generation. No bound needed: at most one retry per
            // concurrent publish, and publishes are control-plane rate.
        };
        self.pinned.set(true);
        FibGuard {
            reader: self,
            snapshot,
        }
    }

    /// The generation this reader would pin right now.
    pub fn generation(&self) -> u64 {
        self.shared.gen.load(Ordering::SeqCst)
    }

    /// Control-plane counters for the FIB this reader covers. Lets a
    /// data-plane journal spot delta publishes vs full recompiles
    /// without holding a [`RouteControl`] handle.
    pub fn stats(&self) -> RcuStats {
        stats_of(&self.shared)
    }
}

impl Drop for FibReader {
    fn drop(&mut self) {
        self.shared.epochs[self.slot].store(QUIESCENT, Ordering::SeqCst);
        self.shared.free_slots.lock().push(self.slot);
    }
}

impl std::fmt::Debug for FibReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FibReader")
            .field("slot", &self.slot)
            .field("pinned", &self.pinned.get())
            .finish()
    }
}

/// An active read-side critical section; dereferences to the pinned
/// [`Dir24_8`] snapshot.
pub struct FibGuard<'a> {
    reader: &'a FibReader,
    snapshot: *const Dir24_8,
}

impl std::ops::Deref for FibGuard<'_> {
    type Target = Dir24_8;

    fn deref(&self) -> &Dir24_8 {
        // SAFETY: the snapshot was loaded under an announced epoch no
        // newer than its own generation; the writer retires a snapshot
        // only after every announced epoch reaches the generation that
        // replaced it, which cannot happen before this guard drops
        // (the epoch slot is reset in `FibGuard::drop`).
        unsafe { &*self.snapshot }
    }
}

impl Drop for FibGuard<'_> {
    fn drop(&mut self) {
        self.reader.pinned.set(false);
        self.reader.shared.epochs[self.reader.slot].store(QUIESCENT, Ordering::SeqCst);
    }
}

/// The control-plane handle: buffers incremental updates into the
/// private [`DynamicDir24_8`] and publishes immutable snapshots.
#[derive(Clone)]
pub struct RouteControl {
    shared: Arc<RcuShared>,
}

impl RouteControl {
    /// Installs (or replaces) a route in the *unpublished* working
    /// table. Readers see nothing until [`RouteControl::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] for unencodable hops.
    pub fn insert(&self, prefix: Prefix, hop: NextHop) -> Result<(), LookupError> {
        let mut w = self.shared.writer.lock();
        w.rib.insert(prefix, hop)?;
        w.installs += 1;
        Ok(())
    }

    /// Withdraws a route from the working table; returns its hop if it
    /// existed.
    pub fn remove(&self, prefix: &Prefix) -> Option<NextHop> {
        let mut w = self.shared.writer.lock();
        let hop = w.rib.remove(prefix);
        if hop.is_some() {
            w.withdrawals += 1;
        }
        hop
    }

    /// Applies a batch of updates to the working table without
    /// publishing — the natural grain for BGP-style churn, since one
    /// publish amortizes the snapshot clone over the whole batch.
    ///
    /// # Errors
    ///
    /// Returns the first [`LookupError`]; earlier updates in the batch
    /// remain applied (and unpublished).
    pub fn apply(&self, updates: &[RouteUpdate]) -> Result<(), LookupError> {
        let mut w = self.shared.writer.lock();
        for u in updates {
            match *u {
                RouteUpdate::Announce(prefix, hop) => {
                    w.rib.insert(prefix, hop)?;
                    w.installs += 1;
                }
                RouteUpdate::Withdraw(ref prefix) => {
                    if w.rib.remove(prefix).is_some() {
                        w.withdrawals += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Publishes the working table as a new immutable snapshot and
    /// returns its generation. Retires the previous snapshot and
    /// reclaims any whose grace period has passed.
    pub fn publish(&self) -> u64 {
        let mut w = self.shared.writer.lock();
        self.publish_locked(&mut w)
    }

    /// [`RouteControl::apply`] + [`RouteControl::publish`] in one writer
    /// critical section.
    ///
    /// # Errors
    ///
    /// As [`RouteControl::apply`]; nothing is published on error.
    pub fn apply_and_publish(&self, updates: &[RouteUpdate]) -> Result<u64, LookupError> {
        self.apply(updates)?;
        Ok(self.publish())
    }

    fn publish_locked(&self, w: &mut WriterState) -> u64 {
        let consuming_gen = self.shared.gen.load(Ordering::SeqCst) + 1;
        let delta = w.rib.take_dirty();
        w.dirty_log.push((consuming_gen, delta));
        let next = Arc::new(snapshot_for_publish(w));
        let next_ptr = Arc::into_raw(next) as *mut Dir24_8;
        let old_ptr = self.shared.current.swap(next_ptr, Ordering::AcqRel);
        // The swap precedes the generation bump, so any reader that
        // confirms the *new* generation is guaranteed to load the new
        // pointer (see the pin loop).
        let new_gen = self.shared.gen.fetch_add(1, Ordering::SeqCst) + 1;
        // SAFETY: `old_ptr` came out of `current`, which held one owned
        // Arc reference; we take that reference back and park it in
        // `retired` until the grace period passes, keeping the
        // allocation alive for in-flight readers.
        let old = unsafe { Arc::from_raw(old_ptr as *const Dir24_8) };
        w.retired.push((new_gen, old));
        w.publishes += 1;
        self.reclaim_locked(w);
        new_gen
    }

    /// Attempts reclamation without publishing (useful after the last
    /// readers went quiescent); returns the number of snapshots freed
    /// in total so far.
    pub fn try_reclaim(&self) -> u64 {
        let mut w = self.shared.writer.lock();
        self.reclaim_locked(&mut w);
        w.reclaimed
    }

    fn reclaim_locked(&self, w: &mut WriterState) {
        if w.retired.is_empty() {
            return;
        }
        // The oldest epoch any reader has announced; QUIESCENT readers
        // don't constrain reclamation.
        let slots = self
            .shared
            .next_slot
            .load(Ordering::SeqCst)
            .min(self.shared.epochs.len());
        let mut min_epoch = u64::MAX;
        for slot in &self.shared.epochs[..slots] {
            let e = slot.load(Ordering::SeqCst);
            if e != QUIESCENT {
                min_epoch = min_epoch.min(e);
            }
        }
        // A snapshot retired at generation g is safe once every pinned
        // reader announced an epoch ≥ g (it then must have loaded a
        // pointer at least as new as g's). The freshest reclaimed
        // snapshot's buffers become the spare for delta-patched reuse.
        let mut kept = Vec::with_capacity(w.retired.len());
        for (retire_gen, arc) in w.retired.drain(..) {
            if retire_gen > min_epoch {
                kept.push((retire_gen, arc));
                continue;
            }
            w.reclaimed += 1;
            // A retired snapshot published at `retire_gen - 1` still
            // holds that generation's state.
            let snap_gen = retire_gen - 1;
            let fresher = w.spare.as_ref().is_none_or(|(g, ..)| *g < snap_gen);
            if fresher {
                if let Ok(snap) = Arc::try_unwrap(arc) {
                    let (tbl24, tbl_long) = snap.into_parts();
                    w.spare = Some((snap_gen, tbl24, tbl_long));
                }
            }
        }
        w.retired = kept;
        prune_dirty_log(w);
    }

    /// Lifecycle counters (takes the writer lock briefly).
    pub fn stats(&self) -> RcuStats {
        stats_of(&self.shared)
    }

    /// Routes currently in the *working* table (published + unpublished
    /// updates).
    pub fn route_count(&self) -> usize {
        self.shared.writer.lock().rib.routes().len()
    }

    /// Generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.shared.gen.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for RouteControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteControl")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LpmLookup;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> u32 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap())
    }

    fn base_table() -> RouteTable {
        let mut t = RouteTable::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 1);
        t
    }

    #[test]
    fn updates_invisible_until_publish() {
        let fib = RcuFib::new(&base_table()).unwrap();
        let reader = fib.reader();
        let ctl = fib.control();
        ctl.insert(p("10.1.0.0/16"), 7).unwrap();
        assert_eq!(reader.pin().lookup(a("10.1.2.3")), Some(1), "unpublished");
        let g = ctl.publish();
        assert_eq!(g, 1);
        assert_eq!(reader.pin().lookup(a("10.1.2.3")), Some(7), "published");
    }

    #[test]
    fn pinned_reader_keeps_its_snapshot() {
        let fib = RcuFib::new(&base_table()).unwrap();
        let reader = fib.reader();
        let ctl = fib.control();
        let guard = reader.pin();
        ctl.insert(p("10.0.0.0/8"), 9).unwrap();
        ctl.publish();
        // The pinned guard still sees the generation it announced.
        assert_eq!(guard.lookup(a("10.2.2.2")), Some(1));
        drop(guard);
        assert_eq!(reader.pin().lookup(a("10.2.2.2")), Some(9));
    }

    #[test]
    fn grace_period_blocks_then_allows_reclamation() {
        let fib = RcuFib::new(&base_table()).unwrap();
        let reader = fib.reader();
        let ctl = fib.control();
        let guard = reader.pin();
        ctl.insert(p("10.9.0.0/16"), 3).unwrap();
        ctl.publish();
        assert_eq!(fib.stats().pending_retired, 1, "guard blocks reclamation");
        assert_eq!(ctl.try_reclaim(), 0);
        drop(guard);
        assert_eq!(
            ctl.try_reclaim(),
            1,
            "quiescent reader frees the old snapshot"
        );
        assert_eq!(fib.stats().pending_retired, 0);
    }

    #[test]
    fn batched_updates_and_stats() {
        let fib = RcuFib::new(&base_table()).unwrap();
        let ctl = fib.control();
        let updates = vec![
            RouteUpdate::Announce(p("192.168.0.0/16"), 4),
            RouteUpdate::Announce(p("192.168.7.0/24"), 5),
            RouteUpdate::Withdraw(p("10.0.0.0/8")),
            RouteUpdate::Withdraw(p("172.16.0.0/12")), // Not present.
        ];
        let g = ctl.apply_and_publish(&updates).unwrap();
        assert_eq!(g, 1);
        let reader = fib.reader();
        assert_eq!(reader.pin().lookup(a("192.168.7.9")), Some(5));
        assert_eq!(
            reader.pin().lookup(a("10.1.1.1")),
            Some(0),
            "fell to default"
        );
        let stats = fib.stats();
        assert_eq!(stats.installs, 2);
        assert_eq!(stats.withdrawals, 1);
        assert_eq!(stats.publishes, 1);
        assert_eq!(ctl.route_count(), 3);
    }

    #[test]
    fn reader_slots_recycle_on_drop() {
        let table = base_table();
        let fib = RcuFib::with_max_readers(&table, 2).unwrap();
        let r1 = fib.reader();
        let r2 = r1.fork();
        drop(r1);
        let r3 = fib.reader(); // Reuses r1's slot; must not panic.
        drop((r2, r3));
        let _ = fib.reader();
    }

    #[test]
    #[should_panic(expected = "too many concurrent FIB readers")]
    fn reader_capacity_is_enforced() {
        let fib = RcuFib::with_max_readers(&base_table(), 1).unwrap();
        let _r1 = fib.reader();
        let _r2 = fib.reader();
    }

    #[test]
    #[should_panic(expected = "pinned twice")]
    fn nested_pin_is_rejected() {
        let fib = RcuFib::new(&base_table()).unwrap();
        let reader = fib.reader();
        let _g1 = reader.pin();
        let _g2 = reader.pin();
    }

    #[test]
    fn delta_publishes_match_full_recompile() {
        // Many small publish rounds so snapshots cycle through the spare
        // and get delta-patched; every published snapshot must be
        // indistinguishable from a full recompile of the mirrored RIB.
        use crate::gen::{addresses_within, generate_table, TableGenConfig};
        let table = generate_table(&TableGenConfig {
            routes: 3_000,
            long_fraction: 0.1,
            ..Default::default()
        });
        let fib = RcuFib::new(&table).unwrap();
        let reader = fib.reader();
        let ctl = fib.control();
        let mut mirror = table.clone();
        let routes: Vec<(Prefix, NextHop)> = table.iter().map(|(p, h)| (*p, *h)).collect();
        for round in 0..40usize {
            let mut updates = Vec::new();
            for k in 0..25usize {
                let (prefix, hop) = routes[(round * 37 + k * 13) % routes.len()];
                if (round + k) % 3 == 0 {
                    updates.push(RouteUpdate::Withdraw(prefix));
                    mirror.remove(&prefix);
                } else {
                    let hop = (hop + round as u16) % 16;
                    updates.push(RouteUpdate::Announce(prefix, hop));
                    mirror.insert(prefix, hop);
                }
            }
            ctl.apply_and_publish(&updates).unwrap();
            let reference = Dir24_8::compile(&mirror).unwrap();
            let guard = reader.pin();
            for addr in addresses_within(&table, 500, round as u64) {
                assert_eq!(
                    guard.lookup(addr),
                    reference.lookup(addr),
                    "round {round}, addr {addr:#010x}"
                );
            }
        }
        let stats = fib.stats();
        assert_eq!(stats.publishes, 40);
        assert!(
            stats.delta_publishes >= 30,
            "spare recycling should carry steady-state publishes, got {} of {}",
            stats.delta_publishes,
            stats.publishes
        );
    }

    #[test]
    fn concurrent_churn_yields_consistent_lookups() {
        // Readers hammer lookups while the writer flips one prefix's hop
        // between two values, publishing every flip. Every lookup must
        // return one of the values ever published for its address —
        // a torn or freed snapshot would surface as a wild hop or a
        // crash under ASAN-like allocator reuse.
        let fib = RcuFib::new(&base_table()).unwrap();
        let ctl = fib.control();
        let readers: Vec<FibReader> = (0..4).map(|_| fib.reader()).collect();
        let addr = a("10.77.1.1");
        std::thread::scope(|scope| {
            for reader in readers {
                scope.spawn(move || {
                    for _ in 0..20_000 {
                        let guard = reader.pin();
                        let hop = guard.lookup(addr).expect("always covered");
                        assert!(hop == 1 || hop == 21 || hop == 22, "torn hop {hop}");
                    }
                });
            }
            scope.spawn(move || {
                for i in 0..500u16 {
                    ctl.insert(p("10.77.0.0/16"), 21 + i % 2).unwrap();
                    ctl.publish();
                }
            });
        });
        let stats = fib.stats();
        assert_eq!(stats.publishes, 500);
        // Once everything is quiescent one reclaim pass frees all but
        // the live snapshot.
        assert_eq!(fib.control().try_reclaim(), 500);
        assert_eq!(fib.stats().pending_retired, 0);
    }
}
