//! Incrementally updatable DIR-24-8.
//!
//! [`crate::Dir24_8`] is an immutable compile-once FIB; real routers see
//! continuous BGP churn (hundreds of updates per second in 2009).
//! [`DynamicDir24_8`] supports in-place `insert`/`remove` by keeping,
//! alongside each table entry, the *prefix length that owns it*. An
//! update then only touches entries owned by shorter (insert) or exactly
//! the removed (remove) prefixes — the classic owner-tracking scheme from
//! the DIR-24-8 paper's update discussion.
//!
//! Memory: one extra byte per entry (≈16 MiB for `TBL24`), the price of
//! O(affected-range) updates instead of a full 2²⁴-entry rebuild.

use crate::prefix::Prefix;
use crate::table::RouteTable;
use crate::{LookupError, LpmLookup, NextHop, MAX_NEXT_HOP};

const TBL24_SIZE: usize = 1 << 24;
const LONG_FLAG: u16 = 0x8000;
/// Owner length sentinel for "no route".
const NO_OWNER: u8 = 0xff;

/// Entry budget past which a [`DirtyDelta`] degrades to "clone
/// everything": copying more than this many table slots individually
/// costs about as much as the straight memcpy it was avoiding.
const DIRTY_OVERFLOW_ENTRIES: usize = 1 << 21;
/// Range/segment count budget — bounds the delta's own memory.
const DIRTY_OVERFLOW_SPANS: usize = 1 << 16;

/// The table slots rewritten since the last [`DynamicDir24_8::take_dirty`],
/// in a form a snapshot holder can replay: copy these slots from the live
/// tables and an old snapshot becomes current, without touching the other
/// ~16M entries.
#[derive(Debug, Clone, Default)]
pub struct DirtyDelta {
    /// Inclusive `TBL24` slot ranges rewritten.
    ranges24: Vec<(u32, u32)>,
    /// Spill-segment indices rewritten (256 entries each).
    segments: Vec<u32>,
    /// Total entries covered (clone-cost proxy).
    entries: usize,
    /// Set once the delta grew past the point where replaying it beats a
    /// full clone; the span lists are discarded when this trips.
    overflow: bool,
}

impl DirtyDelta {
    /// `true` when nothing was rewritten.
    pub fn is_empty(&self) -> bool {
        !self.overflow && self.ranges24.is_empty() && self.segments.is_empty()
    }

    /// `true` when the delta no longer describes the rewrites precisely
    /// and the holder must fall back to a full clone.
    pub fn overflow(&self) -> bool {
        self.overflow
    }

    /// Number of table entries the delta covers.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Folds `other` into `self` (set union, overflow-propagating).
    pub fn merge(&mut self, other: &DirtyDelta) {
        if other.overflow {
            self.trip_overflow();
        }
        if self.overflow {
            return;
        }
        for &(s, e) in &other.ranges24 {
            self.mark24(s, e);
        }
        for &seg in &other.segments {
            self.mark_seg(seg);
        }
    }

    fn trip_overflow(&mut self) {
        self.overflow = true;
        self.ranges24 = Vec::new();
        self.segments = Vec::new();
    }

    fn over_budget(&self) -> bool {
        self.entries > DIRTY_OVERFLOW_ENTRIES
            || self.ranges24.len() + self.segments.len() > DIRTY_OVERFLOW_SPANS
    }

    fn mark24(&mut self, start: u32, end: u32) {
        if self.overflow {
            return;
        }
        // Adjacent updates often touch adjacent slots; cheap coalescing
        // with the previous range keeps the span list short.
        if let Some(last) = self.ranges24.last_mut() {
            if start <= last.1.saturating_add(1) && end.saturating_add(1) >= last.0 {
                let old_span = (last.1 - last.0 + 1) as usize;
                last.0 = last.0.min(start);
                last.1 = last.1.max(end);
                self.entries += (last.1 - last.0 + 1) as usize - old_span;
                if self.over_budget() {
                    self.trip_overflow();
                }
                return;
            }
        }
        self.ranges24.push((start, end));
        self.entries += (end - start + 1) as usize;
        if self.over_budget() {
            self.trip_overflow();
        }
    }

    fn mark_seg(&mut self, seg: u32) {
        if self.overflow {
            return;
        }
        if self.segments.last() == Some(&seg) {
            return;
        }
        self.segments.push(seg);
        self.entries += 256;
        if self.over_budget() {
            self.trip_overflow();
        }
    }
}

/// A mutable DIR-24-8 with owner tracking.
pub struct DynamicDir24_8 {
    /// Authoritative route set (needed to find replacement owners on
    /// remove).
    rib: RouteTable,
    tbl24: Vec<u16>,
    owner24: Vec<u8>,
    tbl_long: Vec<u16>,
    owner_long: Vec<u8>,
    /// Free-list of segment indices whose slots got un-spilled.
    free_segments: Vec<usize>,
    /// Slots rewritten since the last [`DynamicDir24_8::take_dirty`].
    dirty: DirtyDelta,
}

impl DynamicDir24_8 {
    /// Creates an empty FIB.
    pub fn new() -> DynamicDir24_8 {
        DynamicDir24_8 {
            rib: RouteTable::new(),
            tbl24: vec![0u16; TBL24_SIZE],
            owner24: vec![NO_OWNER; TBL24_SIZE],
            tbl_long: Vec::new(),
            owner_long: Vec::new(),
            free_segments: Vec::new(),
            dirty: DirtyDelta::default(),
        }
    }

    /// Builds from an existing route table.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] for unencodable hops.
    pub fn from_table(table: &RouteTable) -> Result<DynamicDir24_8, LookupError> {
        let mut fib = DynamicDir24_8::new();
        for (prefix, hop) in table.by_ascending_length() {
            fib.insert(prefix, hop)?;
        }
        Ok(fib)
    }

    /// Inserts or replaces a route.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError::NextHopTooLarge`] when the hop does not fit
    /// the 15-bit encoding.
    pub fn insert(&mut self, prefix: Prefix, hop: NextHop) -> Result<(), LookupError> {
        if hop > MAX_NEXT_HOP {
            return Err(LookupError::NextHopTooLarge(hop));
        }
        self.rib.insert(prefix, hop);
        let encoded = hop + 1;
        if prefix.len() <= 24 {
            let start = (prefix.first() >> 8) as usize;
            let end = (prefix.last() >> 8) as usize;
            self.dirty.mark24(start as u32, end as u32);
            for slot in start..=end {
                if self.owner24[slot] == NO_OWNER || self.owner24[slot] <= prefix.len() {
                    self.owner24[slot] = prefix.len();
                    if self.tbl24[slot] & LONG_FLAG != 0 {
                        // Spilled slot: update the segment's background
                        // entries (those owned by ≤24-bit prefixes).
                        let seg_index = usize::from(self.tbl24[slot] & !LONG_FLAG);
                        self.dirty.mark_seg(seg_index as u32);
                        let seg = seg_index * 256;
                        for i in seg..seg + 256 {
                            if self.owner_long[i] == NO_OWNER || self.owner_long[i] <= prefix.len()
                            {
                                self.tbl_long[i] = encoded;
                                self.owner_long[i] = prefix.len();
                            }
                        }
                    } else {
                        self.tbl24[slot] = encoded;
                    }
                }
            }
        } else {
            let idx24 = (prefix.first() >> 8) as usize;
            let seg_index = self.ensure_segment(idx24);
            self.dirty.mark_seg(seg_index as u32);
            let base = seg_index * 256;
            let lo_start = (prefix.first() & 0xff) as usize;
            let lo_end = (prefix.last() & 0xff) as usize;
            for i in base + lo_start..=base + lo_end {
                if self.owner_long[i] == NO_OWNER || self.owner_long[i] <= prefix.len() {
                    self.tbl_long[i] = encoded;
                    self.owner_long[i] = prefix.len();
                }
            }
        }
        Ok(())
    }

    /// Removes a route; returns its next hop if it existed.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<NextHop> {
        let hop = self.rib.remove(prefix)?;
        // Prefix ranges are laminar (nested or disjoint), so every entry
        // the removed prefix owned falls back to the same replacement:
        // the longest remaining strictly-shorter route covering it.
        // One RIB scan per update, not per table slot.
        let (enc, owner) = self.background_for(prefix);
        if prefix.len() <= 24 {
            let start = (prefix.first() >> 8) as usize;
            let end = (prefix.last() >> 8) as usize;
            self.dirty.mark24(start as u32, end as u32);
            for slot in start..=end {
                if self.owner24[slot] != prefix.len() {
                    continue;
                }
                if self.tbl24[slot] & LONG_FLAG != 0 {
                    let seg_index = usize::from(self.tbl24[slot] & !LONG_FLAG);
                    self.dirty.mark_seg(seg_index as u32);
                    let seg = seg_index * 256;
                    for i in seg..seg + 256 {
                        if self.owner_long[i] == prefix.len() {
                            self.tbl_long[i] = enc;
                            self.owner_long[i] = owner;
                        }
                    }
                    self.owner24[slot] = owner;
                } else {
                    self.tbl24[slot] = enc;
                    self.owner24[slot] = owner;
                }
            }
        } else {
            let idx24 = (prefix.first() >> 8) as usize;
            if self.tbl24[idx24] & LONG_FLAG != 0 {
                let seg_index = usize::from(self.tbl24[idx24] & !LONG_FLAG);
                self.dirty.mark_seg(seg_index as u32);
                let base = seg_index * 256;
                let lo_start = (prefix.first() & 0xff) as usize;
                let lo_end = (prefix.last() & 0xff) as usize;
                for lo in lo_start..=lo_end {
                    let i = base + lo;
                    if self.owner_long[i] == prefix.len() {
                        self.tbl_long[i] = enc;
                        self.owner_long[i] = owner;
                    }
                }
                self.maybe_unspill(idx24);
            }
        }
        Some(hop)
    }

    /// Longest remaining route strictly shorter than `prefix` covering
    /// it, as `(encoded entry, owner length)`.
    ///
    /// Any covering route is an ancestor — `prefix`'s own address masked
    /// to a shorter length — so at most `len` exact RIB probes suffice.
    /// A full-RIB scan here would make every withdraw O(routes), which
    /// caps churn at a few hundred updates/sec on a million-route table.
    fn background_for(&self, prefix: &Prefix) -> (u16, u8) {
        for len in (0..prefix.len()).rev() {
            let q = Prefix::new(prefix.addr(), len);
            if let Some(hop) = self.rib.get(&q) {
                return (hop + 1, len);
            }
        }
        (0, NO_OWNER)
    }

    /// Ensures slot `idx24` spills to a segment; returns the segment id.
    fn ensure_segment(&mut self, idx24: usize) -> usize {
        if self.tbl24[idx24] & LONG_FLAG != 0 {
            return usize::from(self.tbl24[idx24] & !LONG_FLAG);
        }
        let background = self.tbl24[idx24];
        let owner = self.owner24[idx24];
        let seg_index = match self.free_segments.pop() {
            Some(seg) => seg,
            None => {
                let seg = self.tbl_long.len() / 256;
                self.tbl_long.extend(std::iter::repeat_n(0, 256));
                self.owner_long.extend(std::iter::repeat_n(NO_OWNER, 256));
                seg
            }
        };
        let base = seg_index * 256;
        for i in base..base + 256 {
            self.tbl_long[i] = background;
            self.owner_long[i] = owner;
        }
        self.tbl24[idx24] = LONG_FLAG | seg_index as u16;
        self.dirty.mark24(idx24 as u32, idx24 as u32);
        self.dirty.mark_seg(seg_index as u32);
        seg_index
    }

    /// Releases a segment whose entries all fell back to ≤24-bit owners.
    fn maybe_unspill(&mut self, idx24: usize) {
        let seg_index = usize::from(self.tbl24[idx24] & !LONG_FLAG);
        let base = seg_index * 256;
        let all_background = self.owner_long[base..base + 256]
            .iter()
            .all(|&o| o == NO_OWNER || o <= 24);
        if !all_background {
            return;
        }
        // Uniform background → restore the flat TBL24 entry.
        let entry = self.tbl_long[base];
        let owner = self.owner_long[base];
        let uniform = self.tbl_long[base..base + 256].iter().all(|&e| e == entry)
            && self.owner_long[base..base + 256]
                .iter()
                .all(|&o| o == owner);
        if uniform {
            self.tbl24[idx24] = entry;
            self.owner24[idx24] = owner;
            self.dirty.mark24(idx24 as u32, idx24 as u32);
            self.free_segments.push(seg_index);
        }
    }

    /// Number of live spill segments.
    pub fn long_segments(&self) -> usize {
        self.tbl_long.len() / 256 - self.free_segments.len()
    }

    /// Clones the current table state into an immutable [`crate::Dir24_8`]
    /// — the publish step of the RCU FIB. Freed spill segments are copied
    /// as-is (they are unreachable from `TBL24`, so lookups are
    /// unaffected; the snapshot just carries a little slack memory).
    pub fn snapshot(&self) -> crate::Dir24_8 {
        crate::Dir24_8::from_parts(self.tbl24.clone(), self.tbl_long.clone(), self.rib.len())
    }

    /// Takes the accumulated dirty set — the slots rewritten since the
    /// previous call — leaving it empty. The RCU publish path labels
    /// these per generation so stale snapshots can be patched instead of
    /// re-cloned.
    pub fn take_dirty(&mut self) -> DirtyDelta {
        std::mem::take(&mut self.dirty)
    }

    /// Brings an old snapshot's buffers up to date by copying only the
    /// entries named in `delta` (plus any `TBLlong` growth) from the live
    /// tables, and wraps them as a fresh immutable snapshot.
    ///
    /// `delta` must be the union of every dirty set taken since the
    /// buffers were current — this is the O(changed-slots) alternative to
    /// [`DynamicDir24_8::snapshot`]'s 32 MiB clone, what lets a control
    /// plane publish thousands of routes/sec without stealing the
    /// dataplane's memory bandwidth.
    ///
    /// # Panics
    ///
    /// Panics when `delta` overflowed (callers must fall back to
    /// [`DynamicDir24_8::snapshot`]) or when the buffers have the wrong
    /// shape.
    pub fn patch_snapshot(
        &self,
        mut tbl24: Vec<u16>,
        mut tbl_long: Vec<u16>,
        delta: &DirtyDelta,
    ) -> crate::Dir24_8 {
        assert!(!delta.overflow(), "overflowed delta cannot be replayed");
        assert_eq!(tbl24.len(), TBL24_SIZE, "not a TBL24 buffer");
        assert!(
            tbl_long.len() <= self.tbl_long.len(),
            "snapshot buffers newer than the live table"
        );
        for &(start, end) in &delta.ranges24 {
            let (s, e) = (start as usize, end as usize);
            tbl24[s..=e].copy_from_slice(&self.tbl24[s..=e]);
        }
        // TBLlong only grows; new segments are always in the dirty set,
        // so zero-extending before the segment copies is enough.
        tbl_long.resize(self.tbl_long.len(), 0);
        for &seg in &delta.segments {
            let base = seg as usize * 256;
            tbl_long[base..base + 256].copy_from_slice(&self.tbl_long[base..base + 256]);
        }
        crate::Dir24_8::from_parts(tbl24, tbl_long, self.rib.len())
    }

    /// The authoritative route set.
    pub fn routes(&self) -> &RouteTable {
        &self.rib
    }
}

impl Default for DynamicDir24_8 {
    fn default() -> Self {
        DynamicDir24_8::new()
    }
}

impl LpmLookup for DynamicDir24_8 {
    #[inline]
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let entry = self.tbl24[(addr >> 8) as usize];
        let resolved = if entry & LONG_FLAG == 0 {
            entry
        } else {
            let seg = usize::from(entry & !LONG_FLAG) * 256;
            self.tbl_long[seg + (addr & 0xff) as usize]
        };
        if resolved == 0 {
            None
        } else {
            Some(resolved - 1)
        }
    }

    fn route_count(&self) -> usize {
        self.rib.len()
    }

    fn memory_bytes(&self) -> usize {
        self.tbl24.len() * 2 + self.owner24.len() + self.tbl_long.len() * 2 + self.owner_long.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> u32 {
        u32::from(s.parse::<std::net::Ipv4Addr>().unwrap())
    }

    #[test]
    fn insert_then_lookup() {
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.0.0.0/8"), 1).unwrap();
        fib.insert(p("10.1.0.0/16"), 2).unwrap();
        assert_eq!(fib.lookup(a("10.1.2.3")), Some(2));
        assert_eq!(fib.lookup(a("10.9.9.9")), Some(1));
        assert_eq!(fib.lookup(a("11.0.0.0")), None);
    }

    #[test]
    fn out_of_order_insertion_is_handled() {
        // Unlike the static compiler, inserts arrive in arbitrary order.
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.1.2.0/24"), 3).unwrap();
        fib.insert(p("10.0.0.0/8"), 1).unwrap(); // Shorter, later.
        assert_eq!(fib.lookup(a("10.1.2.9")), Some(3), "longer still wins");
        assert_eq!(fib.lookup(a("10.2.0.0")), Some(1));
    }

    #[test]
    fn remove_restores_covering_route() {
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.0.0.0/8"), 1).unwrap();
        fib.insert(p("10.1.0.0/16"), 2).unwrap();
        assert_eq!(fib.remove(&p("10.1.0.0/16")), Some(2));
        assert_eq!(fib.lookup(a("10.1.2.3")), Some(1), "falls back to /8");
        assert_eq!(fib.remove(&p("10.0.0.0/8")), Some(1));
        assert_eq!(fib.lookup(a("10.1.2.3")), None);
        assert_eq!(fib.remove(&p("10.0.0.0/8")), None, "already gone");
    }

    #[test]
    fn long_prefixes_spill_and_unspill() {
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.1.2.0/24"), 3).unwrap();
        fib.insert(p("10.1.2.128/25"), 4).unwrap();
        assert_eq!(fib.long_segments(), 1);
        assert_eq!(fib.lookup(a("10.1.2.129")), Some(4));
        assert_eq!(fib.lookup(a("10.1.2.1")), Some(3));
        fib.remove(&p("10.1.2.128/25"));
        assert_eq!(fib.lookup(a("10.1.2.129")), Some(3));
        assert_eq!(fib.long_segments(), 0, "segment reclaimed");
        // Reuse the freed segment.
        fib.insert(p("99.0.0.1/32"), 9).unwrap();
        assert_eq!(fib.long_segments(), 1);
        assert_eq!(fib.lookup(a("99.0.0.1")), Some(9));
    }

    #[test]
    fn shorter_insert_updates_spilled_background() {
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.1.2.128/25"), 4).unwrap();
        // Now a covering /16 arrives: the other half of the spilled /24
        // must adopt it.
        fib.insert(p("10.1.0.0/16"), 7).unwrap();
        assert_eq!(fib.lookup(a("10.1.2.1")), Some(7));
        assert_eq!(fib.lookup(a("10.1.2.200")), Some(4));
    }

    #[test]
    fn replace_route_in_place() {
        let mut fib = DynamicDir24_8::new();
        fib.insert(p("10.0.0.0/8"), 1).unwrap();
        fib.insert(p("10.0.0.0/8"), 5).unwrap();
        assert_eq!(fib.lookup(a("10.3.3.3")), Some(5));
        assert_eq!(fib.route_count(), 1);
    }

    #[test]
    fn matches_static_fib_after_churn() {
        use crate::gen::{addresses_within, generate_table, TableGenConfig};
        let table = generate_table(&TableGenConfig {
            routes: 2_000,
            long_fraction: 0.1,
            ..Default::default()
        });
        let mut dynamic = DynamicDir24_8::from_table(&table).unwrap();
        // Churn: remove every 3rd route, change every 5th.
        let routes: Vec<(Prefix, NextHop)> = table.iter().map(|(p, h)| (*p, *h)).collect();
        for (i, (prefix, hop)) in routes.iter().enumerate() {
            if i % 3 == 0 {
                dynamic.remove(prefix);
            } else if i % 5 == 0 {
                dynamic.insert(*prefix, (hop + 1) % 16).unwrap();
            }
        }
        // Rebuild the reference from the surviving RIB and compare.
        let reference = crate::Dir24_8::compile(dynamic.routes()).unwrap();
        for addr in addresses_within(&table, 4_000, 11) {
            assert_eq!(
                dynamic.lookup(addr),
                reference.lookup(addr),
                "mismatch at {addr:#010x}"
            );
        }
    }

    #[test]
    fn snapshot_matches_live_table() {
        use crate::gen::{addresses_within, generate_table, TableGenConfig};
        let table = generate_table(&TableGenConfig {
            routes: 1_500,
            long_fraction: 0.1,
            ..Default::default()
        });
        let mut dynamic = DynamicDir24_8::from_table(&table).unwrap();
        // Force some segment churn so the snapshot carries freed slack.
        dynamic.insert("10.1.2.128/25".parse().unwrap(), 4).unwrap();
        dynamic.remove(&"10.1.2.128/25".parse().unwrap());
        let snap = dynamic.snapshot();
        assert_eq!(snap.route_count(), dynamic.route_count());
        for addr in addresses_within(&table, 3_000, 23) {
            assert_eq!(snap.lookup(addr), dynamic.lookup(addr), "at {addr:#010x}");
        }
    }

    #[test]
    fn oversized_hop_rejected() {
        let mut fib = DynamicDir24_8::new();
        assert!(fib.insert(p("10.0.0.0/8"), MAX_NEXT_HOP + 1).is_err());
    }
}
