//! Portable software-prefetch shim.
//!
//! The batched lookup path issues explicit prefetches for the `TBL24`
//! (and, when spilled, `TBLlong`) cache lines of every destination in a
//! batch *before* resolving any of them, so the DRAM accesses of a
//! full-table FIB overlap instead of serialising — the same
//! memory-level-parallelism trick the paper's batching applies to NIC
//! descriptor rings, applied to the lookup structure itself.
//!
//! On x86_64 this lowers to `prefetcht0`; elsewhere it is a no-op, so the
//! batch pipeline stays portable and the differential tests cover both
//! shapes.

/// Hints the CPU to pull the cache line containing `p` into all cache
/// levels. Never faults: a prefetch of an invalid address is ignored by
/// the hardware, though callers here only ever pass in-bounds element
/// pointers.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no load and cannot
    // fault regardless of the pointer's validity.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetches element `idx` of `slice` (no-op when out of bounds, so
/// speculative index math cannot fault).
#[inline(always)]
pub fn prefetch_slice<T>(slice: &[T], idx: usize) {
    if let Some(e) = slice.get(idx) {
        prefetch_read(e as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        let v = vec![1u16; 1024];
        prefetch_slice(&v, 0);
        prefetch_slice(&v, 1023);
        prefetch_slice(&v, 1024); // Out of bounds: must not fault.
        prefetch_slice::<u16>(&[], 0);
        prefetch_read(v.as_ptr());
    }
}
