//! Differential and property-based tests across all LPM implementations.
//!
//! The invariant: for any route table and any address, DIR-24-8, the binary
//! trie, the linear table and the O(n) reference scan must agree exactly.

use proptest::prelude::*;
use rb_lookup::gen::{addresses_within, generate_table, TableGenConfig};
use rb_lookup::{BinaryTrie, Dir24_8, LinearTable, LpmLookup, Prefix, RouteTable};

/// Strategy producing an arbitrary (prefix, next-hop) route.
fn route_strategy() -> impl Strategy<Value = (Prefix, u16)> {
    (any::<u32>(), 0u8..=32, 0u16..1024).prop_map(|(addr, len, hop)| (Prefix::new(addr, len), hop))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_implementations_agree(
        routes in prop::collection::vec(route_strategy(), 0..64),
        probes in prop::collection::vec(any::<u32>(), 1..64),
    ) {
        let table: RouteTable = routes.into_iter().collect();
        let dir = Dir24_8::compile(&table).unwrap();
        let trie = BinaryTrie::compile(&table);
        let lin = LinearTable::compile(&table);
        for addr in probes {
            let expected = table.lookup_reference(addr);
            prop_assert_eq!(dir.lookup(addr), expected, "dir24-8 at {:#010x}", addr);
            prop_assert_eq!(trie.lookup(addr), expected, "trie at {:#010x}", addr);
            prop_assert_eq!(lin.lookup(addr), expected, "linear at {:#010x}", addr);
        }
    }

    #[test]
    fn lookup_batch_matches_scalar_lookup(
        routes in prop::collection::vec(route_strategy(), 0..64),
        long_routes in prop::collection::vec(
            // Force >/24 prefixes so TBLlong segments are always exercised.
            (any::<u32>(), 25u8..=32, 0u16..1024)
                .prop_map(|(addr, len, hop)| (Prefix::new(addr, len), hop)),
            1..16,
        ),
        probes in prop::collection::vec(any::<u32>(), 1..128),
    ) {
        let table: RouteTable = routes.into_iter().chain(long_routes).collect();
        let dir = Dir24_8::compile(&table).unwrap();
        prop_assert!(dir.long_segments() > 0, "long routes must spill");
        let mut batched = vec![None; probes.len()];
        dir.lookup_batch(&probes, &mut batched);
        for (i, &addr) in probes.iter().enumerate() {
            prop_assert_eq!(batched[i], dir.lookup(addr), "batch vs scalar at {:#010x}", addr);
            prop_assert_eq!(batched[i], table.lookup_reference(addr), "batch vs reference at {:#010x}", addr);
        }
    }

    #[test]
    fn probes_at_prefix_boundaries_agree(
        routes in prop::collection::vec(route_strategy(), 1..48),
    ) {
        let table: RouteTable = routes.into_iter().collect();
        let dir = Dir24_8::compile(&table).unwrap();
        let trie = BinaryTrie::compile(&table);
        // Boundary addresses are where range-expansion bugs live.
        for (p, _) in table.iter() {
            for addr in [
                p.first(),
                p.last(),
                p.first().wrapping_sub(1),
                p.last().wrapping_add(1),
            ] {
                let expected = table.lookup_reference(addr);
                prop_assert_eq!(dir.lookup(addr), expected);
                prop_assert_eq!(trie.lookup(addr), expected);
            }
        }
    }
}

#[test]
fn generated_table_differential_sweep() {
    // A denser, deterministic sweep over a realistic generated table.
    let table = generate_table(&TableGenConfig {
        routes: 4096,
        long_fraction: 0.05,
        ..Default::default()
    });
    let dir = Dir24_8::compile(&table).unwrap();
    let trie = BinaryTrie::compile(&table);
    for addr in addresses_within(&table, 8_000, 42) {
        let expected = table.lookup_reference(addr);
        assert_eq!(dir.lookup(addr), expected, "dir24-8 at {addr:#010x}");
        assert_eq!(trie.lookup(addr), expected, "trie at {addr:#010x}");
    }
}

#[test]
fn full_scale_256k_table_compiles_and_resolves() {
    // The paper's table size. Kept to one compile to bound test time.
    let table = generate_table(&TableGenConfig::default());
    assert!(table.len() > 256 * 1024);
    let dir = Dir24_8::compile(&table).unwrap();
    assert_eq!(dir.route_count(), table.len());
    // TBL24 dominates: 32 MiB of u16 entries.
    assert!(dir.memory_bytes() >= (1 << 24) * 2);
    for addr in addresses_within(&table, 1_000, 7) {
        assert!(dir.lookup(addr).is_some());
    }
}
