//! Traffic matrices over router ports.
//!
//! A traffic matrix gives, for each (input, output) port pair, the fraction
//! of the input port's offered load destined to that output. VLB's
//! guarantees are matrix-independent, but *Direct* VLB's achievable
//! per-server rate depends on how uniform the matrix is (§3.2) — uniform
//! matrices need 2R per server, adversarial ones 3R. These constructors
//! produce the matrices the evaluation sweeps over.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A row-stochastic traffic matrix: `demand[i][j]` is the fraction of
/// input `i`'s traffic destined to output `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// Uniform any-to-any: every input spreads evenly over all outputs
    /// (including its own port, as in the paper's any-to-any tests).
    pub fn uniform(n: usize) -> TrafficMatrix {
        assert!(n > 0, "matrix needs at least one port");
        TrafficMatrix {
            n,
            demand: vec![1.0 / n as f64; n * n],
        }
    }

    /// A random permutation: input `i` sends all traffic to exactly one
    /// output, no two inputs sharing an output. The canonical "hard but
    /// admissible" matrix for load-balanced routing.
    pub fn permutation(n: usize, seed: u64) -> TrafficMatrix {
        assert!(n > 0, "matrix needs at least one port");
        let mut targets: Vec<usize> = (0..n).collect();
        targets.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut demand = vec![0.0; n * n];
        for (i, &j) in targets.iter().enumerate() {
            demand[i * n + j] = 1.0;
        }
        TrafficMatrix { n, demand }
    }

    /// Hotspot: every input sends fraction `weight` to port `hot` and
    /// spreads the rest uniformly. `weight = 1.0` is the worst case for
    /// any switch (output overload).
    pub fn hotspot(n: usize, hot: usize, weight: f64) -> TrafficMatrix {
        assert!(n > 0 && hot < n, "hot port out of range");
        assert!((0.0..=1.0).contains(&weight), "weight must be a fraction");
        let spread = (1.0 - weight) / n as f64;
        let mut demand = vec![spread; n * n];
        for i in 0..n {
            demand[i * n + hot] += weight;
        }
        TrafficMatrix { n, demand }
    }

    /// Single pair: all traffic from port `src` to port `dst`, nothing
    /// else — the setup of the paper's reordering experiment (§6.2).
    pub fn single_pair(n: usize, src: usize, dst: usize) -> TrafficMatrix {
        assert!(src < n && dst < n, "ports out of range");
        let mut demand = vec![0.0; n * n];
        demand[src * n + dst] = 1.0;
        TrafficMatrix { n, demand }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Demand fraction from input `i` to output `j`.
    pub fn demand(&self, i: usize, j: usize) -> f64 {
        self.demand[i * self.n + j]
    }

    /// Total traffic fraction arriving at output `j` (in units of one
    /// input line rate), assuming all inputs offer full line rate.
    pub fn output_load(&self, j: usize) -> f64 {
        (0..self.n).map(|i| self.demand(i, j)).sum()
    }

    /// Returns `true` when no output is oversubscribed (load ≤ 1 + ε) —
    /// i.e. the matrix is *admissible* and a perfect switch could carry it.
    pub fn is_admissible(&self) -> bool {
        (0..self.n).all(|j| self.output_load(j) <= 1.0 + 1e-9)
    }

    /// A uniformity score in [0, 1]: 1 for the perfectly uniform matrix,
    /// lower as the matrix concentrates. Defined as the inverse ratio of
    /// the maximum entry to the uniform entry.
    pub fn uniformity(&self) -> f64 {
        let max = self.demand.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            return 1.0;
        }
        (1.0 / self.n as f64) / max
    }

    /// Row sums (each input's total demand; 1.0 when fully loaded).
    pub fn row_sum(&self, i: usize) -> f64 {
        (0..self.n).map(|j| self.demand(i, j)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rows_sum_to_one_and_admissible() {
        let m = TrafficMatrix::uniform(8);
        for i in 0..8 {
            assert!((m.row_sum(i) - 1.0).abs() < 1e-12);
        }
        assert!(m.is_admissible());
        assert!((m.uniformity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_is_admissible_and_concentrated() {
        let m = TrafficMatrix::permutation(16, 3);
        for i in 0..16 {
            assert!((m.row_sum(i) - 1.0).abs() < 1e-12);
        }
        assert!(m.is_admissible());
        assert!(m.uniformity() < 0.1);
        // Every output receives exactly one input's traffic.
        for j in 0..16 {
            assert!((m.output_load(j) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        assert_eq!(
            TrafficMatrix::permutation(8, 5),
            TrafficMatrix::permutation(8, 5)
        );
        assert_ne!(
            TrafficMatrix::permutation(8, 5),
            TrafficMatrix::permutation(8, 6)
        );
    }

    #[test]
    fn full_hotspot_is_inadmissible() {
        let m = TrafficMatrix::hotspot(4, 2, 1.0);
        assert!(!m.is_admissible());
        assert!((m.output_load(2) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mild_hotspot_rows_sum_to_one() {
        let m = TrafficMatrix::hotspot(4, 0, 0.25);
        for i in 0..4 {
            assert!((m.row_sum(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_pair_routes_everything_one_way() {
        let m = TrafficMatrix::single_pair(4, 1, 3);
        assert_eq!(m.demand(1, 3), 1.0);
        assert_eq!(m.row_sum(0), 0.0);
        assert_eq!(m.output_load(3), 1.0);
        assert!(m.is_admissible());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hotspot_bounds_checked() {
        TrafficMatrix::hotspot(4, 4, 0.5);
    }
}
