//! Packet-size distributions.
//!
//! Sizes are full Ethernet frame lengths in bytes (excluding the 4-byte
//! FCS, matching how the paper quotes rates: 64 B is the minimum frame).

use rand::rngs::StdRng;
use rand::Rng;

/// Minimum Ethernet frame length used throughout the paper.
pub const MIN_FRAME: usize = 64;

/// Maximum standard Ethernet frame length.
pub const MAX_FRAME: usize = 1518;

/// The Abilene-like empirical mixture.
///
/// The NLANR Abilene-I trace is no longer distributable, so we model its
/// defining property — the bimodal mix of small ACK/control packets and
/// MTU-sized data packets on a 2002-era backbone — with a three-point
/// mixture whose mean (≈ 760 B) reproduces the paper's observed behaviour:
/// realistic traffic is NIC-limited (24.6 Gbps) rather than CPU-limited.
pub const ABILENE_MIX: [(usize, f64); 3] = [(64, 0.45), (576, 0.10), (1500, 0.45)];

/// The classic simple-IMIX mixture (7:4:1 at 64/570/1518 B).
pub const IMIX_MIX: [(usize, f64); 3] = [(64, 7.0 / 12.0), (570, 4.0 / 12.0), (1518, 1.0 / 12.0)];

/// A distribution over Ethernet frame sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every frame has the same size (the paper's synthetic workloads).
    Fixed(usize),
    /// A discrete mixture of (size, probability) points.
    Mixture(Vec<(usize, f64)>),
    /// Uniformly random sizes in `[min, max]`.
    Uniform {
        /// Smallest frame size, inclusive.
        min: usize,
        /// Largest frame size, inclusive.
        max: usize,
    },
}

impl SizeDist {
    /// The paper's worst-case workload: fixed 64 B frames.
    pub fn worst_case() -> SizeDist {
        SizeDist::Fixed(MIN_FRAME)
    }

    /// The Abilene-like realistic workload.
    pub fn abilene() -> SizeDist {
        SizeDist::Mixture(ABILENE_MIX.to_vec())
    }

    /// Simple IMIX.
    pub fn imix() -> SizeDist {
        SizeDist::Mixture(IMIX_MIX.to_vec())
    }

    /// Returns the mean frame size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Mixture(points) => {
                let total: f64 = points.iter().map(|(_, w)| w).sum();
                points.iter().map(|(s, w)| (*s as f64) * w).sum::<f64>() / total
            }
            SizeDist::Uniform { min, max } => (*min + *max) as f64 / 2.0,
        }
    }

    /// Samples one frame size.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let size = match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Mixture(points) => {
                let total: f64 = points.iter().map(|(_, w)| w).sum();
                let mut x = rng.gen_range(0.0..total);
                let mut chosen = points[points.len() - 1].0;
                for (s, w) in points {
                    if x < *w {
                        chosen = *s;
                        break;
                    }
                    x -= w;
                }
                chosen
            }
            SizeDist::Uniform { min, max } => rng.gen_range(*min..=*max),
        };
        size.clamp(MIN_FRAME, MAX_FRAME)
    }

    /// Converts a bit rate to the packet rate this distribution implies.
    pub fn packets_per_sec(&self, bits_per_sec: f64) -> f64 {
        bits_per_sec / (self.mean() * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_always_returns_same() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SizeDist::Fixed(128);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 128);
        }
        assert_eq!(d.mean(), 128.0);
    }

    #[test]
    fn abilene_mean_is_realistic() {
        let mean = SizeDist::abilene().mean();
        assert!(
            (700.0..820.0).contains(&mean),
            "Abilene-like mean should be ~760 B, got {mean}"
        );
    }

    #[test]
    fn mixture_sample_frequencies_match_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = SizeDist::abilene();
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(d.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for (size, weight) in ABILENE_MIX {
            let freq = counts[&size] as f64 / n as f64;
            assert!(
                (freq - weight).abs() < 0.01,
                "size {size}: freq {freq} vs weight {weight}"
            );
        }
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::imix();
        let n = 200_000;
        let sum: usize = (0..n).map(|_| d.sample(&mut rng)).sum();
        let empirical = sum as f64 / n as f64;
        assert!((empirical - d.mean()).abs() < 5.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = SizeDist::Uniform { min: 100, max: 200 };
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!((100..=200).contains(&s));
        }
    }

    #[test]
    fn samples_clamp_to_frame_limits() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SizeDist::Fixed(10);
        assert_eq!(d.sample(&mut rng), MIN_FRAME);
        let d = SizeDist::Fixed(5000);
        assert_eq!(d.sample(&mut rng), MAX_FRAME);
    }

    #[test]
    fn packets_per_sec_conversion() {
        // 9.7 Gbps of 64 B frames ≈ 18.95 Mpps — the paper's headline pair.
        let pps = SizeDist::worst_case().packets_per_sec(9.7e9);
        assert!((pps / 1e6 - 18.95).abs() < 0.05, "got {pps}");
    }
}
