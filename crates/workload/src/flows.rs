//! Flow populations with heavy-tailed sizes.
//!
//! The reordering experiment (§6.2) needs traffic with realistic flow
//! structure: many short flows, a few elephants carrying most bytes.
//! [`FlowGenerator`] produces a population of five-tuples with
//! Pareto-distributed packet counts, which the trace generator then
//! interleaves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rb_packet::flow::FiveTuple;

/// Configuration of a flow population.
#[derive(Debug, Clone)]
pub struct FlowGenConfig {
    /// Number of distinct flows.
    pub flows: usize,
    /// Pareto shape parameter (1 < α ≤ 2 gives heavy tails; backbone
    /// measurements typically fit α ≈ 1.2–1.5).
    pub pareto_shape: f64,
    /// Minimum packets per flow (Pareto scale parameter).
    pub min_packets: usize,
    /// Fraction of flows that are TCP (the remainder UDP).
    pub tcp_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowGenConfig {
    fn default() -> Self {
        FlowGenConfig {
            flows: 1000,
            pareto_shape: 1.3,
            min_packets: 2,
            tcp_fraction: 0.9,
            seed: 0xf10e5,
        }
    }
}

/// One generated flow: its key and how many packets it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// The transport five-tuple.
    pub tuple: FiveTuple,
    /// Total packets in the flow.
    pub packets: usize,
}

/// Generates flow populations.
#[derive(Debug)]
pub struct FlowGenerator {
    config: FlowGenConfig,
}

impl FlowGenerator {
    /// Creates a generator from a config.
    pub fn new(config: FlowGenConfig) -> FlowGenerator {
        assert!(
            config.pareto_shape > 1.0,
            "shape must exceed 1 for a finite mean"
        );
        assert!(config.min_packets >= 1, "flows need at least one packet");
        FlowGenerator { config }
    }

    /// Generates the flow population.
    pub fn generate(&self) -> Vec<Flow> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.flows)
            .map(|i| {
                let tcp = rng.gen_bool(self.config.tcp_fraction);
                // Distinct, stable addresses per flow index; ephemeral
                // source ports, well-known-ish destination ports.
                let tuple = FiveTuple {
                    src_ip: 0x0a00_0000 | (i as u32 & 0x00ff_ffff),
                    dst_ip: 0xc0a8_0000 | rng.gen_range(0..0xffffu32),
                    src_port: rng.gen_range(1024..=65535),
                    dst_port: *[80u16, 443, 53, 8080, 25]
                        .get(rng.gen_range(0..5usize))
                        .expect("index in range"),
                    proto: if tcp { 6 } else { 17 },
                };
                Flow {
                    tuple,
                    packets: self.sample_pareto(&mut rng),
                }
            })
            .collect()
    }

    /// Samples a Pareto-distributed packet count via inverse transform.
    fn sample_pareto(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let x = self.config.min_packets as f64 / u.powf(1.0 / self.config.pareto_shape);
        // Cap so one flow cannot dominate an entire experiment.
        (x as usize).clamp(self.config.min_packets, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_flow_count() {
        let flows = FlowGenerator::new(FlowGenConfig::default()).generate();
        assert_eq!(flows.len(), 1000);
    }

    #[test]
    fn flows_are_distinct_and_deterministic() {
        let cfg = FlowGenConfig::default();
        let a = FlowGenerator::new(cfg.clone()).generate();
        let b = FlowGenerator::new(cfg).generate();
        assert_eq!(a, b);
        let tuples: std::collections::HashSet<_> = a.iter().map(|f| f.tuple).collect();
        assert!(tuples.len() > 990, "flows should be essentially unique");
    }

    #[test]
    fn packet_counts_are_heavy_tailed() {
        let flows = FlowGenerator::new(FlowGenConfig {
            flows: 10_000,
            ..Default::default()
        })
        .generate();
        let mut counts: Vec<usize> = flows.iter().map(|f| f.packets).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top1pct: usize = counts[..100].iter().sum();
        // Heavy tail: top 1% of flows should carry a disproportionate
        // share of packets (far more than 1%).
        assert!(
            top1pct as f64 / total as f64 > 0.15,
            "top 1% carries {:.1}%",
            100.0 * top1pct as f64 / total as f64
        );
        assert!(counts.iter().all(|&c| c >= 2));
    }

    #[test]
    fn tcp_fraction_is_respected() {
        let flows = FlowGenerator::new(FlowGenConfig {
            flows: 5000,
            tcp_fraction: 0.5,
            ..Default::default()
        })
        .generate();
        let tcp = flows.iter().filter(|f| f.tuple.proto == 6).count();
        let frac = tcp as f64 / flows.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "TCP fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn shape_validation() {
        FlowGenerator::new(FlowGenConfig {
            pareto_shape: 0.9,
            ..Default::default()
        });
    }
}
