//! Traffic workload generation for RouteBricks experiments.
//!
//! The paper characterises a packet-processing workload by "(1) the
//! distribution of packet sizes, and (2) the application" (§5.1). This
//! crate supplies the first axis plus the traffic structure the cluster
//! experiments need:
//!
//! * [`sizes`] — packet-size distributions: fixed-size (the worst-case
//!   64 B workload), IMIX, and an Abilene-like empirical mixture standing
//!   in for the NLANR "Abilene-I" trace the paper replays (the trace
//!   itself is no longer distributable; see DESIGN.md for the
//!   substitution argument).
//! * [`matrix`] — traffic matrices across router ports: uniform
//!   (any-to-any), hotspot, permutation and single-pair worst cases.
//! * [`flows`] — TCP/UDP flow populations with heavy-tailed sizes, for
//!   the reordering experiments.
//! * [`trace`] — synthetic packet traces: Poisson/back-to-back arrivals,
//!   flow-stamped packets, replayable into any dataplane.
//! * [`rib`] — synthetic full-table RIBs (up to ~1M prefixes with the
//!   default-free-zone length mix) and BGP-like churn streams for the
//!   route-lookup scaling experiments.

pub mod flows;
pub mod matrix;
pub mod rib;
pub mod sizes;
pub mod trace;

pub use flows::{FlowGenConfig, FlowGenerator};
pub use matrix::TrafficMatrix;
pub use rib::{churn_stream, rib_full_table, ChurnConfig};
pub use sizes::SizeDist;
pub use trace::{Arrivals, SynthTrace, TraceConfig, TracePacket};
