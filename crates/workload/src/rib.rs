//! Synthetic RIBs and route-churn streams.
//!
//! The paper's IP-routing workload uses a static 256K-entry table (§5.1);
//! scaling that axis to "Internet-scale" means (a) tables up to ~1M
//! prefixes with the default-free-zone length mix, and (b) a *churn
//! stream* — the announce/withdraw sequence a BGP session would feed the
//! control plane while the dataplane forwards. This module supplies
//! both, built on `rb_lookup::gen`'s length-distribution machinery so
//! table shape stays consistent across benches and tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rb_lookup::gen::{generate_table, TableGenConfig};
use rb_lookup::rcu::RouteUpdate;
use rb_lookup::{NextHop, Prefix, RouteTable};

/// Generates a full-table RIB of `n_prefixes` routes (plus the default
/// route) with a realistic /8–/24 length distribution and a small
/// fraction of longer more-specifics, deterministically from `seed`.
pub fn rib_full_table(n_prefixes: usize, seed: u64) -> RouteTable {
    generate_table(&TableGenConfig {
        routes: n_prefixes,
        seed,
        ..TableGenConfig::default()
    })
}

/// Configuration of a synthetic churn stream.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Updates to generate.
    pub updates: usize,
    /// Fraction (0.0–1.0) of withdrawals; the rest are announcements.
    /// Withdrawals pick prefixes previously announced (or present in the
    /// base RIB), so they usually hit.
    pub withdraw_fraction: f64,
    /// Next hops to spread announcements over.
    pub next_hops: NextHop,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            updates: 10_000,
            withdraw_fraction: 0.3,
            next_hops: 32,
            seed: 0xc4c4_0001,
        }
    }
}

/// Generates a churn stream against `base`: a mix of re-announcements of
/// existing prefixes (next-hop changes), announcements of fresh
/// more-specifics, and withdrawals of previously touched prefixes —
/// the three update shapes BGP churn is made of. The default route is
/// never withdrawn, so a FIB seeded from `base` keeps resolving every
/// address throughout the stream.
pub fn churn_stream(base: &RouteTable, config: &ChurnConfig) -> Vec<RouteUpdate> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut touchable: Vec<Prefix> = base
        .iter()
        .filter(|(p, _)| !p.is_default())
        .map(|(p, _)| *p)
        .collect();
    let mut updates = Vec::with_capacity(config.updates);
    while updates.len() < config.updates {
        let withdraw = !touchable.is_empty() && rng.gen_bool(config.withdraw_fraction);
        if withdraw {
            let idx = rng.gen_range(0..touchable.len());
            updates.push(RouteUpdate::Withdraw(touchable.swap_remove(idx)));
        } else if !touchable.is_empty() && rng.gen_bool(0.5) {
            // Re-announce an existing prefix with a new hop — the most
            // common real-world update.
            let p = touchable[rng.gen_range(0..touchable.len())];
            updates.push(RouteUpdate::Announce(
                p,
                rng.gen_range(0..config.next_hops.max(1)),
            ));
        } else {
            // A fresh more-specific in the unicast range.
            let addr: u32 = rng.gen_range(0x0100_0000..0xe000_0000);
            let len = rng.gen_range(16..=24);
            let p = Prefix::new(addr, len);
            touchable.push(p);
            updates.push(RouteUpdate::Announce(
                p,
                rng.gen_range(0..config.next_hops.max(1)),
            ));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_lookup::{DynamicDir24_8, LpmLookup};

    #[test]
    fn full_table_is_deterministic_and_sized() {
        let a = rib_full_table(2_000, 7);
        let b = rib_full_table(2_000, 7);
        assert!(a.len() >= 2_000);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>(),
            "same seed, same table"
        );
        assert_ne!(
            a.iter().collect::<Vec<_>>(),
            rib_full_table(2_000, 8).iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn churn_stream_applies_cleanly() {
        let base = rib_full_table(1_000, 3);
        let stream = churn_stream(
            &base,
            &ChurnConfig {
                updates: 5_000,
                ..ChurnConfig::default()
            },
        );
        assert_eq!(stream.len(), 5_000);
        let withdraws = stream
            .iter()
            .filter(|u| matches!(u, RouteUpdate::Withdraw(_)))
            .count();
        assert!(withdraws > 500, "withdrawals present: {withdraws}");
        // Applying the whole stream to a dynamic FIB must succeed and
        // keep the default route: every address still resolves.
        let mut fib = DynamicDir24_8::from_table(&base).unwrap();
        let mut hits = 0usize;
        for u in &stream {
            match *u {
                RouteUpdate::Announce(p, h) => fib.insert(p, h).unwrap(),
                RouteUpdate::Withdraw(ref p) => {
                    if fib.remove(p).is_some() {
                        hits += 1;
                    }
                }
            }
        }
        assert!(hits > withdraws / 2, "most withdrawals hit: {hits}");
        for addr in [0u32, 0x0a00_0001, 0x7fff_ffff, u32::MAX] {
            assert!(fib.lookup(addr).is_some(), "default route survived");
        }
    }

    #[test]
    fn churn_stream_is_deterministic() {
        let base = rib_full_table(200, 1);
        let cfg = ChurnConfig {
            updates: 300,
            ..ChurnConfig::default()
        };
        assert_eq!(churn_stream(&base, &cfg), churn_stream(&base, &cfg));
    }
}
