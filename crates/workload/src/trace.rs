//! Synthetic packet traces.
//!
//! A [`SynthTrace`] is a time-ordered list of lightweight packet records
//! (arrival time, size, flow, per-flow sequence number). Experiments that
//! need real frames materialise them on demand via
//! [`TracePacket::materialize`]; simulator experiments that only need
//! loads consume the records directly, which keeps multi-million-packet
//! runs cheap.

use crate::flows::{FlowGenConfig, FlowGenerator};
use crate::sizes::SizeDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rb_packet::builder::PacketSpec;
use rb_packet::flow::FiveTuple;
use rb_packet::Packet;

/// One record in a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePacket {
    /// Arrival time in nanoseconds from trace start.
    pub arrival_ns: u64,
    /// Ethernet frame size in bytes.
    pub size: usize,
    /// Transport flow the packet belongs to.
    pub flow: FiveTuple,
    /// 0-based sequence number of this packet within its flow.
    pub flow_seq: u32,
}

impl TracePacket {
    /// Builds the real Ethernet frame for this record (TCP for proto 6,
    /// UDP otherwise), carrying the flow's addresses and the sequence
    /// number (TCP `seq` field).
    pub fn materialize(&self) -> Packet {
        let src = format!(
            "{}:{}",
            std::net::Ipv4Addr::from(self.flow.src_ip),
            self.flow.src_port
        );
        let dst = format!(
            "{}:{}",
            std::net::Ipv4Addr::from(self.flow.dst_ip),
            self.flow.dst_port
        );
        let spec = if self.flow.proto == 6 {
            PacketSpec::tcp(self.flow_seq)
        } else {
            PacketSpec::udp()
        };
        let mut pkt = spec
            .src(&src)
            .expect("generated address is valid")
            .dst(&dst)
            .expect("generated address is valid")
            .frame_len(self.size)
            .build();
        pkt.meta.rx_ns = self.arrival_ns;
        pkt
    }
}

/// Packet arrival processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson (exponential inter-arrival) at the offered rate.
    Poisson,
    /// Constant spacing at the offered rate.
    Constant,
    /// On/off bursts: during a burst, `burst_packets` arrive at
    /// `peak_factor` times the offered rate, followed by an idle gap
    /// sized so the long-run mean equals the offered rate. The
    /// burst-tolerance stressor for queues and meters.
    OnOff {
        /// Packets per burst.
        burst_packets: usize,
        /// Peak-to-mean rate ratio during a burst (must exceed 1).
        peak_factor: f64,
    },
}

/// Configuration for trace synthesis.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total packets to generate.
    pub packets: usize,
    /// Offered load in bits per second (drives inter-arrival times).
    pub offered_bps: f64,
    /// Frame-size distribution.
    pub sizes: SizeDist,
    /// Flow population parameters.
    pub flows: FlowGenConfig,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// RNG seed (independent of the flow seed).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            packets: 100_000,
            offered_bps: 10e9,
            sizes: SizeDist::abilene(),
            flows: FlowGenConfig::default(),
            arrivals: Arrivals::Poisson,
            seed: 0x7ace,
        }
    }
}

/// A generated trace.
#[derive(Debug, Clone)]
pub struct SynthTrace {
    /// Records in non-decreasing arrival order.
    pub packets: Vec<TracePacket>,
}

impl SynthTrace {
    /// Generates a trace per `config`.
    ///
    /// Flows are weighted by their Pareto packet budget: an elephant flow
    /// contributes proportionally many packets, interleaved with the rest,
    /// mirroring how flows share a real link.
    pub fn generate(config: &TraceConfig) -> SynthTrace {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = FlowGenerator::new(config.flows.clone()).generate();
        let mean_gap_ns = (config.sizes.mean() * 8.0) / config.offered_bps * 1e9;

        // Remaining packet budget and next sequence number per flow.
        let mut budget: Vec<usize> = population.iter().map(|f| f.packets).collect();
        let mut next_seq: Vec<u32> = vec![0; population.len()];
        // Weighted index: pick flows proportionally to remaining budget,
        // approximated by a simple alias over the initial budgets with
        // rejection on exhausted flows (cheap and good enough).
        let total_budget: usize = budget.iter().sum();

        let mut out = Vec::with_capacity(config.packets);
        let mut now_ns = 0f64;
        for pkt_index in 0..config.packets {
            let gap = match config.arrivals {
                // Inverse-transform exponential sample.
                Arrivals::Poisson => -mean_gap_ns * (1.0 - rng.gen::<f64>()).ln(),
                Arrivals::Constant => mean_gap_ns,
                Arrivals::OnOff {
                    burst_packets,
                    peak_factor,
                } => {
                    assert!(peak_factor > 1.0, "peak factor must exceed 1");
                    let burst_packets = burst_packets.max(1);
                    if pkt_index % burst_packets == 0 && pkt_index > 0 {
                        // Idle gap: the time the burst "saved" relative to
                        // the mean spacing, so the long-run rate holds.
                        let burst_gap = mean_gap_ns / peak_factor;
                        mean_gap_ns * burst_packets as f64 - burst_gap * (burst_packets - 1) as f64
                    } else {
                        mean_gap_ns / peak_factor
                    }
                }
            };
            now_ns += gap;

            // Pick a flow weighted by original budget; retry on exhausted.
            let flow_idx = loop {
                let mut x = rng.gen_range(0..total_budget);
                let mut idx = 0;
                for (i, f) in population.iter().enumerate() {
                    if x < f.packets {
                        idx = i;
                        break;
                    }
                    x -= f.packets;
                }
                if budget[idx] > 0 {
                    break idx;
                }
                // All budgets exhausted? Reset them (trace longer than
                // population): flows simply restart.
                if budget.iter().all(|&b| b == 0) {
                    for (b, f) in budget.iter_mut().zip(&population) {
                        *b = f.packets;
                    }
                }
            };
            budget[flow_idx] -= 1;
            let seq = next_seq[flow_idx];
            next_seq[flow_idx] += 1;

            out.push(TracePacket {
                arrival_ns: now_ns as u64,
                size: config.sizes.sample(&mut rng),
                flow: population[flow_idx].tuple,
                flow_seq: seq,
            });
        }
        SynthTrace { packets: out }
    }

    /// Total bytes in the trace.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size as u64).sum()
    }

    /// Duration between first and last arrival, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(f), Some(l)) => l.arrival_ns - f.arrival_ns,
            _ => 0,
        }
    }

    /// Achieved offered load in bits per second.
    pub fn offered_bps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        (self.total_bytes() as f64 * 8.0) / (d as f64 / 1e9)
    }

    /// Number of distinct flows that appear in the trace.
    pub fn flow_count(&self) -> usize {
        self.packets
            .iter()
            .map(|p| p.flow)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TraceConfig {
        TraceConfig {
            packets: 20_000,
            flows: FlowGenConfig {
                flows: 200,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn trace_is_time_ordered() {
        let t = SynthTrace::generate(&small_config());
        assert!(t
            .packets
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
    }

    #[test]
    fn offered_load_matches_request() {
        let t = SynthTrace::generate(&small_config());
        let achieved = t.offered_bps();
        assert!(
            (achieved - 10e9).abs() / 10e9 < 0.05,
            "offered {achieved:.3e} vs requested 1e10"
        );
    }

    #[test]
    fn per_flow_sequence_numbers_are_contiguous() {
        let t = SynthTrace::generate(&small_config());
        let mut seen: std::collections::HashMap<FiveTuple, u32> = Default::default();
        for p in &t.packets {
            let next = seen.entry(p.flow).or_insert(0);
            assert_eq!(p.flow_seq, *next, "flow {:?} out of sequence", p.flow);
            *next += 1;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthTrace::generate(&small_config());
        let b = SynthTrace::generate(&small_config());
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn constant_spacing_when_not_poisson() {
        let cfg = TraceConfig {
            arrivals: Arrivals::Constant,
            packets: 100,
            sizes: SizeDist::Fixed(64),
            ..small_config()
        };
        let t = SynthTrace::generate(&cfg);
        let gaps: Vec<u64> = t
            .packets
            .windows(2)
            .map(|w| w[1].arrival_ns - w[0].arrival_ns)
            .collect();
        let first = gaps[0];
        assert!(gaps.iter().all(|&g| g.abs_diff(first) <= 1));
    }

    #[test]
    fn materialize_produces_valid_frames() {
        let t = SynthTrace::generate(&TraceConfig {
            packets: 50,
            ..small_config()
        });
        for rec in &t.packets {
            let pkt = rec.materialize();
            assert_eq!(pkt.len(), rec.size.max(54));
            let tuple = FiveTuple::of_ethernet_frame(pkt.data()).unwrap();
            assert_eq!(tuple, rec.flow);
        }
    }

    #[test]
    fn on_off_bursts_keep_the_mean_rate() {
        let cfg = TraceConfig {
            arrivals: Arrivals::OnOff {
                burst_packets: 32,
                peak_factor: 8.0,
            },
            packets: 20_000,
            sizes: SizeDist::Fixed(64),
            ..small_config()
        };
        let t = SynthTrace::generate(&cfg);
        let achieved = t.offered_bps();
        assert!(
            (achieved - 10e9).abs() / 10e9 < 0.05,
            "bursty mean {achieved:.3e}"
        );
        // Gaps are bimodal: short intra-burst, long inter-burst.
        let gaps: Vec<u64> = t
            .packets
            .windows(2)
            .map(|w| w[1].arrival_ns - w[0].arrival_ns)
            .collect();
        let short = gaps.iter().filter(|&&g| g < 20).count();
        let long = gaps.iter().filter(|&&g| g > 200).count();
        assert!(short > gaps.len() / 2, "intra-burst gaps dominate");
        assert!(long > 100, "idle gaps exist: {long}");
    }

    #[test]
    fn uses_many_flows() {
        let t = SynthTrace::generate(&small_config());
        assert!(t.flow_count() > 100);
    }
}
