//! Plain-text table formatting for the benchmark harness.
//!
//! The `rb-bench` binaries print the paper's tables and figure series as
//! aligned text; this helper keeps them consistent and testable. It also
//! hosts [`trace_report`], the `rb-top`-style observability summary built
//! from a drained [`TraceLog`] and a conservation [`Ledger`].

use rb_telemetry::{DropCause, Ledger, MetricsSnapshot, TraceKind, TraceLog};
use std::collections::{BTreeMap, BTreeSet};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric && i > 0 {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for TextTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders an `rb-top`-style text summary of one traced run: per-element
/// dispatch counts and mean batch latency, per-hop-kind crossing counts
/// with the set of tracks (cores, or nodes for cluster hops) involved,
/// per-node span totals, and the packet-conservation ledger.
///
/// `ticks_per_us` converts recorder ticks to microseconds — the same
/// convention as [`TraceLog::to_chrome_json`]: `cycles::ticks_per_sec()
/// / 1e6` for runtime traces, `1000.0` for the cluster simulator's
/// nanosecond clock.
pub fn trace_report(log: &TraceLog, ledger: &Ledger, ticks_per_us: f64) -> String {
    let scale = if ticks_per_us > 0.0 {
        1.0 / ticks_per_us
    } else {
        1.0
    };
    let traced = log.traced_packets();

    // (spans, total dur) per element label; (crossings, tracks) per hop
    // kind; span totals per cluster node.
    let mut elements: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut hops: BTreeMap<&'static str, (u64, BTreeSet<u32>)> = BTreeMap::new();
    let mut nodes: BTreeMap<u32, u64> = BTreeMap::new();
    for span in &log.spans {
        let e = &span.event;
        match e.kind {
            TraceKind::Element => {
                let slot = elements.entry(span.label.as_str()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += e.dur;
            }
            kind => {
                let slot = hops.entry(kind.name()).or_default();
                slot.0 += 1;
                slot.1.insert(if kind == TraceKind::ClusterHop {
                    e.node
                } else {
                    e.core
                });
            }
        }
        *nodes.entry(e.node).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "rb-top: {} spans across {} traced packet(s)\n",
        log.spans.len(),
        traced
    ));
    if log.overflow > 0 {
        out.push_str(&format!(
            "WARNING: {} span(s) lost to per-core trace capacity\n",
            log.overflow
        ));
    }

    if !elements.is_empty() {
        let mut t = TextTable::new(["element", "spans", "spans/pkt", "mean_us"]);
        for (label, (spans, dur)) in &elements {
            t.row([
                label.to_string(),
                spans.to_string(),
                format!("{:.2}", *spans as f64 / traced.max(1) as f64),
                format!("{:.3}", *dur as f64 * scale / *spans as f64),
            ]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    if !hops.is_empty() {
        let mut t = TextTable::new(["hop", "crossings", "tracks"]);
        for (kind, (crossings, tracks)) in &hops {
            let ids: Vec<String> = tracks.iter().map(u32::to_string).collect();
            t.row([kind.to_string(), crossings.to_string(), ids.join(",")]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    if nodes.len() > 1 {
        let mut t = TextTable::new(["node", "spans"]);
        for (node, spans) in &nodes {
            t.row([node.to_string(), spans.to_string()]);
        }
        out.push('\n');
        out.push_str(&t.render());
    }

    // Per-packet latency percentiles over the traced sample: first event
    // to last event of each trace id, nearest-rank percentiles.
    let lats = log.packet_latencies();
    if !lats.is_empty() {
        let (p50, p99, p999) = log.latency_percentiles();
        let mut t = TextTable::new(["latency", "us"]);
        t.row(["p50".to_string(), format!("{:.3}", p50 as f64 * scale)]);
        t.row(["p99".to_string(), format!("{:.3}", p99 as f64 * scale)]);
        t.row(["p99.9".to_string(), format!("{:.3}", p999 as f64 * scale)]);
        out.push('\n');
        out.push_str(&t.render());
    }

    let mut t = TextTable::new(["ledger", "packets"]);
    t.row(["sourced".to_string(), ledger.sourced.to_string()]);
    t.row(["forwarded".to_string(), ledger.forwarded.to_string()]);
    t.row(["in_flight".to_string(), ledger.in_flight.to_string()]);
    for cause in DropCause::ALL {
        let n = ledger.dropped(cause);
        if n > 0 {
            t.row([format!("dropped/{}", cause.as_str()), n.to_string()]);
        }
    }
    t.row(["residual".to_string(), ledger.residual().to_string()]);
    out.push('\n');
    out.push_str(&t.render());
    out.push_str(if ledger.balances() {
        "conservation: BALANCED\n"
    } else {
        "conservation: VIOLATED\n"
    });
    out
}

/// [`trace_report`] plus a FIB section from a telemetry snapshot: route
/// lookups, misses and the hit rate — the counters
/// `MetricsSnapshot::route_lookups` / `route_misses` that every
/// `LookupIPRoute` element (across all worker cores) contributes to.
/// Omitted entirely when the run performed no lookups.
pub fn trace_report_with_metrics(
    log: &TraceLog,
    ledger: &Ledger,
    metrics: &MetricsSnapshot,
    ticks_per_us: f64,
) -> String {
    let mut out = trace_report(log, ledger, ticks_per_us);
    if metrics.route_lookups > 0 {
        let mut t = TextTable::new(["fib", "count"]);
        t.row(["lookups".to_string(), metrics.route_lookups.to_string()]);
        t.row(["misses".to_string(), metrics.route_misses.to_string()]);
        let hits = metrics.route_lookups - metrics.route_misses;
        t.row([
            "hit_pct".to_string(),
            format!("{:.2}", 100.0 * hits as f64 / metrics.route_lookups as f64),
        ]);
        out.push('\n');
        out.push_str(&t.render());
    }
    out
}

/// Formats bits/second as a human-readable Gbps value.
pub fn gbps(bps: f64) -> String {
    format!("{:.2} Gbps", bps / 1e9)
}

/// Formats packets/second as Mpps.
pub fn mpps(pps: f64) -> String {
    format!("{:.2} Mpps", pps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "rate"]);
        t.row(["forwarding", "9.70 Gbps"]);
        t.row(["ipsec", "1.40 Gbps"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("9.70"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.render(); // Must not panic.
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = TextTable::new(["k", "value"]);
        t.row(["a", "1"]);
        t.row(["b", "1000"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        // Both numbers end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(gbps(9.7e9), "9.70 Gbps");
        assert_eq!(mpps(18.96e6), "18.96 Mpps");
    }

    #[test]
    fn trace_report_summarizes_elements_hops_and_ledger() {
        use rb_telemetry::Tracer;
        let mut tracer = Tracer::new(1, 0);
        let a = tracer.maybe_assign();
        let b = tracer.maybe_assign();
        tracer.record_element(0, &[a, b], 100, 10);
        tracer.record_element(1, &[a, b], 120, 6);
        tracer.record_hop(TraceKind::RingSend, &[a], 130);
        tracer.set_core(1);
        tracer.record_hop(TraceKind::RingRecv, &[a], 150);
        let log = tracer.drain(|s| ["src", "tx"][s as usize].to_string());

        let mut ledger = Ledger {
            sourced: 10,
            forwarded: 9,
            ..Ledger::default()
        };
        ledger.add(DropCause::QueueOverflow, 1);

        let out = trace_report(&log, &ledger, 1.0);
        assert!(out.contains("2 traced packet(s)"), "{out}");
        assert!(out.contains("src"), "{out}");
        assert!(out.contains("ring_send"), "{out}");
        assert!(out.contains("ring_recv"), "{out}");
        assert!(out.contains("dropped/queue_overflow"), "{out}");
        assert!(out.contains("conservation: BALANCED"), "{out}");
        // Latency percentiles over the traced sample (ticks scale 1.0
        // here, so packet `a` spans 100..150 -> 50 us at p99).
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("p99"), "{out}");
        let p99_line = out.lines().find(|l| l.starts_with("p99 ")).unwrap();
        assert!(p99_line.contains("50.000"), "{p99_line}");
        // ring_recv was recorded on core 1, ring_send on core 0.
        let recv_line = out.lines().find(|l| l.starts_with("ring_recv")).unwrap();
        assert!(recv_line.ends_with('1'), "{recv_line}");
    }

    #[test]
    fn trace_report_with_metrics_appends_fib_section() {
        let ledger = Ledger {
            sourced: 4,
            forwarded: 4,
            ..Ledger::default()
        };
        let mut snap = MetricsSnapshot::empty();
        snap.route_lookups = 4;
        snap.route_misses = 1;
        let out = trace_report_with_metrics(&TraceLog::default(), &ledger, &snap, 1.0);
        assert!(out.contains("lookups"), "{out}");
        assert!(out.contains("75.00"), "{out}");
        // No lookups -> no FIB section.
        let quiet = trace_report_with_metrics(
            &TraceLog::default(),
            &ledger,
            &MetricsSnapshot::empty(),
            1.0,
        );
        assert!(!quiet.contains("hit_pct"), "{quiet}");
    }

    #[test]
    fn trace_report_flags_violated_conservation() {
        let ledger = Ledger {
            sourced: 5,
            forwarded: 3,
            ..Ledger::default()
        };
        let out = trace_report(&TraceLog::default(), &ledger, 1.0);
        assert!(out.contains("conservation: VIOLATED"), "{out}");
        assert!(out.contains("residual"), "{out}");
    }
}
