//! Plain-text table formatting for the benchmark harness.
//!
//! The `rb-bench` binaries print the paper's tables and figure series as
//! aligned text; this helper keeps them consistent and testable.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = width - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+');
                if numeric && i > 0 {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for TextTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats bits/second as a human-readable Gbps value.
pub fn gbps(bps: f64) -> String {
    format!("{:.2} Gbps", bps / 1e9)
}

/// Formats packets/second as Mpps.
pub fn mpps(pps: f64) -> String {
    format!("{:.2} Mpps", pps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "rate"]);
        t.row(["forwarding", "9.70 Gbps"]);
        t.row(["ipsec", "1.40 Gbps"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("9.70"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.render(); // Must not panic.
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = TextTable::new(["k", "value"]);
        t.row(["a", "1"]);
        t.row(["b", "1000"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        // Both numbers end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(gbps(9.7e9), "9.70 Gbps");
        assert_eq!(mpps(18.96e6), "18.96 Mpps");
    }
}
