//! High-level assembly of the paper's three applications.
//!
//! [`RouterBuilder`] wires the standard Click-style pipeline the paper
//! runs on every server:
//!
//! ```text
//! FromDevice(i) -> CheckIPHeader -> [app] -> Queue -> ToDevice(j)
//! ```
//!
//! where `[app]` is nothing (minimal forwarding), `DecIPTTL ->
//! LookupIPRoute` (IP routing) or `IpsecEncap` (IPsec), and the output
//! port is chosen by the route lookup (IP routing) or fixed (the paper's
//! "pre-determined input and output ports" for minimal forwarding and
//! IPsec).

use rb_click::elements::device::{FromDevice, ToDevice};
use rb_click::elements::ip::{CheckIPHeader, DecIPTTL};
use rb_click::elements::queue::Queue;
use rb_click::elements::route::LookupIPRoute;
use rb_click::elements::sink::Discard;
use rb_click::elements::source::{SpecSource, VecSource};
use rb_click::elements::{Counter, IpsecEncap};
use rb_click::graph::Graph;
use rb_click::runtime::mt::{run_graph_regime_monitored, run_graph_spsc, GraphRunOutcome};
use rb_click::{ConfigError, GraphError, GraphRunOpts, Regime, Router, RuntimeKnobs};
use rb_crypto::SecurityAssociation;
use rb_lookup::{Dir24_8, Prefix, RcuFib, RouteControl, RouteTable};
use rb_packet::builder::PacketSpec;
use rb_packet::{Packet, PacketPool};
use rb_telemetry::{
    cycles, DropCause, MetricsServer, MonitorSource, SloReport, SloSpec, TelemetryLevel, TimeSeries,
};
use std::sync::Arc;

/// Which per-packet application the router runs (§5.1).
#[derive(Debug, Clone, PartialEq)]
enum App {
    Forward,
    Route { routes: Vec<(String, u16)> },
    Ipsec { sa_seed: u64 },
}

/// Fluent builder for single-server router instances.
#[derive(Debug, Clone)]
pub struct RouterBuilder {
    app: App,
    ports: usize,
    queue_capacity: usize,
    /// Per-device burst; `None` means "follow the graph `kp`"
    /// ([`RouterBuilder::batch_size`]), the paper's single batching knob.
    poll_burst: Option<usize>,
    batch_size: usize,
    source: Option<(usize, u64)>,
    keep_tx_frames: bool,
    workers: usize,
    /// Packet-arena slots per source/ingress element; 0 = heap-backed.
    pool_slots: usize,
    /// Bytes per arena slot.
    slot_size: usize,
    /// Telemetry level for the built router(s).
    telemetry: TelemetryLevel,
    /// Path-trace sampling interval (0 = off).
    trace_sample: u64,
    /// Route lookups go through an [`rb_lookup::RcuFib`] (live route
    /// churn via [`BuiltRouter::route_control`]) instead of an
    /// immutable compiled table.
    fib_rcu: bool,
    /// `(n_prefixes, seed)` for a synthesized Internet-like RIB
    /// ([`rb_workload::rib_full_table`]) replacing inline routes.
    synthetic_fib: Option<(usize, u64)>,
    /// A caller-supplied [`RouteTable`] replacing inline routes; wins
    /// over `synthetic_fib`.
    prebuilt_table: Option<RouteTable>,
    /// Scheduling regime for [`RouterBuilder::build_mt`] routers.
    regime: Regime,
    /// Ingress/egress ring depth (batches) for streaming regimes.
    ring_depth: usize,
    /// Credit window for the pull regime; 0 = auto-size to the ring.
    credit_window: usize,
    /// NIC batching factor `kn`: descriptor writeback + doorbell cost
    /// once per `kn` descriptors on every device ring. Default 1.
    nic_batch: usize,
    /// Live time-series interval width in milliseconds (0 = clock off).
    interval_ms: u64,
    /// Service-level objectives graded against the interval series.
    slo: SloSpec,
    /// Embedded scrape-endpoint address (`None` = no HTTP server).
    serve_metrics: Option<std::net::SocketAddr>,
}

impl RouterBuilder {
    /// A minimal forwarder: traffic from port `i` goes to port
    /// `(i + 1) mod ports`.
    pub fn minimal_forwarder() -> RouterBuilder {
        RouterBuilder {
            app: App::Forward,
            ports: 2,
            queue_capacity: Queue::DEFAULT_CAPACITY,
            poll_burst: None,
            batch_size: Router::DEFAULT_BATCH_SIZE,
            source: None,
            keep_tx_frames: false,
            workers: 1,
            pool_slots: 0,
            slot_size: rb_packet::pool::DEFAULT_SLOT_SIZE,
            telemetry: TelemetryLevel::Off,
            trace_sample: 0,
            fib_rcu: false,
            synthetic_fib: None,
            prebuilt_table: None,
            regime: Regime::Push,
            ring_depth: GraphRunOpts::default().ring_depth,
            credit_window: 0,
            nic_batch: 1,
            interval_ms: 0,
            slo: SloSpec::default(),
            serve_metrics: None,
        }
    }

    /// An IP router; add routes with [`RouterBuilder::route`].
    pub fn ip_router() -> RouterBuilder {
        RouterBuilder {
            app: App::Route { routes: Vec::new() },
            ..Self::minimal_forwarder()
        }
    }

    /// An IPsec tunnel-encap gateway keyed from `SecurityAssociation`
    /// seed 0x5a; traffic forwards like the minimal forwarder.
    pub fn ipsec_gateway() -> RouterBuilder {
        RouterBuilder {
            app: App::Ipsec { sa_seed: 0x5a },
            ..Self::minimal_forwarder()
        }
    }

    /// Sets the number of router ports (default 2).
    pub fn ports(mut self, n: usize) -> RouterBuilder {
        assert!(n >= 1, "need at least one port");
        self.ports = n;
        self
    }

    /// Adds a route (`"prefix/len"`, output port). IP-router mode only.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-IP-router builder — a programming
    /// error, not a runtime condition.
    pub fn route(mut self, prefix: &str, port: u16) -> RouterBuilder {
        match &mut self.app {
            App::Route { routes } => routes.push((prefix.to_string(), port)),
            _ => panic!("route() only applies to RouterBuilder::ip_router()"),
        }
        self.ports = self.ports.max(usize::from(port) + 1);
        self
    }

    /// Routes lookups through a live-updatable [`rb_lookup::RcuFib`]
    /// instead of an immutable compiled table (IP-router mode). The
    /// built router hands out a [`RouteControl`] — see
    /// [`BuiltRouter::route_control`] / [`MtRouter::route_control`] —
    /// through which a control-plane thread can announce and withdraw
    /// routes while the data plane forwards. With RCU enabled the
    /// builder accepts an empty initial route list (everything misses
    /// until routes are published).
    pub fn rcu_fib(mut self, enable: bool) -> RouterBuilder {
        self.fib_rcu = enable;
        self
    }

    /// Replaces inline routes with a synthesized Internet-like RIB of
    /// `n_prefixes` entries ([`rb_workload::rib_full_table`]). IP-router
    /// mode only; next hops map onto output ports modulo
    /// [`RouterBuilder::ports`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-IP-router builder.
    pub fn synthetic_routes(mut self, n_prefixes: usize, seed: u64) -> RouterBuilder {
        assert!(
            matches!(self.app, App::Route { .. }),
            "synthetic_routes() only applies to RouterBuilder::ip_router()"
        );
        self.synthetic_fib = Some((n_prefixes, seed));
        self
    }

    /// Replaces inline routes with a caller-built [`RouteTable`]
    /// (IP-router mode only). Benches generate a large RIB once and
    /// reuse it across router instances instead of regenerating per
    /// build; wins over [`RouterBuilder::synthetic_routes`].
    ///
    /// # Panics
    ///
    /// Panics when called on a non-IP-router builder.
    pub fn routes_from_table(mut self, table: RouteTable) -> RouterBuilder {
        assert!(
            matches!(self.app, App::Route { .. }),
            "routes_from_table() only applies to RouterBuilder::ip_router()"
        );
        self.prebuilt_table = Some(table);
        self
    }

    /// Applies a parsed [`RuntimeKnobs`] (from `RuntimeConfig(...)`
    /// configuration text) onto this builder: batching, workers, pools,
    /// telemetry, tracing and the FIB knobs (`fib_routes` → a
    /// synthesized RIB, `fib_rcu` → live route churn).
    pub fn apply_knobs(mut self, knobs: &RuntimeKnobs) -> RouterBuilder {
        self.batch_size = knobs.batch_size;
        self.poll_burst = Some(knobs.poll_burst);
        self.workers = knobs.workers;
        self.pool_slots = knobs.pool_slots;
        self.slot_size = knobs.slot_size;
        self.telemetry = knobs.telemetry;
        self.trace_sample = knobs.trace_sample;
        self.fib_rcu = knobs.fib_rcu;
        self.regime = knobs.regime;
        self.ring_depth = knobs.ring_depth;
        self.credit_window = knobs.credit_window;
        self.nic_batch = knobs.nic_batch;
        self.interval_ms = knobs.interval_ms;
        self.slo = knobs.slo;
        self.serve_metrics = knobs.serve_metrics;
        if knobs.fib_routes > 0 && matches!(self.app, App::Route { .. }) {
            self.synthetic_fib = Some((knobs.fib_routes, Self::DEFAULT_RIB_SEED));
        }
        self
    }

    /// RIB seed used when `fib_routes` comes from configuration text
    /// (which has no seed field).
    pub const DEFAULT_RIB_SEED: u64 = 0xf1b_0001;

    /// Sets the IPsec SA seed (IPsec mode only; ignored otherwise).
    pub fn sa_seed(mut self, seed: u64) -> RouterBuilder {
        if let App::Ipsec { sa_seed } = &mut self.app {
            *sa_seed = seed;
        }
        self
    }

    /// Sets output queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> RouterBuilder {
        self.queue_capacity = capacity;
        self
    }

    /// Pins an explicit device poll/transmit burst. By default devices
    /// inherit the graph batch size `kp`
    /// ([`RouterBuilder::batch_size`]) — the paper tunes one `kp`, not a
    /// knob per device.
    pub fn poll_burst(mut self, burst: usize) -> RouterBuilder {
        assert!(burst > 0, "poll burst must be positive");
        self.poll_burst = Some(burst);
        self
    }

    /// Backs every source/ingress element with a packet arena of `n`
    /// slots (default 0 = plain heap buffers). Each element — and each
    /// per-core replica under [`RouterBuilder::build_mt`] — gets its own
    /// pool, so allocation never contends across cores.
    pub fn pool_slots(mut self, n: usize) -> RouterBuilder {
        self.pool_slots = n;
        self
    }

    /// Sets the arena slot size in bytes (headroom + payload + tailroom;
    /// default [`rb_packet::pool::DEFAULT_SLOT_SIZE`]). Frames that
    /// outgrow a slot fall back to heap buffers, counted in the pool
    /// stats.
    pub fn slot_size(mut self, bytes: usize) -> RouterBuilder {
        self.slot_size = bytes;
        self
    }

    /// Sets the graph dispatch batch size `kp` (default 32; 1 = scalar
    /// per-packet dispatch). See [`Router::set_batch_size`].
    pub fn batch_size(mut self, kp: usize) -> RouterBuilder {
        assert!(kp > 0, "batch size must be positive");
        self.batch_size = kp;
        self
    }

    /// Sets the telemetry level (default [`TelemetryLevel::Off`]).
    /// `Counts` records per-element dispatch/packet counters and batch
    /// histograms; `Cycles` adds per-element cycle accounting — the
    /// input to [`crate::bottleneck::BottleneckReport`]. With telemetry
    /// off the hot path pays one predictable branch per dispatch.
    pub fn telemetry(mut self, level: TelemetryLevel) -> RouterBuilder {
        self.telemetry = level;
        self
    }

    /// Samples every `n`-th sourced packet into the path tracer
    /// (default 0 = off): each sampled packet gets a trace ID and a span
    /// per element dispatch and ring hop, exportable as Chrome
    /// trace-event JSON via [`BuiltRouter::take_trace_log`] /
    /// [`rb_click::runtime::mt::GraphRunOutcome::trace`]. With tracing
    /// off the hot path pays one predictable branch per dispatch.
    pub fn trace_sample(mut self, n: u64) -> RouterBuilder {
        self.trace_sample = n;
        self
    }

    /// Attaches a self-contained packet source (frame size, count)
    /// feeding input port 0, instead of external injection.
    pub fn source_packets(mut self, size: usize, count: u64) -> RouterBuilder {
        self.source = Some((size, count));
        self
    }

    /// Keeps transmitted frames for inspection (tests/examples).
    pub fn keep_tx_frames(mut self, keep: bool) -> RouterBuilder {
        self.keep_tx_frames = keep;
        self
    }

    /// Sets the worker-core count for [`RouterBuilder::build_mt`]
    /// (default 1): the graph is replicated once per worker and ingress
    /// is sharded by flow, §4.2's parallel layout.
    pub fn workers(mut self, n: usize) -> RouterBuilder {
        assert!(n >= 1, "need at least one worker");
        self.workers = n;
        self
    }

    /// Selects the scheduling regime [`MtRouter::run`] uses (default
    /// [`Regime::Push`]): `Push` preloads each replica's shard, `Spsc`
    /// streams over ingress rings, `Pipeline` chains one stage per
    /// worker, and `PullCredit` adds credit backpressure so sources
    /// stall instead of dropping when a replica's arena fills.
    pub fn regime(mut self, regime: Regime) -> RouterBuilder {
        self.regime = regime;
        self
    }

    /// Sets the SPSC ring depth, in batches, used by the streaming
    /// regimes (default [`GraphRunOpts::default`]'s `ring_depth`).
    pub fn ring_depth(mut self, depth: usize) -> RouterBuilder {
        assert!(depth >= 1, "ring depth must be positive");
        self.ring_depth = depth;
        self
    }

    /// Sets the pull-regime credit window in packets. `0` (the default)
    /// auto-sizes the window to `ring_depth * batch_size`.
    pub fn credit_window(mut self, packets: usize) -> RouterBuilder {
        self.credit_window = packets;
        self
    }

    /// Sets the NIC batching factor `kn` (default 1 = unbatched):
    /// descriptor writeback + doorbell cost is charged once per `kn`
    /// descriptors on every device ring. Table 1's second batching axis,
    /// orthogonal to [`RouterBuilder::batch_size`] (`kp`). See
    /// [`Router::set_nic_batch`].
    pub fn nic_batch(mut self, kn: usize) -> RouterBuilder {
        assert!(kn > 0, "nic batch must be positive");
        self.nic_batch = kn;
        self
    }

    /// Enables the live interval clock: every `ms` milliseconds of run
    /// time each worker rolls its counter deltas and latency sketch into
    /// a wait-free interval ring, harvested without pausing the data
    /// plane (default 0 = off, one predictable branch per quantum). Read
    /// the merged series with [`BuiltRouter::timeseries`] /
    /// [`rb_click::runtime::mt::MtReport`]'s `timeseries`.
    pub fn interval_ms(mut self, ms: u64) -> RouterBuilder {
        self.interval_ms = ms;
        self
    }

    /// Attaches service-level objectives (latency-p99 / loss-rate /
    /// throughput-floor) graded against the interval series — see
    /// [`BuiltRouter::slo_report`] and [`MtRouter::slo_report`].
    /// Meaningful only with [`RouterBuilder::interval_ms`] > 0.
    pub fn slo(mut self, spec: SloSpec) -> RouterBuilder {
        self.slo = spec;
        self
    }

    /// Starts an embedded HTTP scrape endpoint on `addr` when the router
    /// is built (`GET /metrics`, `/healthz`, `/timeseries.json`,
    /// `/events.json`): the server thread reads the live interval and
    /// event rings without ever pausing the data plane. Port 0 picks a
    /// free port — read it back with [`BuiltRouter::metrics_addr`] /
    /// [`MtRouter::metrics_addr`]. Meaningful only with
    /// [`RouterBuilder::interval_ms`] > 0 (the rings ride the clock).
    pub fn serve_metrics(mut self, addr: std::net::SocketAddr) -> RouterBuilder {
        self.serve_metrics = Some(addr);
        self
    }

    /// Binds the configured scrape endpoint, if any.
    fn bind_monitor(&self) -> Result<Option<MetricsServer>, ConfigError> {
        let Some(addr) = self.serve_metrics else {
            return Ok(None);
        };
        MetricsServer::bind(&addr.to_string())
            .map(Some)
            .map_err(|e| ConfigError::BadArguments {
                class: "RouterBuilder".into(),
                message: format!("serve_metrics {addr}: {e}"),
            })
    }

    /// Builds the router.
    ///
    /// # Errors
    ///
    /// Propagates element-construction and graph-validation failures,
    /// and scrape-endpoint bind failures under
    /// [`RouterBuilder::serve_metrics`].
    pub fn build(self) -> Result<BuiltRouter, ConfigError> {
        let ports = self.ports;
        let monitor = self.bind_monitor()?;
        let slo = self.slo;
        let interval_ms = self.interval_ms;
        let (g, route_control) = self.build_graph_inner()?;
        let mut inner = Router::new(g)?
            .with_batch_size(self.batch_size)
            .with_nic_batch(self.nic_batch)
            .with_telemetry(self.telemetry)
            .with_trace(self.trace_sample);
        if interval_ms > 0 {
            inner.set_interval_ms(interval_ms, 0);
        }
        if let Some(server) = &monitor {
            server.attach(MonitorSource {
                interval_rings: inner.interval_ring().into_iter().collect(),
                event_rings: inner.event_ring().into_iter().collect(),
                interval_ticks: inner.interval_ticks(),
                ticks_per_sec: cycles::ticks_per_sec(),
                slo: (!slo.is_empty()).then_some(slo),
            });
        }
        Ok(BuiltRouter {
            inner,
            ports,
            route_control,
            slo,
            monitor,
        })
    }

    /// Builds the bare element graph (no driver attached) — the form the
    /// multi-threaded runtime replicates once per worker core. Any RCU
    /// route-control handle is discarded; use [`RouterBuilder::build`] /
    /// [`RouterBuilder::build_mt`] to keep it.
    ///
    /// # Errors
    ///
    /// Propagates element-construction and graph-wiring failures.
    pub fn build_graph(&self) -> Result<Graph, ConfigError> {
        Ok(self.build_graph_inner()?.0)
    }

    /// The route table an IP router forwards with: the synthesized full
    /// table when [`RouterBuilder::synthetic_routes`] is set, the inline
    /// [`RouterBuilder::route`] list otherwise.
    fn route_table(&self, routes: &[(String, u16)]) -> Result<RouteTable, ConfigError> {
        let bad = |message: String| ConfigError::BadArguments {
            class: "RouterBuilder".into(),
            message,
        };
        if let Some(table) = &self.prebuilt_table {
            return Ok(table.clone());
        }
        if let Some((n, seed)) = self.synthetic_fib {
            return Ok(rb_workload::rib_full_table(n, seed));
        }
        let mut table = RouteTable::new();
        for (prefix, hop) in routes {
            let parsed: Prefix = prefix
                .parse()
                .map_err(|e| bad(format!("route `{prefix}`: {e}")))?;
            table.insert(parsed, *hop);
        }
        if table.is_empty() && !self.fib_rcu {
            return Err(bad("ip_router needs at least one route".into()));
        }
        Ok(table)
    }

    fn build_graph_inner(&self) -> Result<(Graph, Option<RouteControl>), ConfigError> {
        let bad = |message: String| ConfigError::BadArguments {
            class: "RouterBuilder".into(),
            message,
        };
        let mut g = Graph::new();
        let ports = self.ports;
        // Devices inherit the graph kp unless a burst was pinned.
        let device_burst = self.poll_burst.unwrap_or(self.batch_size);
        let new_pool = || PacketPool::new(self.pool_slots, self.slot_size);

        // Per-port egress: Queue -> ToDevice.
        let mut queues = Vec::new();
        for p in 0..ports {
            let q = g.add(format!("q{p}"), Box::new(Queue::new(self.queue_capacity)))?;
            let tx = match self.poll_burst {
                Some(burst) => ToDevice::new(burst, self.keep_tx_frames),
                None => ToDevice::with_graph_burst(self.keep_tx_frames),
            };
            let tx = g.add(format!("tx{p}"), Box::new(tx))?;
            g.connect(q, 0, tx, 0)?;
            queues.push(q);
        }

        // Shared ingress head: source or FromDevice per port 0..N.
        let heads: Vec<usize> = if let Some((size, count)) = self.source {
            // Specs, not pre-built packets: the source emits each frame by
            // writing headers + fill into its output buffer in place (one
            // copy total — straight into an arena slot when pooled).
            // Spread destinations so an IP router exercises several
            // routes: rotate the top octet over common prefixes.
            let specs: Vec<PacketSpec> = (0..count)
                .map(|i| {
                    PacketSpec::udp()
                        .endpoints(
                            std::net::SocketAddrV4::new(
                                std::net::Ipv4Addr::new(172, 16, (i >> 8) as u8, i as u8),
                                1024 + (i % 40_000) as u16,
                            ),
                            std::net::SocketAddrV4::new(
                                std::net::Ipv4Addr::new(10, (i % 8) as u8, 0, 1),
                                80,
                            ),
                        )
                        .frame_len(size)
                })
                .collect();
            let mut src = SpecSource::new(specs);
            if self.pool_slots > 0 {
                src.set_pool(new_pool());
            }
            vec![g.add("src0", Box::new(src))?]
        } else {
            (0..ports)
                .map(|p| {
                    let mut dev = FromDevice::new(p as u16, device_burst);
                    if self.pool_slots > 0 {
                        dev.set_pool(new_pool());
                    }
                    g.add(format!("rx{p}"), Box::new(dev))
                })
                .collect::<Result<_, _>>()?
        };

        // Route mode: one FIB, compiled once, shared by every ingress
        // path (and every per-core replica under `build_mt`) — either an
        // immutable `Arc<Dir24_8>` or an RCU FIB whose control handle
        // the caller keeps for live churn.
        enum BuiltFib {
            None,
            Static(Arc<Dir24_8>, usize),
            Rcu(RcuFib, usize),
        }
        let fib = match &self.app {
            App::Route { routes } => {
                let table = self.route_table(routes)?;
                let max_hop = table.iter().map(|(_, h)| *h).max().unwrap_or(0);
                let mut n_hops = usize::from(max_hop) + 1;
                if self.fib_rcu {
                    // Live churn can announce routes for any port later,
                    // so an RCU router exposes every port as a next hop.
                    n_hops = n_hops.max(ports);
                    let readers = 64.max(2 * ports * self.workers.max(1));
                    let rcu = RcuFib::with_max_readers(&table, readers)
                        .map_err(|e| bad(e.to_string()))?;
                    BuiltFib::Rcu(rcu, n_hops)
                } else {
                    let compiled = Dir24_8::compile(&table).map_err(|e| bad(e.to_string()))?;
                    BuiltFib::Static(Arc::new(compiled), n_hops)
                }
            }
            _ => BuiltFib::None,
        };

        for (idx, head) in heads.iter().copied().enumerate() {
            let chk = g.add(format!("chk{idx}"), Box::new(CheckIPHeader::ethernet()))?;
            let badsink = g.add(format!("bad{idx}"), Box::new(Discard::new()))?;
            let cnt = g.add(format!("cnt{idx}"), Box::new(Counter::new()))?;
            g.connect(head, 0, chk, 0)?;
            g.connect(chk, 1, badsink, 0)?;
            g.connect(chk, 0, cnt, 0)?;

            match &self.app {
                App::Forward => {
                    // Fixed output port: next port around the ring.
                    let out = (idx + 1) % ports;
                    g.connect(cnt, 0, queues[out], 0)?;
                }
                App::Route { .. } => {
                    let ttl = g.add(format!("ttl{idx}"), Box::new(DecIPTTL::ethernet()))?;
                    let expired = g.add(format!("exp{idx}"), Box::new(Discard::new()))?;
                    let (rt_elem, n_hops): (LookupIPRoute, usize) = match &fib {
                        BuiltFib::Static(shared, n) => (
                            LookupIPRoute::new(
                                Arc::clone(shared) as Arc<dyn rb_lookup::LpmLookup + Send + Sync>,
                                *n,
                            ),
                            *n,
                        ),
                        BuiltFib::Rcu(rcu, n) => (LookupIPRoute::new_rcu(rcu.reader(), *n), *n),
                        BuiltFib::None => unreachable!("Route app always compiles a FIB"),
                    };
                    let rt = g.add(format!("rt{idx}"), Box::new(rt_elem))?;
                    let nomatch = g.add(
                        format!("miss{idx}"),
                        Box::new(Discard::with_cause(DropCause::NoRoute)),
                    )?;
                    g.connect(cnt, 0, ttl, 0)?;
                    g.connect(ttl, 1, expired, 0)?;
                    g.connect(ttl, 0, rt, 0)?;
                    // Route outputs -> per-port queues; drop port last.
                    for hop in 0..n_hops {
                        g.connect(rt, hop, queues[hop % ports], 0)?;
                    }
                    g.connect(rt, n_hops, nomatch, 0)?;
                }
                App::Ipsec { sa_seed } => {
                    let sa = SecurityAssociation::from_seed(*sa_seed);
                    let esp = g.add(
                        format!("esp{idx}"),
                        Box::new(IpsecEncap::new(
                            &sa,
                            std::net::Ipv4Addr::new(192, 0, 2, 1),
                            std::net::Ipv4Addr::new(192, 0, 2, 2),
                        )),
                    )?;
                    let badesp = g.add(format!("badesp{idx}"), Box::new(Discard::new()))?;
                    let out = (idx + 1) % ports;
                    g.connect(cnt, 0, esp, 0)?;
                    g.connect(esp, 1, badesp, 0)?;
                    g.connect(esp, 0, queues[out], 0)?;
                }
            }
        }

        // Ports that never receive traffic in this configuration (e.g. a
        // self-contained source feeding a forwarding ring) still have a
        // queue; feed them an empty source so the graph validates.
        for (p, q) in queues.iter().copied().enumerate() {
            if g.edges_into(q, 0).is_empty() {
                let filler = g.add(format!("idle{p}"), Box::new(VecSource::new(Vec::new())))?;
                g.connect(filler, 0, q, 0)?;
            }
        }

        // The `RcuFib` value itself may drop here: readers inside the
        // graph and the control handle each keep the shared state alive.
        let route_control = match fib {
            BuiltFib::Rcu(rcu, _) => Some(rcu.control()),
            _ => None,
        };
        Ok((g, route_control))
    }

    /// Builds a multi-threaded router: the graph plus the worker count
    /// and run options, ready for [`MtRouter::run`]. Requires injection
    /// mode — the MT runtime shards externally supplied packets across
    /// per-core replicas, so a self-contained source makes no sense here.
    ///
    /// # Errors
    ///
    /// Propagates element-construction and graph-wiring failures.
    pub fn build_mt(self) -> Result<MtRouter, ConfigError> {
        assert!(
            self.source.is_none(),
            "build_mt() requires injection mode, not source_packets()"
        );
        let ports = self.ports;
        let workers = self.workers;
        let opts = GraphRunOpts {
            batch_size: self.batch_size,
            poll_burst: self.poll_burst.unwrap_or(self.batch_size),
            telemetry: self.telemetry,
            trace_sample: self.trace_sample,
            ring_depth: self.ring_depth,
            credit_window: self.credit_window,
            nic_batch: self.nic_batch,
            interval_ms: self.interval_ms,
            slo: (!self.slo.is_empty()).then_some(self.slo),
            ..GraphRunOpts::default()
        };
        let regime = self.regime;
        let slo = self.slo;
        let monitor = self.bind_monitor()?;
        let (graph, route_control) = self.build_graph_inner()?;
        Ok(MtRouter {
            graph,
            workers,
            opts,
            ports,
            regime,
            route_control,
            slo,
            monitor,
        })
    }
}

/// A multi-threaded router: a template graph replicated once per worker
/// core on every run (§4.2's parallel layout), with per-port egress.
///
/// Egress indices of the returned [`GraphRunOutcome`] correspond to
/// router ports: the builder adds `tx0..txN` in port order, and graph
/// replication preserves element order.
pub struct MtRouter {
    graph: Graph,
    workers: usize,
    opts: GraphRunOpts,
    ports: usize,
    regime: Regime,
    route_control: Option<RouteControl>,
    slo: SloSpec,
    /// Embedded scrape endpoint; every [`MtRouter::run`] attaches its
    /// live rings here before the workers spawn.
    monitor: Option<MetricsServer>,
}

impl MtRouter {
    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of worker cores used per run.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The graph-runner options in effect.
    pub fn opts(&self) -> GraphRunOpts {
        self.opts
    }

    /// The scheduling regime [`MtRouter::run`] dispatches to.
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// The service-level objectives graded by [`MtRouter::slo_report`].
    pub fn slo(&self) -> &SloSpec {
        &self.slo
    }

    /// Grades the configured objectives ([`RouterBuilder::slo`]) against
    /// a run's merged interval series. `None` when no objectives are set
    /// or the run had no interval clock
    /// ([`RouterBuilder::interval_ms`] 0).
    pub fn slo_report(&self, outcome: &GraphRunOutcome) -> Option<SloReport> {
        if self.slo.is_empty() {
            return None;
        }
        let series = outcome.report.timeseries.as_ref()?;
        Some(SloReport::evaluate(
            &self.slo,
            &series.intervals,
            cycles::ticks_per_sec(),
        ))
    }

    /// The template graph (replicated per worker on each run).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The live-churn route handle when built with
    /// [`RouterBuilder::rcu_fib`]; `None` otherwise. The handle is
    /// cloneable and thread-safe — move a clone into a control-plane
    /// thread and announce/withdraw/publish while [`MtRouter::run`]
    /// forwards.
    pub fn route_control(&self) -> Option<RouteControl> {
        self.route_control.clone()
    }

    /// Runs `packets` through per-core replicas under the configured
    /// scheduling regime ([`RouterBuilder::regime`]; default
    /// [`Regime::Push`] — shard up front, run each replica to idle,
    /// merge egress). With `workers == 1` the per-port output streams
    /// are byte-identical to the single-threaded [`BuiltRouter`].
    ///
    /// # Errors
    ///
    /// Propagates replication failures (see
    /// [`rb_click::runtime::mt::run_graph_regime`]).
    pub fn run(&self, packets: Vec<Packet>) -> Result<GraphRunOutcome, GraphError> {
        run_graph_regime_monitored(
            self.regime,
            &self.graph,
            self.workers,
            packets,
            &self.opts,
            self.monitor.as_ref(),
        )
    }

    /// The embedded scrape endpoint's bound address (`None` unless built
    /// with [`RouterBuilder::serve_metrics`]). With port 0 this is where
    /// the ephemeral port lands.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.monitor.as_ref().map(MetricsServer::local_addr)
    }

    /// The embedded scrape server itself (`None` unless built with
    /// [`RouterBuilder::serve_metrics`]).
    pub fn metrics_server(&self) -> Option<&MetricsServer> {
        self.monitor.as_ref()
    }

    /// Runs `packets` with streaming SPSC ingress rings instead of
    /// pre-loaded shards (see
    /// [`rb_click::runtime::mt::run_graph_spsc`]).
    ///
    /// # Errors
    ///
    /// See [`MtRouter::run`].
    pub fn run_spsc(&self, packets: Vec<Packet>) -> Result<GraphRunOutcome, GraphError> {
        run_graph_spsc(&self.graph, self.workers, packets, &self.opts)
    }
}

/// A built single-server router with convenience accessors.
pub struct BuiltRouter {
    inner: Router,
    ports: usize,
    route_control: Option<RouteControl>,
    slo: SloSpec,
    /// Embedded scrape endpoint serving this router's live rings.
    monitor: Option<MetricsServer>,
}

impl BuiltRouter {
    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Runs until idle (see [`Router::run_until_idle`]).
    pub fn run_until_idle(&mut self, max_quanta: u64) -> rb_click::runtime::driver::RunStats {
        self.inner.run_until_idle(max_quanta)
    }

    /// Injects a frame into input port `port` (FromDevice mode only).
    pub fn inject(&mut self, port: usize, pkt: Packet) -> bool {
        match self
            .inner
            .element_as_mut::<FromDevice>(&format!("rx{port}"))
        {
            Some(dev) => {
                dev.inject(pkt);
                true
            }
            None => false,
        }
    }

    /// Packets transmitted out of `port` so far.
    pub fn transmitted(&self, port: usize) -> u64 {
        self.inner
            .element_as::<ToDevice>(&format!("tx{port}"))
            .map_or(0, ToDevice::sent_packets)
    }

    /// Bytes transmitted out of `port` so far.
    pub fn transmitted_bytes(&self, port: usize) -> u64 {
        self.inner
            .element_as::<ToDevice>(&format!("tx{port}"))
            .map_or(0, ToDevice::sent_bytes)
    }

    /// Frames kept by `tx<port>` when built with `keep_tx_frames(true)`.
    pub fn tx_frames(&self, port: usize) -> &[Packet] {
        self.inner
            .element_as::<ToDevice>(&format!("tx{port}"))
            .map_or(&[], ToDevice::tx_log)
    }

    /// Valid-packet count at ingress `idx`.
    pub fn ingress_count(&self, idx: usize) -> u64 {
        self.inner
            .counter(&format!("cnt{idx}"))
            .map_or(0, |s| s.packets)
    }

    /// Telemetry snapshot of the underlying driver (empty when built
    /// with the default [`TelemetryLevel::Off`]).
    pub fn telemetry_snapshot(&self) -> rb_telemetry::MetricsSnapshot {
        self.inner.telemetry_snapshot()
    }

    /// Drains the sampled path-trace spans collected so far (empty when
    /// built without [`RouterBuilder::trace_sample`]).
    pub fn take_trace_log(&mut self) -> rb_telemetry::TraceLog {
        self.inner.take_trace_log()
    }

    /// The packet-conservation ledger of everything run so far (see
    /// [`Router::ledger`]); on an idle router it must balance.
    pub fn ledger(&self) -> rb_telemetry::Ledger {
        self.inner.ledger()
    }

    /// Flushes the current partial interval and returns the live
    /// time-series harvested so far; `None` unless built with
    /// [`RouterBuilder::interval_ms`] > 0. Summed interval counters
    /// equal [`BuiltRouter::ledger`] exactly.
    pub fn timeseries(&mut self) -> Option<TimeSeries> {
        self.inner.timeseries()
    }

    /// Grades the configured objectives ([`RouterBuilder::slo`]) against
    /// the interval series collected so far. `None` when no objectives
    /// are set or the interval clock is off.
    pub fn slo_report(&mut self) -> Option<SloReport> {
        if self.slo.is_empty() {
            return None;
        }
        let series = self.inner.timeseries()?;
        Some(SloReport::evaluate(
            &self.slo,
            &series.intervals,
            cycles::ticks_per_sec(),
        ))
    }

    /// The live-churn route handle when built with
    /// [`RouterBuilder::rcu_fib`]; `None` otherwise. Announce/withdraw
    /// routes and [`RouteControl::publish`] between (or during) runs;
    /// the data plane picks the new snapshot up at its next batch.
    pub fn route_control(&self) -> Option<RouteControl> {
        self.route_control.clone()
    }

    /// The embedded scrape endpoint's bound address (`None` unless built
    /// with [`RouterBuilder::serve_metrics`]). With port 0 this is where
    /// the ephemeral port lands.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.monitor.as_ref().map(MetricsServer::local_addr)
    }

    /// The embedded scrape server itself (`None` unless built with
    /// [`RouterBuilder::serve_metrics`]).
    pub fn metrics_server(&self) -> Option<&MetricsServer> {
        self.monitor.as_ref()
    }

    /// Escape hatch to the underlying Click router.
    pub fn click(&mut self) -> &mut Router {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_packet::builder::PacketSpec;

    #[test]
    fn minimal_forwarder_moves_everything_to_next_port() {
        let mut r = RouterBuilder::minimal_forwarder()
            .source_packets(64, 500)
            .build()
            .unwrap();
        r.run_until_idle(1_000_000);
        assert_eq!(r.ingress_count(0), 500);
        assert_eq!(r.transmitted(1), 500);
        assert_eq!(r.transmitted(0), 0);
    }

    #[test]
    fn ip_router_splits_by_route() {
        let mut r = RouterBuilder::ip_router()
            .route("10.0.0.0/9", 0) // Destinations 10.0–10.7 all match.
            .route("0.0.0.0/0", 1)
            .source_packets(64, 800)
            .build()
            .unwrap();
        r.run_until_idle(10_000_000);
        // Builder sources send everything to 10.x destinations.
        assert_eq!(r.transmitted(0) + r.transmitted(1), 800);
        assert_eq!(r.transmitted(0), 800, "all traffic matches 10/9");
    }

    #[test]
    fn ip_router_decrements_ttl() {
        let mut r = RouterBuilder::ip_router()
            .route("0.0.0.0/0", 1)
            .keep_tx_frames(true)
            .source_packets(64, 10)
            .build()
            .unwrap();
        r.run_until_idle(1_000_000);
        let frames = r.tx_frames(1);
        assert_eq!(frames.len(), 10);
        for f in frames {
            let ip = rb_packet::Ipv4Header::parse(&f.data()[14..]).unwrap();
            assert_eq!(ip.ttl, 63, "TTL must be decremented with valid checksum");
        }
    }

    #[test]
    fn ipsec_gateway_encapsulates() {
        let mut r = RouterBuilder::ipsec_gateway()
            .sa_seed(7)
            .keep_tx_frames(true)
            .source_packets(100, 20)
            .build()
            .unwrap();
        r.run_until_idle(1_000_000);
        let frames = r.tx_frames(1);
        assert_eq!(frames.len(), 20);
        for f in frames {
            let ip = rb_packet::Ipv4Header::parse(&f.data()[14..]).unwrap();
            assert_eq!(ip.proto, rb_packet::IpProto::Esp);
            assert!(f.len() > 100, "ESP adds overhead");
        }
    }

    #[test]
    fn injection_mode_works() {
        let mut r = RouterBuilder::minimal_forwarder().build().unwrap();
        for _ in 0..5 {
            assert!(r.inject(0, PacketSpec::udp().build()));
        }
        r.run_until_idle(1_000_000);
        assert_eq!(r.transmitted(1), 5);
    }

    #[test]
    fn bad_packets_go_to_the_check_sink() {
        let mut r = RouterBuilder::minimal_forwarder().build().unwrap();
        let mut bad = PacketSpec::udp().build();
        bad.data_mut()[20] ^= 0xff; // Corrupt the IP header.
        r.inject(0, bad);
        r.run_until_idle(1_000_000);
        assert_eq!(r.transmitted(1), 0);
        assert_eq!(r.ingress_count(0), 0);
    }

    #[test]
    #[should_panic(expected = "only applies")]
    fn route_on_forwarder_panics() {
        let _ = RouterBuilder::minimal_forwarder().route("0.0.0.0/0", 0);
    }

    #[test]
    fn rcu_router_picks_up_published_routes_between_runs() {
        let mut r = RouterBuilder::ip_router()
            .ports(2)
            .rcu_fib(true)
            .build()
            .unwrap();
        let ctl = r.route_control().expect("RCU router hands out control");
        // Empty FIB: everything is a NoRoute drop, ledger still balances.
        r.inject(0, PacketSpec::udp().dst("10.1.2.3:80").unwrap().build());
        r.run_until_idle(1_000_000);
        assert_eq!(r.transmitted(0) + r.transmitted(1), 0);
        let led = r.ledger();
        assert_eq!(led.dropped(DropCause::NoRoute), 1);
        assert!(led.balances(), "{led:?}");
        // Announce + publish, then traffic flows.
        ctl.insert("10.0.0.0/8".parse().unwrap(), 1).unwrap();
        ctl.publish();
        r.inject(0, PacketSpec::udp().dst("10.1.2.3:80").unwrap().build());
        r.run_until_idle(1_000_000);
        assert_eq!(r.transmitted(1), 1);
        // Withdraw and it misses again.
        ctl.remove(&"10.0.0.0/8".parse().unwrap());
        ctl.publish();
        r.inject(0, PacketSpec::udp().dst("10.1.2.3:80").unwrap().build());
        r.run_until_idle(1_000_000);
        assert_eq!(r.transmitted(1), 1);
        assert_eq!(r.ledger().dropped(DropCause::NoRoute), 2);
    }

    #[test]
    fn synthetic_fib_router_forwards_and_counts_lookups() {
        let mut r = RouterBuilder::ip_router()
            .ports(2)
            .synthetic_routes(1_000, 7)
            .telemetry(TelemetryLevel::Counts)
            .source_packets(64, 400)
            .build()
            .unwrap();
        r.run_until_idle(10_000_000);
        let snap = r.telemetry_snapshot();
        assert_eq!(snap.route_lookups, 400);
        // The synthesized RIB always contains a default route, so no
        // destination can miss.
        assert_eq!(snap.route_misses, 0);
        assert_eq!(r.transmitted(0) + r.transmitted(1), 400);
        assert!(r.ledger().balances());
    }

    #[test]
    fn mt_router_runs_under_every_regime() {
        let packets: Vec<Packet> = (0..200)
            .map(|i| {
                PacketSpec::udp()
                    .src(&format!("172.16.0.{}:1000", i % 250))
                    .unwrap()
                    .build()
            })
            .collect();
        for regime in [
            Regime::Push,
            Regime::Spsc,
            Regime::Pipeline,
            Regime::PullCredit,
        ] {
            let mt = RouterBuilder::minimal_forwarder()
                .workers(2)
                .regime(regime)
                .credit_window(64)
                .keep_tx_frames(true)
                .build_mt()
                .unwrap();
            assert_eq!(mt.regime(), regime);
            let out = mt.run(packets.clone()).unwrap();
            let delivered: u64 = out.egress.iter().map(|v| v.len() as u64).sum();
            assert_eq!(delivered, 200, "regime {regime} must deliver everything");
            assert!(out.report.ledger.balances(), "regime {regime}");
        }
    }

    #[test]
    fn knobs_regime_reaches_mt_router() {
        let (_, knobs) = rb_click::config::build_graph(
            "RuntimeConfig(workers 2, regime pull, credits 128, ring_depth 16);
             src :: InfiniteSource(64, 10);
             src -> Discard;",
        )
        .unwrap();
        let mt = RouterBuilder::minimal_forwarder()
            .apply_knobs(&knobs)
            .build_mt()
            .unwrap();
        assert_eq!(mt.regime(), Regime::PullCredit);
        assert_eq!(mt.opts().credit_window, 128);
        assert_eq!(mt.opts().ring_depth, 16);
    }

    #[test]
    fn interval_clock_and_slo_flow_through_the_builder() {
        // Single-thread: interval series conserves the ledger and the
        // SLO engine grades it. No throughput floor here — a bucket
        // boundary can land between a packet's source and its forward,
        // which a floor objective would legitimately flag on a series
        // this short.
        let spec = SloSpec::parse("loss:0.5").unwrap();
        let mut r = RouterBuilder::minimal_forwarder()
            .interval_ms(1)
            .slo(spec)
            .source_packets(64, 400)
            .build()
            .unwrap();
        r.run_until_idle(1_000_000);
        let series = r.timeseries().expect("interval clock is on");
        let led = series.ledger();
        assert_eq!(led.forwarded, r.ledger().forwarded);
        assert_eq!(led.sourced, r.ledger().sourced);
        let report = r.slo_report().expect("objectives are set");
        assert!(report.graded_intervals >= 1);
        // A healthy idle-to-idle run must not be burning.
        assert_ne!(report.state, rb_telemetry::SloState::Burning);

        // MT: the knob rides GraphRunOpts into every replica and the
        // merged series lands on the report.
        let packets: Vec<Packet> = (0..300)
            .map(|i| {
                PacketSpec::udp()
                    .src(&format!("172.16.0.{}:1000", i % 250))
                    .unwrap()
                    .build()
            })
            .collect();
        let mt = RouterBuilder::minimal_forwarder()
            .workers(2)
            .interval_ms(1)
            .slo(SloSpec::parse("p99us:1000000").unwrap())
            .build_mt()
            .unwrap();
        assert_eq!(mt.opts().interval_ms, 1);
        let out = mt.run(packets).unwrap();
        let series = out.report.timeseries.as_ref().expect("series on");
        assert_eq!(series.ledger().forwarded, out.report.ledger.forwarded);
        assert!(mt.slo_report(&out).is_some());
    }

    #[test]
    fn serve_metrics_leaves_egress_identical() {
        // Differential: the embedded scrape endpoint observes through
        // wait-free rings, so switching it on (and scraping it
        // mid-run) must not change what the router emits.
        let packets = || -> Vec<Packet> {
            (0..400)
                .map(|i| {
                    PacketSpec::udp()
                        .src(&format!("172.16.{}.{}:1000", i / 250, i % 250))
                        .unwrap()
                        .build()
                })
                .collect()
        };
        let configure = |b: RouterBuilder| {
            b.workers(2)
                .telemetry(TelemetryLevel::Cycles)
                .interval_ms(1)
                .slo(SloSpec::parse("loss:0.5").unwrap())
                .keep_tx_frames(true)
        };
        let egress_multiset = |mt: &MtRouter| -> Vec<Vec<Vec<u8>>> {
            let out = mt.run(packets()).unwrap();
            out.egress
                .iter()
                .map(|port| {
                    let mut frames: Vec<Vec<u8>> = port.iter().map(|p| p.data().to_vec()).collect();
                    frames.sort();
                    frames
                })
                .collect()
        };
        let plain = configure(RouterBuilder::minimal_forwarder())
            .build_mt()
            .unwrap();
        let observed = configure(RouterBuilder::minimal_forwarder())
            .serve_metrics("127.0.0.1:0".parse().unwrap())
            .build_mt()
            .unwrap();
        let addr = observed.metrics_addr().expect("endpoint bound");
        assert!(plain.metrics_addr().is_none());
        let baseline = egress_multiset(&plain);
        let monitored = egress_multiset(&observed);
        assert_eq!(
            baseline, monitored,
            "scrape endpoint must not perturb egress"
        );
        // And the endpoint really was alive while that run happened.
        let (status, body) =
            rb_telemetry::http::http_get(addr, "/metrics").expect("endpoint answers");
        assert_eq!(status, 200);
        assert!(body.contains("rb_sourced_packets_total"));
    }

    #[test]
    fn knobs_interval_and_slo_reach_the_builder() {
        let (_, knobs) = rb_click::config::build_graph(
            "RuntimeConfig(workers 2, interval_ms 5, slo p99us:2500/loss:0.01);
             src :: InfiniteSource(64, 10);
             src -> Discard;",
        )
        .unwrap();
        let mt = RouterBuilder::minimal_forwarder()
            .apply_knobs(&knobs)
            .build_mt()
            .unwrap();
        assert_eq!(mt.opts().interval_ms, 5);
        assert_eq!(mt.slo().p99_latency_us, Some(2500.0));
        assert_eq!(mt.slo().max_loss, Some(0.01));
    }

    #[test]
    fn knobs_map_onto_builder_including_fib() {
        let (_, knobs) = rb_click::config::build_graph(
            "RuntimeConfig(batch_size 16, workers 3, fib_routes 500, fib_rcu on);
             src :: InfiniteSource(64, 10);
             src -> Discard;",
        )
        .unwrap();
        let mt = RouterBuilder::ip_router()
            .ports(2)
            .apply_knobs(&knobs)
            .build_mt()
            .unwrap();
        assert_eq!(mt.workers(), 3);
        assert_eq!(mt.opts().batch_size, 16);
        let ctl = mt.route_control().expect("fib_rcu on wires RCU");
        assert!(ctl.route_count() >= 500, "got {}", ctl.route_count());
    }
}
