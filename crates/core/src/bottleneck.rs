//! Fig. 9-style bottleneck attribution from measured telemetry.
//!
//! §5.3 of the paper asks *which component saturates first* as the input
//! rate grows. [`rb_hw::accounting`] answers that question analytically
//! from the calibrated cost model; this module answers it empirically:
//! it joins a [`MetricsSnapshot`] captured with
//! `TelemetryLevel::Cycles` against the same hardware model, attributing
//! measured cycles per packet to each element of the running graph and
//! computing where each stage would saturate.
//!
//! Two caveats keep the join honest:
//!
//! * Measured spans are in *this host's* timestamp ticks; the model's
//!   budgets are in *prototype* (2.8 GHz Nehalem) cycles. The report
//!   therefore scales per-stage saturation by the calibrated tick rate
//!   of the host, and reports the model prediction separately rather
//!   than mixing the two unit systems in one column.
//! * A `Queue` element is crossed twice per packet (enqueue + dequeue),
//!   so its stage row legitimately counts each packet twice; shares are
//!   computed over stage cycles, not packets.

use crate::report::{mpps, TextTable};
use rb_hw::{CostModel, ServerModel};
use rb_telemetry::{cycles, MetricsSnapshot};

/// One element's measured load, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Element instance name in the graph.
    pub name: String,
    /// Element class name.
    pub class: String,
    /// Packets dispatched through this element (a queue counts each
    /// packet on both crossings).
    pub packets: u64,
    /// Measured timestamp ticks spent in this element.
    pub cycles: u64,
    /// Ticks per packet for this element.
    pub cycles_per_packet: f64,
    /// Share of all attributed stage cycles, in percent.
    pub share_pct: f64,
    /// Packet rate at which one core doing *only* this stage saturates,
    /// at the host's calibrated tick rate.
    pub saturation_pps: f64,
}

/// The joined report: measured per-stage loads plus the cost-model
/// prediction for the same application and packet size.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// Per-element rows, in first-dispatch order.
    pub stages: Vec<StageRow>,
    /// Index into [`BottleneckReport::stages`] of the stage with the
    /// highest cycles-per-packet — the empirical bottleneck.
    pub bottleneck: Option<usize>,
    /// Host timestamp ticks per second used for saturation rates.
    pub ticks_per_sec: f64,
    /// Peak stage crossings (max over stages). A graph with a `Queue`
    /// reports up to 2x the end-to-end packet count, since every packet
    /// crosses the queue twice.
    pub pipeline_packets: u64,
    /// Sum of per-stage ticks/packet — the attributed pipeline cost.
    pub measured_cpp: f64,
    /// End-to-end ticks/packet including scheduler overhead, after the
    /// paper's empty-poll correction (busy cycles only).
    pub end_to_end_cpp: f64,
    /// Cost-model prediction, in *prototype* cycles/packet.
    pub model_cpp: f64,
    /// Rate at which the prototype (all cores) saturates per the model.
    pub model_saturation_pps: f64,
    /// Measured ticks/packet summed over the device-boundary stages
    /// (`FromDevice`/`ToDevice` rows) — where the simulated descriptor
    /// rings charge their writeback/doorbell cost.
    pub device_cpp: f64,
    /// The model's device-boundary term `C_PCIE / kn`, in prototype
    /// cycles/packet ([`CostModel::pcie_cycles`]). Both this and
    /// `device_cpp` shrink as `kn` grows; comparing their *trends*
    /// checks the simulated NIC against Table 1 (the units differ:
    /// host ticks vs prototype cycles).
    pub model_pcie_cpp: f64,
    /// Frame bytes DMA'd across the device boundary, from the run's
    /// descriptor-ring counters (`RunStats`/`MtReport` `nic_dma_bytes`).
    /// The snapshot doesn't carry it — attach with
    /// [`BottleneckReport::with_nic_dma_bytes`]; 0 = not provided.
    pub nic_dma_bytes: u64,
    /// Modeled PCIe frame budget for this packet size, in frame bytes
    /// per second ([`CostModel::pcie_frame_budget_bps`]): the empirical
    /// link capacity derated by descriptor and transaction overhead.
    pub pcie_budget_bytes_per_sec: f64,
    /// Wall-clock duration of the measured run, in seconds. The
    /// snapshot doesn't carry it — attach with
    /// [`BottleneckReport::with_run_seconds`]; 0 = not provided, which
    /// disables the DMA-rate grading on the `device:` row.
    pub run_seconds: f64,
}

impl BottleneckReport {
    /// Joins a cycle-level snapshot with the hardware model. `size` is
    /// the representative packet size for the model's prediction.
    pub fn from_snapshot(
        snap: &MetricsSnapshot,
        model: &ServerModel,
        cost: &CostModel,
        size: usize,
    ) -> BottleneckReport {
        let ticks_per_sec = cycles::ticks_per_sec();
        let attributed: u64 = snap.stages.iter().map(|s| s.cycles).sum();
        let stages: Vec<StageRow> = snap
            .stages
            .iter()
            .map(|s| {
                let cpp = s.cycles_per_packet();
                StageRow {
                    name: s.name.clone(),
                    class: s.class.clone(),
                    packets: s.packets,
                    cycles: s.cycles,
                    cycles_per_packet: cpp,
                    share_pct: if attributed == 0 {
                        0.0
                    } else {
                        100.0 * s.cycles as f64 / attributed as f64
                    },
                    saturation_pps: if cpp > 0.0 {
                        ticks_per_sec / cpp
                    } else {
                        f64::INFINITY
                    },
                }
            })
            .collect();
        let bottleneck = stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.packets > 0 && s.cycles > 0)
            .max_by(|(_, a), (_, b)| a.cycles_per_packet.total_cmp(&b.cycles_per_packet))
            .map(|(i, _)| i);
        let model_cpp = cost.cpu_cycles(size) + model.queue_lock_penalty();
        let device_cpp = stages
            .iter()
            .filter(|s| s.class == "FromDevice" || s.class == "ToDevice")
            .map(|s| s.cycles_per_packet)
            .sum();
        let pipeline_packets = snap.pipeline_packets();
        BottleneckReport {
            stages,
            bottleneck,
            ticks_per_sec,
            pipeline_packets,
            measured_cpp: snap.stage_cpp_sum(),
            end_to_end_cpp: if pipeline_packets == 0 {
                0.0
            } else {
                snap.busy_cycles() as f64 / pipeline_packets as f64
            },
            model_cpp,
            model_saturation_pps: model.spec.cycle_budget() / model_cpp,
            device_cpp,
            model_pcie_cpp: cost.pcie_cycles(),
            nic_dma_bytes: 0,
            pcie_budget_bytes_per_sec: cost.pcie_frame_budget_bps(&model.spec, size),
            run_seconds: 0.0,
        }
    }

    /// Attaches the run's DMA byte count (`RunStats::nic_dma_bytes` /
    /// `MtReport::nic_dma_bytes`) so the `device:` row reports traffic
    /// volume next to the per-packet boundary cost.
    #[must_use]
    pub fn with_nic_dma_bytes(mut self, bytes: u64) -> BottleneckReport {
        self.nic_dma_bytes = bytes;
        self
    }

    /// Attaches the run's wall-clock duration so the `device:` row can
    /// grade the measured DMA rate (`nic_dma_bytes / seconds`) against
    /// the modeled PCIe frame budget.
    #[must_use]
    pub fn with_run_seconds(mut self, seconds: f64) -> BottleneckReport {
        self.run_seconds = seconds;
        self
    }

    /// Measured DMA throughput in frame bytes/second, or `None` if the
    /// byte count or run duration was not attached.
    pub fn dma_bytes_per_sec(&self) -> Option<f64> {
        (self.nic_dma_bytes > 0 && self.run_seconds > 0.0)
            .then(|| self.nic_dma_bytes as f64 / self.run_seconds)
    }

    /// Measured DMA rate as a fraction of the modeled PCIe frame
    /// budget (> 1.0 means the run moved more frame bytes per second
    /// than the modeled bus sustains). `None` when the rate or the
    /// budget is unavailable.
    pub fn pcie_utilization(&self) -> Option<f64> {
        let rate = self.dma_bytes_per_sec()?;
        self.pcie_budget_bytes_per_sec
            .is_finite()
            .then(|| rate / self.pcie_budget_bytes_per_sec)
    }

    /// The empirical bottleneck row, if any stage did work.
    pub fn bottleneck_stage(&self) -> Option<&StageRow> {
        self.bottleneck.map(|i| &self.stages[i])
    }

    /// Headroom of `stage` at `rate_pps` on this host, as a fraction of
    /// one core's tick budget: `1 − cpp·rate/ticks_per_sec`. Negative
    /// means the stage cannot keep up at that rate.
    pub fn headroom_at(&self, stage: &StageRow, rate_pps: f64) -> f64 {
        1.0 - stage.cycles_per_packet * rate_pps / self.ticks_per_sec
    }

    /// Renders the Fig. 9-style text report.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "element",
            "class",
            "packets",
            "cycles/pkt",
            "share",
            "saturates at",
        ]);
        for (i, s) in self.stages.iter().enumerate() {
            let marker = if Some(i) == self.bottleneck {
                " <- bottleneck"
            } else {
                ""
            };
            let (cpp, sat) = if s.packets == 0 {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{:.0}", s.cycles_per_packet),
                    mpps(s.saturation_pps),
                )
            };
            t.row([
                s.name.clone(),
                s.class.clone(),
                s.packets.to_string(),
                cpp,
                format!("{:.1}%", s.share_pct),
                format!("{sat}{marker}"),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "pipeline: {} pkts, {:.0} ticks/pkt attributed, {:.0} end-to-end (busy)\n",
            self.pipeline_packets, self.measured_cpp, self.end_to_end_cpp,
        ));
        out.push_str(&format!(
            "model:    {:.0} cycles/pkt -> prototype saturates at {}\n",
            self.model_cpp,
            mpps(self.model_saturation_pps),
        ));
        if self.device_cpp > 0.0 {
            let dma = if self.nic_dma_bytes > 0 {
                format!(", {} bytes DMA'd", self.nic_dma_bytes)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "device:   {:.0} ticks/pkt measured at the NIC boundary vs \
                 C_PCIE/kn = {:.0} model cycles/pkt{dma}\n",
                self.device_cpp, self.model_pcie_cpp,
            ));
            if let Some(util) = self.pcie_utilization() {
                let rate = self.dma_bytes_per_sec().unwrap_or(0.0);
                let verdict = if util > 1.0 {
                    "exceeds the modeled bus"
                } else {
                    "within budget"
                };
                out.push_str(&format!(
                    "pcie:     {:.2e} B/s DMA rate vs {:.2e} B/s frame \
                     budget -> {:.1}% ({verdict})\n",
                    rate,
                    self.pcie_budget_bytes_per_sec,
                    100.0 * util,
                ));
            }
        }
        out
    }
}

impl core::fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RouterBuilder;
    use rb_hw::Application;
    use rb_telemetry::TelemetryLevel;

    fn report_for(count: u64) -> BottleneckReport {
        let mut r = RouterBuilder::minimal_forwarder()
            .telemetry(TelemetryLevel::Cycles)
            .source_packets(64, count)
            .build()
            .unwrap();
        r.run_until_idle(1_000_000);
        BottleneckReport::from_snapshot(
            &r.telemetry_snapshot(),
            &ServerModel::prototype(),
            &CostModel::tuned(Application::MinimalForwarding),
            64,
        )
    }

    #[test]
    fn report_attributes_every_active_stage() {
        let rep = report_for(400);
        // The forwarder's queue is crossed twice per packet (enqueue +
        // dequeue), so peak stage crossings are 2x the packet count.
        assert_eq!(rep.pipeline_packets, 800);
        let active: Vec<_> = rep.stages.iter().filter(|s| s.packets > 0).collect();
        assert!(active.len() >= 4, "src, chk, cnt, queue, tx at least");
        for s in &active {
            assert!(s.cycles > 0, "stage {} measured no cycles", s.name);
            assert!(s.cycles_per_packet > 0.0);
            assert!(s.saturation_pps.is_finite());
        }
        let share: f64 = rep.stages.iter().map(|s| s.share_pct).sum();
        assert!((share - 100.0).abs() < 1e-6, "shares sum to {share}");
    }

    #[test]
    fn bottleneck_is_the_max_cpp_stage() {
        let rep = report_for(400);
        let b = rep.bottleneck_stage().expect("some stage did work");
        for s in rep.stages.iter().filter(|s| s.packets > 0) {
            assert!(b.cycles_per_packet >= s.cycles_per_packet);
        }
        // Headroom at a rate far below saturation is nearly full; at a
        // rate far above, it goes negative.
        assert!(rep.headroom_at(b, b.saturation_pps / 1e6) > 0.99);
        assert!(rep.headroom_at(b, b.saturation_pps * 2.0) < 0.0);
    }

    #[test]
    fn model_join_matches_accounting_crate() {
        let rep = report_for(10);
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::MinimalForwarding);
        assert!((rep.model_cpp - (cost.cpu_cycles(64) + model.queue_lock_penalty())).abs() < 1e-9);
        // The paper's headline number: ~19 Mpps for minimal forwarding.
        assert!((18e6..20e6).contains(&rep.model_saturation_pps));
    }

    #[test]
    fn render_marks_the_bottleneck() {
        let rep = report_for(200);
        let text = rep.render();
        assert!(text.contains("<- bottleneck"));
        assert!(text.contains("model:"));
        let name = &rep.bottleneck_stage().unwrap().name;
        assert!(text.contains(name.as_str()));
    }

    #[test]
    fn device_boundary_row_tracks_the_pcie_term() {
        let mut r = RouterBuilder::minimal_forwarder()
            .telemetry(TelemetryLevel::Cycles)
            .source_packets(64, 400)
            .build()
            .unwrap();
        let stats = r.run_until_idle(1_000_000);
        let rep = BottleneckReport::from_snapshot(
            &r.telemetry_snapshot(),
            &ServerModel::prototype(),
            &CostModel::tuned(Application::MinimalForwarding),
            64,
        )
        .with_nic_dma_bytes(stats.nic_dma_bytes);
        // The forwarder run has ToDevice stages, so the device-boundary
        // aggregate is populated and rendered, along with the DMA byte
        // count the descriptor rings measured (400 64-byte frames).
        assert!(rep.device_cpp > 0.0);
        assert_eq!(rep.nic_dma_bytes, 400 * 64);
        assert!(rep.render().contains("C_PCIE/kn"));
        assert!(rep.render().contains("25600 bytes DMA'd"));
        // The model side of the comparison is exactly C_PCIE / kn.
        let tuned = CostModel::tuned(Application::MinimalForwarding);
        assert!((rep.model_pcie_cpp - tuned.pcie_cycles()).abs() < 1e-9);
        let unbatched = CostModel {
            batching: rb_hw::BatchingConfig::none(),
            ..tuned
        };
        assert!(
            (unbatched.pcie_cycles() - 16.0 * tuned.pcie_cycles()).abs() < 1e-9,
            "kn=16 divides the device term by 16"
        );
    }

    #[test]
    fn pcie_grading_compares_dma_rate_to_frame_budget() {
        let mut r = RouterBuilder::minimal_forwarder()
            .telemetry(TelemetryLevel::Cycles)
            .source_packets(64, 400)
            .build()
            .unwrap();
        let stats = r.run_until_idle(1_000_000);
        let base = BottleneckReport::from_snapshot(
            &r.telemetry_snapshot(),
            &ServerModel::prototype(),
            &CostModel::tuned(Application::MinimalForwarding),
            64,
        )
        .with_nic_dma_bytes(stats.nic_dma_bytes);
        // The budget comes straight from the cost model for this spec
        // and size, and sits strictly below the raw link capacity.
        let model = ServerModel::prototype();
        let cost = CostModel::tuned(Application::MinimalForwarding);
        assert!(
            (base.pcie_budget_bytes_per_sec - cost.pcie_frame_budget_bps(&model.spec, 64)).abs()
                < 1e-6
        );
        assert!(base.pcie_budget_bytes_per_sec < model.spec.pcie.empirical_bps / 8.0);
        // No duration attached: no rate, no grading row.
        assert!(base.dma_bytes_per_sec().is_none());
        assert!(base.pcie_utilization().is_none());
        assert!(!base.render().contains("pcie:"));
        // A slow run sits comfortably within budget...
        let slow = base.clone().with_run_seconds(1.0);
        let util = slow.pcie_utilization().expect("rate and budget known");
        assert!(util < 1.0, "25.6 KB over a second is not a loaded bus");
        assert!(slow.render().contains("within budget"));
        // ...while the same bytes squeezed into a nanosecond overdrive
        // the modeled bus and the row says so.
        let fast = base.with_run_seconds(1e-9);
        assert!(fast.pcie_utilization().unwrap() > 1.0);
        assert!(fast.render().contains("exceeds the modeled bus"));
    }

    #[test]
    fn empty_snapshot_yields_empty_report() {
        let snap = MetricsSnapshot::empty();
        let rep = BottleneckReport::from_snapshot(
            &snap,
            &ServerModel::prototype(),
            &CostModel::tuned(Application::MinimalForwarding),
            64,
        );
        assert!(rep.stages.is_empty());
        assert!(rep.bottleneck.is_none());
        assert_eq!(rep.pipeline_packets, 0);
    }
}
