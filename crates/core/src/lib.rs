//! # RouteBricks-RS
//!
//! A from-scratch Rust reproduction of *RouteBricks: Exploiting
//! Parallelism To Scale Software Routers* (Dobrescu et al., SOSP 2009):
//! a software router architecture that parallelises packet processing
//! both across servers (Valiant load-balanced clustering) and within a
//! server (multi-queue NICs, one core per queue, one core per packet,
//! poll- and NIC-driven batching).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names and adds the high-level
//! [`builder`] API that assembles the paper's three applications
//! (minimal forwarding, IP routing, IPsec encryption) as runnable
//! dataplanes.
//!
//! ```text
//! routebricks::packet    wire formats, buffers, RSS       (rb-packet)
//! routebricks::lookup    DIR-24-8 LPM + baselines         (rb-lookup)
//! routebricks::crypto    AES-128 / SHA-1 / ESP            (rb-crypto)
//! routebricks::click     element framework + config DSL   (rb-click)
//! routebricks::workload  traffic generation               (rb-workload)
//! routebricks::hw        calibrated server model + DES    (rb-hw)
//! routebricks::vlb       VLB routing, topologies, sizing  (rb-vlb)
//! routebricks::cluster   RB4 cluster model                (rb-cluster)
//! routebricks::telemetry per-core metrics + cycle shards  (rb-telemetry)
//! ```
//!
//! # Examples
//!
//! Build and run an IP router on synthetic traffic:
//!
//! ```
//! use routebricks::builder::RouterBuilder;
//!
//! let mut router = RouterBuilder::ip_router()
//!     .route("10.0.0.0/8", 0)
//!     .route("0.0.0.0/0", 1)
//!     .source_packets(64, 1_000)
//!     .build()
//!     .unwrap();
//! router.run_until_idle(1_000_000);
//! let sent: u64 = (0..2).map(|p| router.transmitted(p)).sum();
//! assert_eq!(sent, 1_000);
//! ```

pub use rb_click as click;
pub use rb_cluster as cluster;
pub use rb_crypto as crypto;
pub use rb_hw as hw;
pub use rb_lookup as lookup;
pub use rb_packet as packet;
pub use rb_telemetry as telemetry;
pub use rb_vlb as vlb;
pub use rb_workload as workload;

pub mod bottleneck;
pub mod builder;
pub mod report;

pub use bottleneck::BottleneckReport;
pub use builder::{BuiltRouter, MtRouter, RouterBuilder};
pub use rb_click::Regime;
pub use report::{trace_report, trace_report_with_metrics, TextTable};
